//! End-to-end exercise of the remote evaluation backend: `--backend
//! remote:HOST:PORT` against a live `pimsyn worker-serve` daemon must be
//! bit-identical to inline scoring, a daemon killed mid-run must degrade
//! gracefully to the same results, authentication failures must fall back
//! inline with a single clear stderr warning, and both daemons must print
//! their actually-bound address so port 0 is usable.
//!
//! These tests live in the `pimsyn-gateway` crate — the workspace's binary
//! crate — so `CARGO_BIN_EXE_pimsyn` points at the real CLI binary for the
//! subprocess-spawned arms; the in-process arms drive
//! `serve_workers_in_background` directly.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

use pimsyn::{
    serve_workers_in_background, stop_worker_server, BackendKind, SynthesisOptions, Synthesizer,
    Watts, WorkerServeConfig,
};
use pimsyn_model::json::JsonValue;
use pimsyn_model::zoo;

const PIMSYN_BIN: &str = env!("CARGO_BIN_EXE_pimsyn");

fn base_options() -> SynthesisOptions {
    SynthesisOptions::fast(Watts(9.0)).with_seed(7)
}

fn remote_options(addr: &str) -> SynthesisOptions {
    base_options().with_backend(BackendKind::Remote {
        endpoints: vec![addr.to_string()],
    })
}

fn loopback_daemon(config: WorkerServeConfig) -> pimsyn::WorkerServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    serve_workers_in_background(listener, config).expect("start worker daemon")
}

fn assert_identical(a: &pimsyn::SynthesisResult, b: &pimsyn::SynthesisResult) {
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.analytic, b.analytic);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.history, b.history);
    assert_eq!(a.stop_reason, b.stop_reason);
}

#[test]
fn remote_backend_is_bit_identical_to_inline() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    let daemon = loopback_daemon(WorkerServeConfig {
        slots: 2,
        token: None,
        quiet: true,
    });
    let addr = daemon.addr().to_string();
    let remote = Synthesizer::new(remote_options(&addr))
        .synthesize(&model)
        .unwrap();
    assert_identical(&inline, &remote);
    stop_worker_server(&addr, None).expect("daemon stops cleanly");
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn daemon_killed_mid_run_degrades_to_identical_results() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // A real child process, so killing it actually cuts live sessioned
    // connections (an in-process stop only ends the accept loop): in-flight
    // chunks hit the exchange-failure path mid-run and recompute inline,
    // later reconnects fail — the outcome must not change whatever the
    // interleaving.
    let (mut child, addr) = spawn_worker_serve_cli(&["--quiet"]);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let _ = child.kill();
        let _ = child.wait();
    });
    let remote = Synthesizer::new(remote_options(&addr))
        .synthesize(&model)
        .unwrap();
    killer.join().unwrap();
    assert_identical(&inline, &remote);
}

#[test]
fn unreachable_roster_degrades_to_identical_results() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // Bind a port, learn its address, then close it again: connecting to it
    // must fail, and the whole run must fall back to inline scoring.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let remote = Synthesizer::new(remote_options(&dead_addr))
        .synthesize(&model)
        .unwrap();
    assert_identical(&inline, &remote);
}

#[test]
fn wrong_token_is_rejected_and_daemon_survives() {
    let daemon = loopback_daemon(WorkerServeConfig {
        slots: 1,
        token: Some("s3cret".to_string()),
        quiet: true,
    });
    let addr = daemon.addr().to_string();
    // A stop without (or with the wrong) token must be refused...
    let err = stop_worker_server(&addr, None).expect_err("tokenless stop must fail");
    assert!(err.contains("authentication"), "{err}");
    let err = stop_worker_server(&addr, Some("wrong")).expect_err("bad-token stop must fail");
    assert!(err.contains("authentication"), "{err}");
    // ... and the right token still works afterwards.
    stop_worker_server(&addr, Some("s3cret")).expect("authenticated stop");
    daemon.join().expect("daemon exits cleanly");
}

/// Spawns `pimsyn worker-serve` on port 0 and returns the child plus the
/// bound address parsed from its startup stderr line — the script-facing
/// contract the `:0` fix exists for.
fn spawn_worker_serve_cli(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(PIMSYN_BIN)
        .args(["worker-serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("worker-serve exited before announcing its address")
            .expect("readable stderr");
        if let Some(addr) = line.strip_prefix("pimsyn worker-serve: listening on ") {
            break addr.trim().to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(PIMSYN_BIN)
        .args(args)
        .output()
        .expect("CLI run");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Drops the wall-clock field, the only summary field allowed to differ
/// between repeated runs.
fn summary_without_elapsed(stdout: &str) -> Vec<(String, String)> {
    let doc = JsonValue::parse(stdout.trim()).expect("summary is valid JSON");
    doc.as_object()
        .expect("summary is an object")
        .iter()
        .filter(|(k, _)| k != "elapsed_s")
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

#[test]
fn cli_auth_failure_warns_once_and_matches_inline_summary() {
    let token_path =
        std::env::temp_dir().join(format!("pimsyn-worker-token-{}.txt", std::process::id()));
    std::fs::write(&token_path, "s3cret\n").unwrap();
    let (mut child, addr) =
        spawn_worker_serve_cli(&["--auth-token-file", token_path.to_str().unwrap(), "--quiet"]);

    let common = [
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--seed",
        "7",
        "--output",
        "json",
        "--quiet",
    ];
    let (inline_out, _, ok) = run_cli(&common);
    assert!(ok, "inline run failed");

    // No token on the dialing side: every handshake is rejected, the run
    // degrades to inline scoring with a single clear warning, and the
    // summary is unchanged.
    let spec = format!("remote:{addr}");
    let mut with_remote: Vec<&str> = common.to_vec();
    with_remote.extend(["--backend", &spec]);
    let (remote_out, remote_err, ok) = run_cli(&with_remote);
    assert!(ok, "remote run failed: {remote_err}");
    assert_eq!(
        summary_without_elapsed(&inline_out),
        summary_without_elapsed(&remote_out),
        "auth-failed remote run must equal the inline one"
    );
    let warnings: Vec<&str> = remote_err
        .lines()
        .filter(|l| l.contains("remote evaluation degraded"))
        .collect();
    assert_eq!(
        warnings.len(),
        1,
        "exactly one degradation warning expected, got: {remote_err}"
    );
    assert!(
        warnings[0].contains("authentication failed"),
        "the warning must name the cause: {}",
        warnings[0]
    );

    // With the right token the same daemon serves the run remotely.
    let mut with_token: Vec<&str> = with_remote.clone();
    with_token.extend(["--remote-token-file", token_path.to_str().unwrap()]);
    let (auth_out, auth_err, ok) = run_cli(&with_token);
    assert!(ok, "authenticated remote run failed: {auth_err}");
    assert_eq!(
        summary_without_elapsed(&inline_out),
        summary_without_elapsed(&auth_out),
        "authenticated remote run must equal the inline one"
    );
    assert!(
        !auth_err.contains("remote evaluation degraded"),
        "authenticated run must not warn: {auth_err}"
    );

    // Clean shutdown through the CLI, authenticated.
    let (_, _, ok) = run_cli(&[
        "worker-stop",
        "--connect",
        &addr,
        "--auth-token-file",
        token_path.to_str().unwrap(),
    ]);
    assert!(ok, "worker-stop failed");
    let status = child.wait().expect("worker-serve exits");
    assert!(status.success(), "worker-serve must exit cleanly: {status}");
    let _ = std::fs::remove_file(&token_path);
}

#[test]
fn remote_token_file_without_remote_backend_is_rejected() {
    let (_, stderr, ok) = run_cli(&[
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--remote-token-file",
        "/tmp/whatever",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--remote-token-file"), "{stderr}");
}
