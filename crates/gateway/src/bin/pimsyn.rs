//! The PIMSYN command-line tool: one-click transformation of a CNN
//! description into a PIM accelerator implementation report.
//!
//! ```text
//! pimsyn --model vgg16 --power 65 --effort fast
//! pimsyn --model-file net.json --power 9 --seed 7 --cycle 2
//! pimsyn --model alexnet-cifar --power 9 --strategy woho --no-sharing
//! pimsyn --model resnet18-cifar --power 15 --objective edp --macros identical
//! pimsyn --model alexnet-cifar --power 9 --output json
//! pimsyn --model vgg16 --power 65 --effort paper --timeout 120 --max-evals 20000
//! pimsyn --batch jobs.json --output json
//! pimsyn zoo --describe mobilenet
//! pimsyn export pimsim --model transformer-tiny --power 6 --pretty
//! ```
//!
//! `--model` accepts any zoo name (`pimsyn zoo` lists them all, classic
//! CNNs and the modern depthwise/SE/attention additions alike);
//! `--model-file` reads the ONNX-style JSON format of `pimsyn_model::onnx`.
//!
//! While a job runs, live progress (design points explored, new bests)
//! streams to stderr; stdout carries only the final report, so both output
//! formats pipe cleanly.

use std::process::ExitCode;
use std::time::Duration;

use pimsyn::{
    BackendKind, CancelToken, ChannelSink, Effort, EvalCacheConfig, EvaluatorStats, MacroMode,
    Objective, ServiceClient, ServiceConfig, SynthesisEngine, SynthesisError, SynthesisEvent,
    SynthesisOptions, SynthesisRequest, SynthesisResult, SynthesisService, SynthesisSummary,
};
use pimsyn_arch::Watts;
use pimsyn_model::json::JsonValue;
use pimsyn_model::{onnx, zoo, Model};

#[derive(Debug, Clone, PartialEq)]
enum OutputFormat {
    Text,
    Json,
}

#[derive(Debug, Clone)]
struct Args {
    model: Option<String>,
    model_file: Option<String>,
    hw_file: Option<String>,
    batch_file: Option<String>,
    power: f64,
    effort: Effort,
    strategy: WtDupStrategyArg,
    objective: Objective,
    macro_mode: MacroMode,
    sharing: bool,
    seed: u64,
    cycle_images: usize,
    timeout: Option<Duration>,
    max_evals: Option<usize>,
    max_unique_evals: Option<usize>,
    eval_cache: bool,
    eval_cache_capacity: Option<usize>,
    eval_cache_file: Option<String>,
    eval_cache_max_entries: Option<usize>,
    backend: BackendKind,
    remote_token_file: Option<String>,
    output: OutputFormat,
    quiet: bool,
    help: bool,
}

/// CLI-level strategy selector (the library type carries vectors for the
/// `Fixed` variant, which the CLI does not expose).
#[derive(Debug, Clone, PartialEq)]
enum WtDupStrategyArg {
    Sa,
    Woho,
    None,
}

impl WtDupStrategyArg {
    fn to_strategy(&self) -> pimsyn::WtDupStrategy {
        match self {
            WtDupStrategyArg::Sa => pimsyn::WtDupStrategy::SimulatedAnnealing,
            WtDupStrategyArg::Woho => pimsyn::WtDupStrategy::WohoProportional,
            WtDupStrategyArg::None => pimsyn::WtDupStrategy::NoDuplication,
        }
    }
}

const USAGE: &str = "\
pimsyn — synthesize a processing-in-memory CNN accelerator

USAGE:
  pimsyn --model <zoo-name> --power <watts> [options]
  pimsyn --model-file <net.json> --power <watts> [options]
  pimsyn --batch <jobs.json> [options]
  pimsyn zoo [--describe <name>] [--validate [<name>]] [--output <text|json>]
  pimsyn export pimsim (--model <name> | --model-file <path>) --power <watts>
                [--pretty] [--out <path>] [synthesis options]
  pimsyn serve --listen <host:port> [--job-slots N] [--queue-depth N]
               [--backend <spec>] [--worker-registry <host:port>]
               [--remote-token-file <path>]
               [--eval-cache-file <path>] [--eval-cache-max-entries <n>]
               [--auth-token-file <path>] [--quiet]
  pimsyn gateway --listen <host:port> [--keys <tenants.json>]
                 [--scheduler <fifo|fair>] [--job-slots N] [--queue-depth N]
                 [--backend <spec>] [--worker-registry <host:port>]
                 [--remote-token-file <path>]
                 [--eval-cache-file <path>] [--eval-cache-max-entries <n>]
                 [--quiet]
  pimsyn submit --connect <host:port> --model <name> --power <watts> [options]
  pimsyn status|result|cancel --connect <host:port> --id <job-id>
  pimsyn shutdown|drain --connect <host:port>
  pimsyn worker-serve --listen <host:port> [--slots N]
                      [--announce <host:port>] [--protocol-max <n>]
                      [--auth-token-file <path>] [--quiet]
  pimsyn worker-stop --connect <host:port> [--auth-token-file <path>]

OPTIONS:
  --model <name>        bundled zoo model; `pimsyn zoo` lists every name
                        (classic CNNs plus mobilenet, resnet18-se,
                        transformer-tiny)
  --model-file <path>   ONNX-style JSON model description
  --batch <path>        JSON array of jobs, e.g.
                        [{\"model\": \"alexnet-cifar\", \"power\": 9}, ...];
                        each job may override effort/seed/strategy/objective/
                        macros/sharing/cycle/timeout/max-evals and carry a label
  --hw-file <path>      hardware setup parameters (JSON; Table III defaults)
  --power <watts>       total power constraint (required outside --batch;
                        with --batch, the default for jobs without `power`)
  --effort <fast|paper> search effort (default: fast)
  --strategy <sa|woho|none>  weight-duplication strategy (default: sa)
  --objective <eff|edp> optimization objective (default: eff)
  --macros <specialized|identical>  macro mode (default: specialized)
  --no-sharing          disable inter-layer macro sharing
  --seed <u64>          RNG seed (default: the library default; the flow is
                        fully deterministic given the seed)
  --cycle <images>      validate with the cycle-accurate engine
  --timeout <secs>      stop exploring after this long, keeping the best
                        implementation found so far
  --max-evals <n>       bound candidate-architecture evaluations
  --max-unique-evals <n>  bound unique evaluations (memo misses; with a warm
                        cache, far fewer than scored candidates)
  --eval-cache <on|off> memoize candidate evaluations (default: on; results
                        are bit-identical either way, off recomputes all)
  --eval-cache-capacity <n>  bound memo-cache entries (default: 65536)
  --eval-cache-file <path>  persist the evaluation memo across runs: loaded
                        before the search when its fingerprint (model, hw,
                        power, objective) matches, rewritten afterwards
  --eval-cache-max-entries <n>  cap candidate-score entries written per run
                        section of the cache file (oldest trimmed first), so
                        long sweeps stop growing the file without bound
  --backend <spec>      where candidate scoring runs: inline (default),
                        threads[:N] (scoped thread pool), subprocess[:N]
                        (pimsyn --worker child processes), or
                        remote:host:port[,host:port...] (pimsyn worker-serve
                        daemons over TCP); results are bit-identical across
                        backends
  --remote-token-file <path>  shared auth token presented to the remote
                        worker daemons (requires --backend remote:...)
  --output <text|json>  report format on stdout (default: text)
  --quiet               suppress live progress on stderr
  --help                print this message

`pimsyn serve` runs a long-lived synthesis daemon: submitted jobs queue
behind a bounded FIFO, share one subprocess worker pool and one warm
evaluation cache, and are addressed by id through the submit/status/
result/cancel/shutdown subcommands (a versioned JSON-lines TCP protocol).
The daemon's --backend / --eval-cache-file flags decide where every
submitted job's scoring runs; submit-side flags describe the job itself.
With --auth-token-file, every request must carry the shared token (clients
pass the same flag); `pimsyn drain` stops intake, finishes queued and
running jobs, and exits the daemon cleanly.

`pimsyn gateway` runs the same daemon behind a plain HTTP/1.1 REST API
(POST /v1/jobs, GET /v1/jobs/<id>[/result|/events], DELETE /v1/jobs/<id>,
GET /metrics for Prometheus, POST /v1/drain) — see docs/PROTOCOLS.md.
--keys installs per-tenant API keys (Authorization: Bearer), quotas and
scheduling weights; the scheduler then defaults to weighted-fair
round-robin across tenants instead of global FIFO (--scheduler overrides
either way; results are bit-identical under both policies). The keys file
is re-read whenever it changes on disk, so keys rotate on a live gateway:
added keys authenticate the very next request, removed keys get 401.

Both daemons accept --worker-registry <host:port>: a second listener where
`pimsyn worker-serve --announce` daemons register, heartbeat and
deregister. Registered workers join the remote scoring fleet dynamically
(connections persist across jobs); workers that miss heartbeats are
evicted and their in-flight chunks recomputed inline, never changing
results. Registry messages authenticate with the --remote-token-file
shared secret — the same token file the workers' --auth-token-file names.

`pimsyn worker-serve` runs a long-lived evaluation-worker daemon: each
accepted TCP connection (version-checked, optionally token-authenticated,
up to --slots concurrently) serves one worker session for a `--backend
remote:...` run on another machine. The actually-bound address — including
the resolved port for --listen HOST:0 — prints to stderr on startup;
`pimsyn worker-stop` asks the daemon to exit. With --announce the daemon
registers itself with a `pimsyn serve`/`pimsyn gateway` started with
--worker-registry, heartbeats to stay listed, and deregisters on exit —
the serving daemon then discovers workers dynamically instead of needing a
static remote:host:port roster (with --worker-registry and no explicit
--backend, the daemon's backend is the announced fleet). --protocol-max
caps the negotiated worker-protocol version (for mixed-version fleets and
downgrade testing); results are bit-identical across protocol versions.

`pimsyn zoo` inspects the bundled model zoo: with no flags it lists every
model with a one-line description; --describe prints one model's layer
stats; --validate rebuilds each model (or just the named one) and checks
its ONNX-JSON round trip, exiting nonzero on any failure (the CI smoke
step); --output json emits the listing machine-readably.

`pimsyn export pimsim` synthesizes an accelerator exactly like the plain
single-job flow (same --model/--model-file/--power and search options,
bit-identical results) and then emits a PIMSIM-NN configuration document
on stdout (or --out <path>) instead of a report: the workload, the
synthesized per-layer mapping and PIMSYN's expected metrics, ready for
cross-simulator validation. --pretty indents the JSON for humans; the
field-by-field schema is documented in docs/ARCHITECTURE.md.

`pimsyn --worker` (no other flags) runs the evaluation-worker protocol on
stdin/stdout; it is spawned by `--backend subprocess` and not meant for
interactive use.";

fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        model: None,
        model_file: None,
        hw_file: None,
        batch_file: None,
        power: 0.0,
        effort: Effort::Fast,
        strategy: WtDupStrategyArg::Sa,
        objective: Objective::PowerEfficiency,
        macro_mode: MacroMode::Specialized,
        sharing: true,
        seed: SynthesisOptions::DEFAULT_SEED,
        cycle_images: 0,
        timeout: None,
        max_evals: None,
        max_unique_evals: None,
        eval_cache: true,
        eval_cache_capacity: None,
        eval_cache_file: None,
        eval_cache_max_entries: None,
        backend: BackendKind::Inline,
        remote_token_file: None,
        output: OutputFormat::Text,
        quiet: false,
        help: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--model-file" => args.model_file = Some(value("--model-file")?),
            "--hw-file" => args.hw_file = Some(value("--hw-file")?),
            "--batch" => args.batch_file = Some(value("--batch")?),
            "--power" => {
                args.power = value("--power")?
                    .parse()
                    .map_err(|e| format!("bad --power: {e}"))?
            }
            "--effort" => args.effort = parse_effort(&value("--effort")?)?,
            "--strategy" => args.strategy = parse_strategy(&value("--strategy")?)?,
            "--objective" => args.objective = parse_objective(&value("--objective")?)?,
            "--macros" => args.macro_mode = parse_macro_mode(&value("--macros")?)?,
            "--no-sharing" => args.sharing = false,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--cycle" => {
                args.cycle_images = value("--cycle")?
                    .parse()
                    .map_err(|e| format!("bad --cycle: {e}"))?
            }
            "--timeout" => {
                let secs: f64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                args.timeout = Some(timeout_duration(secs).map_err(|e| format!("--timeout {e}"))?);
            }
            "--max-evals" => {
                let n: usize = value("--max-evals")?
                    .parse()
                    .map_err(|e| format!("bad --max-evals: {e}"))?;
                if n == 0 {
                    return Err("--max-evals must be at least 1".to_string());
                }
                args.max_evals = Some(n);
            }
            "--max-unique-evals" => {
                let n: usize = value("--max-unique-evals")?
                    .parse()
                    .map_err(|e| format!("bad --max-unique-evals: {e}"))?;
                if n == 0 {
                    return Err("--max-unique-evals must be at least 1".to_string());
                }
                args.max_unique_evals = Some(n);
            }
            "--eval-cache-file" => args.eval_cache_file = Some(value("--eval-cache-file")?),
            "--eval-cache-max-entries" => {
                let n: usize = value("--eval-cache-max-entries")?
                    .parse()
                    .map_err(|e| format!("bad --eval-cache-max-entries: {e}"))?;
                if n == 0 {
                    return Err("--eval-cache-max-entries must be at least 1".to_string());
                }
                args.eval_cache_max_entries = Some(n);
            }
            "--backend" => {
                args.backend = BackendKind::parse(&value("--backend")?)
                    .map_err(|e| format!("bad --backend: {e}"))?
            }
            "--remote-token-file" => args.remote_token_file = Some(value("--remote-token-file")?),
            "--eval-cache" => {
                args.eval_cache = match value("--eval-cache")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("unknown --eval-cache value `{other}`")),
                }
            }
            "--eval-cache-capacity" => {
                let n: usize = value("--eval-cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --eval-cache-capacity: {e}"))?;
                if n == 0 {
                    return Err("--eval-cache-capacity must be at least 1".to_string());
                }
                args.eval_cache_capacity = Some(n);
            }
            "--output" => {
                args.output = match value("--output")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => return Err(format!("unknown output format `{other}`")),
                }
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                args.help = true;
                return Ok(args);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Persistence serializes the memo; with the memo off there is nothing
    // to load or save, so the combination is a mistake, not a no-op.
    if !args.eval_cache && args.eval_cache_file.is_some() {
        return Err(
            "--eval-cache-file requires the evaluation cache (drop `--eval-cache off`)".to_string(),
        );
    }
    // The entry cap trims what is written to the cache file; without a file
    // it caps nothing.
    if args.eval_cache_max_entries.is_some() && args.eval_cache_file.is_none() {
        return Err("--eval-cache-max-entries requires --eval-cache-file".to_string());
    }
    // The token authenticates remote worker connections; without a remote
    // roster there is nothing to authenticate. In batch mode individual
    // jobs may select a remote backend through their `backend` field, so
    // the flag is accepted there regardless of the top-level backend.
    if args.remote_token_file.is_some()
        && args.batch_file.is_none()
        && !matches!(args.backend, BackendKind::Remote { .. })
    {
        return Err("--remote-token-file requires --backend remote:host:port[,...]".to_string());
    }
    if args.batch_file.is_some() {
        if args.model.is_some() || args.model_file.is_some() {
            return Err("--batch cannot be combined with --model / --model-file".to_string());
        }
        // In batch mode --power is optional; when given it becomes the
        // default for jobs without their own `power` field.
        if args.power != 0.0 && !positive(args.power) {
            return Err("--power must be positive".to_string());
        }
        return Ok(args);
    }
    if !positive(args.power) {
        return Err("--power <watts> is required and must be positive".to_string());
    }
    if args.model.is_some() == args.model_file.is_some() {
        return Err("exactly one of --model / --model-file is required".to_string());
    }
    Ok(args)
}

/// Strictly positive and comparable — rejects NaN alongside zero/negatives.
fn positive(x: f64) -> bool {
    x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}

/// Validates a timeout in seconds into a `Duration`, rejecting NaN, zero,
/// negatives, and values `Duration::from_secs_f64` would panic on
/// (infinity / overflow). A year bounds any meaningful synthesis run.
fn timeout_duration(secs: f64) -> Result<Duration, String> {
    const MAX_TIMEOUT_SECS: f64 = 365.0 * 24.0 * 3600.0;
    if !positive(secs) {
        return Err("must be positive".to_string());
    }
    if !secs.is_finite() || secs > MAX_TIMEOUT_SECS {
        return Err(format!("must be at most {MAX_TIMEOUT_SECS} seconds"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn parse_effort(s: &str) -> Result<Effort, String> {
    match s {
        "fast" => Ok(Effort::Fast),
        "paper" => Ok(Effort::Paper),
        other => Err(format!("unknown effort `{other}`")),
    }
}

fn parse_strategy(s: &str) -> Result<WtDupStrategyArg, String> {
    match s {
        "sa" => Ok(WtDupStrategyArg::Sa),
        "woho" => Ok(WtDupStrategyArg::Woho),
        "none" => Ok(WtDupStrategyArg::None),
        other => Err(format!("unknown strategy `{other}`")),
    }
}

fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "eff" => Ok(Objective::PowerEfficiency),
        "edp" => Ok(Objective::EnergyDelayProduct),
        other => Err(format!("unknown objective `{other}`")),
    }
}

fn parse_macro_mode(s: &str) -> Result<MacroMode, String> {
    match s {
        "specialized" => Ok(MacroMode::Specialized),
        "identical" => Ok(MacroMode::Identical),
        other => Err(format!("unknown macro mode `{other}`")),
    }
}

fn load_named_model(name: &str) -> Result<Model, String> {
    zoo::by_name(name).ok_or_else(|| {
        format!(
            "unknown zoo model `{name}` (available: {})",
            zoo::names().join(", ")
        )
    })
}

fn load_model_file(path: &str) -> Result<Model, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    onnx::parse_model(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Builds the synthesis options a set of CLI-level args describes.
fn options_from_args(args: &Args, power: f64) -> Result<SynthesisOptions, String> {
    let mut options = SynthesisOptions::new(Watts(power))
        .with_effort(args.effort)
        .with_strategy(args.strategy.to_strategy())
        .with_objective(args.objective)
        .with_macro_mode(args.macro_mode)
        .with_seed(args.seed);
    if !args.sharing {
        options = options.without_macro_sharing();
    }
    if args.cycle_images > 0 {
        options = options.with_cycle_validation(args.cycle_images);
    }
    if let Some(limit) = args.timeout {
        options = options.with_time_budget(limit);
    }
    if let Some(n) = args.max_evals {
        options = options.with_max_evaluations(n);
    }
    if let Some(n) = args.max_unique_evals {
        options = options.with_max_unique_evaluations(n);
    }
    let mut cache = if args.eval_cache {
        EvalCacheConfig::enabled()
    } else {
        EvalCacheConfig::disabled()
    };
    if let Some(capacity) = args.eval_cache_capacity {
        cache = cache.with_capacity(capacity);
    }
    options = options.with_eval_cache(cache);
    options = options.with_backend(args.backend.clone());
    if let Some(path) = &args.remote_token_file {
        options = options.with_remote_token_file(path);
    }
    if let Some(path) = &args.eval_cache_file {
        options = options.with_eval_cache_file(path);
    }
    if let Some(cap) = args.eval_cache_max_entries {
        options.backend.cache_max_entries = Some(cap);
    }
    if let Some(path) = &args.hw_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let hw =
            pimsyn_arch::hardware_config::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        options = options.with_hardware(hw);
    }
    Ok(options)
}

/// Parses one job object of a `--batch` file into a request, with the
/// CLI-level args as defaults.
fn batch_job_request(
    job: &JsonValue,
    args: &Args,
    index: usize,
) -> Result<SynthesisRequest, String> {
    let at = |detail: String| format!("batch job {index}: {detail}");
    let obj = job
        .as_object()
        .ok_or_else(|| at("expected a JSON object".to_string()))?;
    for (key, _) in obj {
        match key.as_str() {
            "model" | "model-file" | "power" | "effort" | "strategy" | "objective" | "macros"
            | "sharing" | "seed" | "cycle" | "timeout" | "max-evals" | "max-unique-evals"
            | "backend" | "label" => {}
            other => return Err(at(format!("unknown field `{other}`"))),
        }
    }
    let get_str = |key: &str| -> Result<Option<&str>, String> {
        match job.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| at(format!("field `{key}` must be a string"))),
        }
    };
    let get_num = |key: &str| -> Result<Option<f64>, String> {
        match job.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| at(format!("field `{key}` must be a number"))),
        }
    };

    let model = match (get_str("model")?, get_str("model-file")?) {
        (Some(name), None) => load_named_model(name).map_err(at)?,
        (None, Some(path)) => load_model_file(path).map_err(at)?,
        _ => {
            return Err(at(
                "exactly one of `model` / `model-file` is required".to_string()
            ))
        }
    };
    let power = match get_num("power")? {
        Some(p) => p,
        // Fall back to the CLI-level --power, like every other flag.
        None if positive(args.power) => args.power,
        None => {
            return Err(at(
                "field `power` is required (or pass a default via --power)".to_string(),
            ))
        }
    };
    if !positive(power) {
        return Err(at("field `power` must be positive".to_string()));
    }

    let mut job_args = args.clone();
    if let Some(s) = get_str("effort")? {
        job_args.effort = parse_effort(s).map_err(at)?;
    }
    if let Some(s) = get_str("strategy")? {
        job_args.strategy = parse_strategy(s).map_err(at)?;
    }
    if let Some(s) = get_str("objective")? {
        job_args.objective = parse_objective(s).map_err(at)?;
    }
    if let Some(s) = get_str("macros")? {
        job_args.macro_mode = parse_macro_mode(s).map_err(at)?;
    }
    if let Some(v) = job.get("sharing") {
        job_args.sharing = v
            .as_bool()
            .ok_or_else(|| at("field `sharing` must be a boolean".to_string()))?;
    }
    if let Some(n) = get_num("seed")? {
        if n < 0.0 || n.fract() != 0.0 {
            return Err(at("field `seed` must be a non-negative integer".to_string()));
        }
        job_args.seed = n as u64;
    }
    if let Some(n) = get_num("cycle")? {
        if n < 0.0 || n.fract() != 0.0 {
            return Err(at(
                "field `cycle` must be a non-negative integer".to_string()
            ));
        }
        job_args.cycle_images = n as usize;
    }
    if let Some(n) = get_num("timeout")? {
        job_args.timeout =
            Some(timeout_duration(n).map_err(|e| at(format!("field `timeout` {e}")))?);
    }
    if let Some(n) = get_num("max-evals")? {
        // Same rule as the --max-evals flag: a positive integer.
        if n < 1.0 || n.fract() != 0.0 {
            return Err(at(
                "field `max-evals` must be a positive integer".to_string()
            ));
        }
        job_args.max_evals = Some(n as usize);
    }
    if let Some(n) = get_num("max-unique-evals")? {
        if n < 1.0 || n.fract() != 0.0 {
            return Err(at(
                "field `max-unique-evals` must be a positive integer".to_string()
            ));
        }
        job_args.max_unique_evals = Some(n as usize);
    }
    if let Some(s) = get_str("backend")? {
        job_args.backend =
            BackendKind::parse(s).map_err(|e| at(format!("field `backend`: {e}")))?;
    }

    let options = options_from_args(&job_args, power).map_err(at)?;
    let mut request = SynthesisRequest::new(model, options);
    if let Some(label) = get_str("label")? {
        request = request.with_label(label);
    }
    Ok(request)
}

fn load_batch(args: &Args) -> Result<Vec<SynthesisRequest>, String> {
    let path = args.batch_file.as_ref().expect("validated by parse_args");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let jobs = doc
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of jobs"))?;
    if jobs.is_empty() {
        return Err(format!("{path}: batch is empty"));
    }
    jobs.iter()
        .enumerate()
        .map(|(i, job)| batch_job_request(job, args, i))
        .collect()
}

/// Renders one progress event as a human line for stderr. Returns `None`
/// for events that stay silent at CLI verbosity (per-stage ticks).
///
/// Point/best values are the *objective fitness*, so their unit follows
/// what is optimized (TOPS/W by default, reciprocal EDP under `--objective
/// edp`); the `done:` line always reports TOPS/W.
fn progress_line(event: &SynthesisEvent, objective: Objective) -> Option<String> {
    let unit = match objective {
        Objective::PowerEfficiency => "TOPS/W",
        Objective::EnergyDelayProduct => "1/(ms*mJ)",
    };
    match event {
        SynthesisEvent::JobStarted { job, label } => {
            Some(format!("[job {job}] {label}: started"))
        }
        SynthesisEvent::DesignPointEvaluated {
            job, point, point_index, best_efficiency, evaluations,
        } => Some(format!(
            "  [job {job}] point {point_index} ({point}): {best_efficiency:.3} {unit} after {evaluations} evaluations"
        )),
        SynthesisEvent::ImprovedBest { job, point_index, fitness } => {
            Some(format!("  [job {job}] new best {fitness:.3} {unit} (point {point_index})"))
        }
        SynthesisEvent::Finished { job, efficiency, evaluations, stop_reason, elapsed, error } => {
            Some(match (efficiency, error) {
                (Some(eff), _) => {
                    let reason = stop_reason
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "completed".to_string());
                    format!(
                        "[job {job}] done: {eff:.3} TOPS/W, {evaluations} evaluations in {:.2} s ({reason})",
                        elapsed.as_secs_f64()
                    )
                }
                (None, Some(msg)) => format!("[job {job}] failed: {msg}"),
                (None, None) => format!("[job {job}] failed"),
            })
        }
        // Per-point cumulative snapshots are too chatty for the CLI; the
        // final snapshot is summarized after the job (see `stats_line`).
        SynthesisEvent::EvaluatorStats { .. } => None,
        SynthesisEvent::StageStarted { .. } | SynthesisEvent::StageFinished { .. } => None,
    }
}

/// Renders the job's final evaluator snapshot for stderr. Printed only
/// without `--quiet`, like every other progress line.
fn stats_line(stats: &EvaluatorStats) -> String {
    let mut line = format!(
        "evaluator: {} candidates scored, {} unique evaluations, {} cache hits ({:.0}% hit rate)",
        stats.scored,
        stats.unique_evaluations,
        stats.cache_hits,
        stats.hit_rate() * 100.0
    );
    if stats.preloaded > 0 {
        line.push_str(&format!(
            ", {} entries warm-started from the cache file",
            stats.preloaded
        ));
    }
    if stats.delta_hits > 0 || stats.delta_fallbacks > 0 {
        line.push_str(&format!(
            "; delta rescoring: {} incremental, {} fallbacks, {} layers recomputed",
            stats.delta_hits, stats.delta_fallbacks, stats.layers_recomputed
        ));
    }
    line
}

/// The job index an event belongs to.
fn event_job(event: &SynthesisEvent) -> usize {
    match event {
        SynthesisEvent::JobStarted { job, .. }
        | SynthesisEvent::StageStarted { job, .. }
        | SynthesisEvent::StageFinished { job, .. }
        | SynthesisEvent::DesignPointEvaluated { job, .. }
        | SynthesisEvent::ImprovedBest { job, .. }
        | SynthesisEvent::EvaluatorStats { job, .. }
        | SynthesisEvent::Finished { job, .. } => *job,
    }
}

fn emit_single(result: &SynthesisResult, output: &OutputFormat) {
    match output {
        OutputFormat::Text => println!("{}", result.report_text()),
        OutputFormat::Json => println!("{}", SynthesisSummary::from_result(result).to_json()),
    }
}

fn emit_batch(
    requests: &[SynthesisRequest],
    results: &[Result<SynthesisResult, SynthesisError>],
    output: &OutputFormat,
) {
    match output {
        OutputFormat::Text => {
            for (request, result) in requests.iter().zip(results) {
                println!("=== job: {} ===", request.display_label());
                match result {
                    Ok(r) => println!("{}", r.report_text()),
                    Err(e) => println!("failed: {e}\n"),
                }
            }
        }
        OutputFormat::Json => {
            let jobs: Vec<JsonValue> = requests
                .iter()
                .zip(results)
                .map(|(request, result)| {
                    let mut fields: Vec<(String, JsonValue)> = vec![
                        ("label".into(), JsonValue::String(request.display_label())),
                        ("ok".into(), JsonValue::Bool(result.is_ok())),
                    ];
                    match result {
                        Ok(r) => fields
                            .push(("summary".into(), SynthesisSummary::from_result(r).to_json())),
                        Err(e) => fields.push(("error".into(), JsonValue::String(e.to_string()))),
                    }
                    JsonValue::Object(fields)
                })
                .collect();
            println!("{}", JsonValue::Array(jobs));
        }
    }
}

fn run_single(args: &Args) -> ExitCode {
    let model = match &args.model {
        Some(name) => load_named_model(name),
        None => load_model_file(args.model_file.as_ref().expect("validated by parse_args")),
    };
    let model = match model {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = match options_from_args(args, args.power) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!("synthesizing {model} under {} W ...", args.power);
    }

    let engine = SynthesisEngine::new();
    let job = engine.spawn(SynthesisRequest::new(model, options));
    let mut last_stats: Option<EvaluatorStats> = None;
    for event in job.events() {
        if let SynthesisEvent::EvaluatorStats { stats, .. } = &event {
            last_stats = Some(*stats);
        }
        if !args.quiet {
            if let Some(line) = progress_line(&event, args.objective) {
                eprintln!("{line}");
            }
        }
    }
    if !args.quiet {
        if let Some(stats) = &last_stats {
            eprintln!("{}", stats_line(stats));
        }
    }
    match job.join() {
        Ok(result) => {
            emit_single(&result, &args.output);
            ExitCode::SUCCESS
        }
        Err(e) => {
            // With progress on, the Finished event already reported the
            // failure; don't print it twice.
            if args.quiet {
                eprintln!("synthesis failed: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run_batch(args: &Args) -> ExitCode {
    let requests = match load_batch(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!("synthesizing batch of {} jobs ...", requests.len());
    }

    let engine = SynthesisEngine::new();
    let cancel = CancelToken::new();
    let (sink, events) = ChannelSink::pair();
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let out = engine.synthesize_batch_observed(&requests, &sink, &cancel);
            drop(sink); // close the event stream so the printer loop ends
            out
        });
        for event in events {
            if !args.quiet {
                // Jobs can override the objective, so label each line with
                // the objective of the job it belongs to.
                let objective = requests
                    .get(event_job(&event))
                    .map(|r| r.options.objective)
                    .unwrap_or(args.objective);
                if let Some(line) = progress_line(&event, objective) {
                    eprintln!("{line}");
                }
            }
        }
        results = worker.join().expect("batch worker panicked");
    });

    emit_batch(&requests, &results, &args.output);
    if results.iter().all(Result::is_ok) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Flags of the `serve` subcommand: where to listen, queue sizing, and the
/// server-side evaluation policy overlaid onto every submitted job.
#[derive(Debug, Clone)]
struct ServeArgs {
    listen: String,
    job_slots: Option<usize>,
    queue_depth: Option<usize>,
    backend: BackendKind,
    worker_registry: Option<String>,
    remote_token_file: Option<String>,
    eval_cache_file: Option<String>,
    eval_cache_max_entries: Option<usize>,
    auth_token_file: Option<String>,
    quiet: bool,
}

fn parse_serve_args<I: IntoIterator<Item = String>>(argv: I) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        listen: String::new(),
        job_slots: None,
        queue_depth: None,
        backend: BackendKind::Inline,
        worker_registry: None,
        remote_token_file: None,
        eval_cache_file: None,
        eval_cache_max_entries: None,
        auth_token_file: None,
        quiet: false,
    };
    let mut backend_set = false;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let positive = |name: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("{name} must be a positive integer")),
            }
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--job-slots" => args.job_slots = Some(positive("--job-slots", value("--job-slots")?)?),
            "--queue-depth" => {
                args.queue_depth = Some(positive("--queue-depth", value("--queue-depth")?)?)
            }
            "--backend" => {
                args.backend = BackendKind::parse(&value("--backend")?)
                    .map_err(|e| format!("bad --backend: {e}"))?;
                backend_set = true;
            }
            "--worker-registry" => args.worker_registry = Some(value("--worker-registry")?),
            "--remote-token-file" => args.remote_token_file = Some(value("--remote-token-file")?),
            "--eval-cache-file" => args.eval_cache_file = Some(value("--eval-cache-file")?),
            "--eval-cache-max-entries" => {
                args.eval_cache_max_entries = Some(positive(
                    "--eval-cache-max-entries",
                    value("--eval-cache-max-entries")?,
                )?)
            }
            "--auth-token-file" => args.auth_token_file = Some(value("--auth-token-file")?),
            "--quiet" | "-q" => args.quiet = true,
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    if args.listen.is_empty() {
        return Err("serve requires --listen <host:port>".to_string());
    }
    if args.eval_cache_max_entries.is_some() && args.eval_cache_file.is_none() {
        return Err("--eval-cache-max-entries requires --eval-cache-file".to_string());
    }
    resolve_registry_backend(
        &mut args.backend,
        backend_set,
        args.worker_registry.as_deref(),
    )?;
    if args.remote_token_file.is_some() && !matches!(args.backend, BackendKind::Remote { .. }) {
        return Err("--remote-token-file requires --backend remote:host:port[,...]".to_string());
    }
    Ok(args)
}

/// Folds `--worker-registry` into the backend choice: a registry implies
/// scoring on the announced fleet, so an unset backend becomes a remote
/// backend with an (initially) empty roster, an explicit remote backend
/// keeps its static seed endpoints, and an explicitly non-remote backend
/// is a contradiction worth rejecting loudly.
fn resolve_registry_backend(
    backend: &mut BackendKind,
    backend_set: bool,
    worker_registry: Option<&str>,
) -> Result<(), String> {
    let Some(registry) = worker_registry else {
        return Ok(());
    };
    if !registry.contains(':') {
        return Err("--worker-registry must be a HOST:PORT listen address".to_string());
    }
    match backend {
        _ if !backend_set => {
            *backend = BackendKind::Remote {
                endpoints: Vec::new(),
            }
        }
        BackendKind::Remote { .. } => {}
        other => {
            return Err(format!(
                "--worker-registry feeds a remote backend; it cannot be combined \
                 with --backend {other}"
            ))
        }
    }
    Ok(())
}

/// Binds and starts the worker-registry listener a `--worker-registry`
/// daemon exposes, returning the registry handle to attach as the shared
/// evaluation resources' worker directory (and, for the gateway, to render
/// in `/metrics`). Registry messages authenticate with the same fleet-wide
/// shared secret the remote backend presents to workers
/// (`--remote-token-file`), so one token file covers the whole fleet.
fn start_worker_registry(
    listen: &str,
    remote_token_file: Option<&str>,
    quiet: bool,
) -> Result<std::sync::Arc<pimsyn::WorkerRegistry>, String> {
    let token = match remote_token_file {
        Some(path) => Some(read_token_file(path)?),
        None => None,
    };
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot listen on {listen} for worker registry: {e}"))?;
    let registry = pimsyn::WorkerRegistry::new(pimsyn::DEFAULT_HEARTBEAT_INTERVAL, token, quiet);
    pimsyn::serve_registry_in_background(listener, registry.clone())
        .map_err(|e| format!("worker registry failed to start: {e}"))?;
    Ok(registry)
}

fn run_serve(argv: &[String]) -> ExitCode {
    let args = match parse_serve_args(argv.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServiceConfig::default();
    if let Some(slots) = args.job_slots {
        config = config.with_job_slots(slots);
    }
    if let Some(depth) = args.queue_depth {
        config = config.with_queue_depth(depth);
    }
    let service = std::sync::Arc::new(SynthesisService::new(config));
    if let Some(registry_listen) = &args.worker_registry {
        match start_worker_registry(
            registry_listen,
            args.remote_token_file.as_deref(),
            args.quiet,
        ) {
            Ok(registry) => service.shared_resources().set_worker_directory(registry),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let overlay_args = args.clone();
    // Server-side policy: the daemon decides where scoring runs and which
    // cache file (if any) persists it; clients describe only the job. The
    // cache policy only applies to jobs that kept the eval cache on: a job
    // that disabled it has nothing to persist, and forcing a file onto it
    // would reject an otherwise valid submission.
    let overlay = move |request: &mut SynthesisRequest| {
        request.options.backend.kind = overlay_args.backend.clone();
        request.options.backend.remote_token_file =
            overlay_args.remote_token_file.as_ref().map(Into::into);
        if request.options.eval_cache.enabled {
            if let Some(path) = &overlay_args.eval_cache_file {
                request.options.backend.cache_file = Some(path.into());
            }
            request.options.backend.cache_max_entries = overlay_args.eval_cache_max_entries;
        }
    };
    let mut options = pimsyn::ServeOptions::new().with_quiet(args.quiet);
    if let Some(path) = &args.auth_token_file {
        match read_token_file(path) {
            Ok(token) => options = options.with_token(token),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match pimsyn::serve(listener, service, overlay, options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags of the `gateway` subcommand: the serve-side policy flags plus the
/// tenant keys file and the scheduling policy.
#[derive(Debug, Clone)]
struct GatewayArgs {
    listen: String,
    keys: Option<String>,
    scheduler: Option<pimsyn::SchedulingPolicy>,
    job_slots: Option<usize>,
    queue_depth: Option<usize>,
    backend: BackendKind,
    worker_registry: Option<String>,
    remote_token_file: Option<String>,
    eval_cache_file: Option<String>,
    eval_cache_max_entries: Option<usize>,
    quiet: bool,
}

fn parse_gateway_args<I: IntoIterator<Item = String>>(argv: I) -> Result<GatewayArgs, String> {
    let mut args = GatewayArgs {
        listen: String::new(),
        keys: None,
        scheduler: None,
        job_slots: None,
        queue_depth: None,
        backend: BackendKind::Inline,
        worker_registry: None,
        remote_token_file: None,
        eval_cache_file: None,
        eval_cache_max_entries: None,
        quiet: false,
    };
    let mut backend_set = false;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let positive = |name: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("{name} must be a positive integer")),
            }
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--keys" => args.keys = Some(value("--keys")?),
            "--scheduler" => {
                args.scheduler = Some(match value("--scheduler")?.as_str() {
                    "fifo" => pimsyn::SchedulingPolicy::Fifo,
                    "fair" => pimsyn::SchedulingPolicy::WeightedFair,
                    other => return Err(format!("bad --scheduler `{other}` (fifo|fair)")),
                })
            }
            "--job-slots" => args.job_slots = Some(positive("--job-slots", value("--job-slots")?)?),
            "--queue-depth" => {
                args.queue_depth = Some(positive("--queue-depth", value("--queue-depth")?)?)
            }
            "--backend" => {
                args.backend = BackendKind::parse(&value("--backend")?)
                    .map_err(|e| format!("bad --backend: {e}"))?;
                backend_set = true;
            }
            "--worker-registry" => args.worker_registry = Some(value("--worker-registry")?),
            "--remote-token-file" => args.remote_token_file = Some(value("--remote-token-file")?),
            "--eval-cache-file" => args.eval_cache_file = Some(value("--eval-cache-file")?),
            "--eval-cache-max-entries" => {
                args.eval_cache_max_entries = Some(positive(
                    "--eval-cache-max-entries",
                    value("--eval-cache-max-entries")?,
                )?)
            }
            "--quiet" | "-q" => args.quiet = true,
            other => return Err(format!("unknown gateway flag `{other}`")),
        }
    }
    if args.listen.is_empty() {
        return Err("gateway requires --listen <host:port>".to_string());
    }
    if args.eval_cache_max_entries.is_some() && args.eval_cache_file.is_none() {
        return Err("--eval-cache-max-entries requires --eval-cache-file".to_string());
    }
    resolve_registry_backend(
        &mut args.backend,
        backend_set,
        args.worker_registry.as_deref(),
    )?;
    if args.remote_token_file.is_some() && !matches!(args.backend, BackendKind::Remote { .. }) {
        return Err("--remote-token-file requires --backend remote:host:port[,...]".to_string());
    }
    Ok(args)
}

fn run_gateway(argv: &[String]) -> ExitCode {
    let args = match parse_gateway_args(argv.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let tenants = match &args.keys {
        Some(path) => match pimsyn_gateway::TenantRegistry::load(path) {
            Ok(registry) => registry,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => pimsyn_gateway::TenantRegistry::open(),
    };
    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // Multi-tenant gateways default to fair scheduling; a keyless (single
    // anonymous lane) gateway keeps service-identical FIFO order.
    let scheduling = args.scheduler.unwrap_or(if tenants.requires_auth() {
        pimsyn::SchedulingPolicy::WeightedFair
    } else {
        pimsyn::SchedulingPolicy::Fifo
    });
    let mut config = ServiceConfig::default().with_scheduling(scheduling);
    if let Some(slots) = args.job_slots {
        config = config.with_job_slots(slots);
    }
    if let Some(depth) = args.queue_depth {
        config = config.with_queue_depth(depth);
    }
    let service = std::sync::Arc::new(SynthesisService::new(config));
    let mut registry = None;
    if let Some(registry_listen) = &args.worker_registry {
        match start_worker_registry(
            registry_listen,
            args.remote_token_file.as_deref(),
            args.quiet,
        ) {
            Ok(r) => {
                service.shared_resources().set_worker_directory(r.clone());
                registry = Some(r);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let overlay_args = args.clone();
    // The same server-side policy overlay as `pimsyn serve`: the daemon
    // decides where scoring runs and which cache file persists it.
    let overlay = move |request: &mut SynthesisRequest| {
        request.options.backend.kind = overlay_args.backend.clone();
        request.options.backend.remote_token_file =
            overlay_args.remote_token_file.as_ref().map(Into::into);
        if request.options.eval_cache.enabled {
            if let Some(path) = &overlay_args.eval_cache_file {
                request.options.backend.cache_file = Some(path.into());
            }
            request.options.backend.cache_max_entries = overlay_args.eval_cache_max_entries;
        }
    };
    let mut gateway_config = pimsyn_gateway::GatewayConfig::new()
        .with_tenants(tenants)
        .with_quiet(args.quiet);
    if let Some(path) = &args.keys {
        gateway_config = gateway_config.with_keys_file(path);
    }
    if let Some(registry) = registry {
        gateway_config = gateway_config.with_worker_registry(registry);
    }
    match pimsyn_gateway::serve_gateway(listener, service, overlay, gateway_config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: gateway failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags of the `worker-serve` subcommand: where to listen, how many
/// concurrent worker sessions to serve, the optional shared auth token,
/// the registry to announce to, and the protocol-version cap.
#[derive(Debug, Clone)]
struct WorkerServeArgs {
    listen: String,
    slots: usize,
    announce: Option<String>,
    protocol_max: Option<u32>,
    auth_token_file: Option<String>,
    quiet: bool,
}

fn parse_worker_serve_args<I: IntoIterator<Item = String>>(
    argv: I,
) -> Result<WorkerServeArgs, String> {
    let mut args = WorkerServeArgs {
        listen: String::new(),
        slots: 0,
        announce: None,
        protocol_max: None,
        auth_token_file: None,
        quiet: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--slots" => {
                args.slots = match value("--slots")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--slots must be a positive integer".to_string()),
                }
            }
            "--announce" => args.announce = Some(value("--announce")?),
            "--protocol-max" => {
                args.protocol_max = match value("--protocol-max")?.parse::<u32>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err("--protocol-max must be a positive integer".to_string()),
                }
            }
            "--auth-token-file" => args.auth_token_file = Some(value("--auth-token-file")?),
            "--quiet" | "-q" => args.quiet = true,
            other => return Err(format!("unknown worker-serve flag `{other}`")),
        }
    }
    if args.listen.is_empty() {
        return Err("worker-serve requires --listen <host:port>".to_string());
    }
    if let Some(announce) = &args.announce {
        if !announce.contains(':') {
            return Err("--announce must be a HOST:PORT registry address".to_string());
        }
    }
    Ok(args)
}

/// Reads a shared-token file through the library's single normalizing
/// reader, so the daemon and every client trim tokens identically.
fn read_token_file(path: &str) -> Result<String, String> {
    pimsyn::read_token_file(std::path::Path::new(path))
}

fn run_worker_serve(argv: &[String]) -> ExitCode {
    let args = match parse_worker_serve_args(argv.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let token = match &args.auth_token_file {
        Some(path) => match read_token_file(path) {
            Ok(token) => Some(token),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let config = pimsyn::WorkerServeConfig {
        slots: args.slots,
        token,
        quiet: args.quiet,
        protocol_max: args.protocol_max,
        announce: args.announce.clone(),
        // Test-harness hook: chaos suites and CI smokes misconfigure a
        // stock binary through PIMSYN_FAULT_* without extra flags. All
        // unset (the overwhelmingly common case) injects nothing.
        faults: pimsyn::FaultInjection::from_env(),
    };
    match pimsyn::serve_workers(listener, config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: worker-serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_worker_stop(argv: &[String]) -> ExitCode {
    let mut connect = None;
    let mut token_file = None;
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--connect" => value("--connect").map(|v| connect = Some(v)),
            "--auth-token-file" => value("--auth-token-file").map(|v| token_file = Some(v)),
            other => Err(format!("unknown worker-stop flag `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let Some(connect) = connect else {
        eprintln!("error: worker-stop requires --connect <host:port>\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let token = match &token_file {
        Some(path) => match read_token_file(path) {
            Ok(token) => Some(token),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    match pimsyn::stop_worker_server(&connect, token.as_deref()) {
        Ok(()) => {
            println!("worker daemon at {connect} is stopping");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// What `split_client_args` extracts: the `--connect` address, the `--id`
/// value, the `--auth-token-file` path, and the untouched remaining flags.
type ClientArgs = (String, Option<u64>, Option<String>, Vec<String>);

/// Splits `--connect <addr>` (required) and `--id <n>` (when `with_id`) out
/// of a client subcommand's argv, returning the remaining flags untouched.
fn split_client_args(argv: &[String], with_id: bool) -> Result<ClientArgs, String> {
    let mut connect = None;
    let mut id = None;
    let mut token_file = None;
    let mut rest = Vec::new();
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => {
                connect = Some(
                    it.next()
                        .ok_or_else(|| "missing value for --connect".to_string())?,
                )
            }
            "--id" if with_id => {
                let raw = it
                    .next()
                    .ok_or_else(|| "missing value for --id".to_string())?;
                id = Some(raw.parse().map_err(|e| format!("bad --id: {e}"))?);
            }
            "--auth-token-file" => {
                token_file = Some(
                    it.next()
                        .ok_or_else(|| "missing value for --auth-token-file".to_string())?,
                )
            }
            _ => rest.push(flag),
        }
    }
    let connect = connect.ok_or_else(|| "missing --connect <host:port>".to_string())?;
    if with_id && id.is_none() {
        return Err("missing --id <job-id>".to_string());
    }
    Ok((connect, id, token_file, rest))
}

/// Prints a protocol reply and maps it to an exit code (`ok: false` replies
/// — queue full, unknown job, failed job — are structured JSON on stdout
/// with a non-zero exit).
fn finish_client(reply: Result<JsonValue, String>) -> ExitCode {
    match reply {
        Ok(doc) => {
            println!("{doc}");
            if doc.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_client(command: &str, argv: &[String]) -> ExitCode {
    let with_id = matches!(command, "status" | "result" | "cancel");
    let (connect, id, token_file, rest) = match split_client_args(argv, with_id) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut client = ServiceClient::new(connect);
    if let Some(path) = &token_file {
        match read_token_file(path) {
            Ok(token) => client = client.with_token(token),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match command {
        "submit" => {
            let args = match parse_args_from(rest) {
                Ok(a) if a.batch_file.is_none() => a,
                Ok(_) => {
                    eprintln!("error: submit sends one job; --batch is not supported\n\n{USAGE}");
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            // Where scoring runs and which cache file persists it are the
            // daemon's policy (its own serve flags); rejecting these beats
            // silently dropping them from the wire format.
            if args.backend != BackendKind::Inline
                || args.eval_cache_file.is_some()
                || args.eval_cache_max_entries.is_some()
            {
                eprintln!(
                    "error: --backend / --eval-cache-file / --eval-cache-max-entries are \
                     daemon policy; set them on `pimsyn serve`, not `pimsyn submit`\n\n{USAGE}"
                );
                return ExitCode::from(2);
            }
            let model = match &args.model {
                Some(name) => load_named_model(name),
                None => load_model_file(args.model_file.as_ref().expect("validated")),
            };
            let request = model
                .and_then(|model| {
                    options_from_args(&args, args.power)
                        .map(|options| SynthesisRequest::new(model, options))
                })
                .map_err(|e| e.to_string());
            match request {
                Ok(request) => finish_client(client.submit(&request)),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "status" => finish_client(client.status(id.expect("validated"))),
        "cancel" => finish_client(client.cancel(id.expect("validated"))),
        "result" => {
            // On success print only the summary document, so a socket-fetched
            // result diffs cleanly against a direct `pimsyn --output json` run.
            match client.result(id.expect("validated")) {
                Ok(doc) if doc.get("ok").and_then(JsonValue::as_bool) == Some(true) => {
                    match doc.get("summary") {
                        Some(summary) => {
                            println!("{summary}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!("error: reply lacks a summary: {doc}");
                            ExitCode::FAILURE
                        }
                    }
                }
                other => finish_client(other),
            }
        }
        "shutdown" => finish_client(client.shutdown()),
        "drain" => finish_client(client.drain()),
        other => {
            eprintln!("error: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `pimsyn zoo` arguments.
#[derive(Debug, Clone, Default, PartialEq)]
struct ZooArgs {
    describe: Option<String>,
    validate: bool,
    /// With `--validate`, restricts the check to one model.
    validate_model: Option<String>,
    json: bool,
    help: bool,
}

fn parse_zoo_args<I: IntoIterator<Item = String>>(argv: I) -> Result<ZooArgs, String> {
    let mut args = ZooArgs::default();
    let mut it = argv.into_iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--describe" => {
                args.describe = Some(it.next().ok_or("missing value for --describe")?);
            }
            "--validate" => {
                args.validate = true;
                // An optional positional model name may follow.
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        args.validate_model = it.next();
                    }
                }
            }
            "--output" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                Some(other) => return Err(format!("unknown output format `{other}`")),
                None => return Err("missing value for --output".to_string()),
            },
            "--help" => args.help = true,
            other => return Err(format!("unknown zoo flag `{other}`")),
        }
    }
    if args.describe.is_some() && args.validate {
        return Err("--describe and --validate are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Builds a zoo model and checks its structural invariants plus the
/// ONNX-JSON round trip. Returns a human-readable failure description.
fn validate_zoo_entry(entry: &zoo::ZooEntry) -> Result<(), String> {
    let model = (entry.build)();
    if model.name() != entry.name {
        return Err(format!(
            "registry name `{}` != model name `{}`",
            entry.name,
            model.name()
        ));
    }
    if model.weight_layer_count() == 0 {
        return Err("model has no weight layers".to_string());
    }
    let text = onnx::to_json(&model);
    let reparsed = onnx::parse_model(&text).map_err(|e| format!("ONNX round trip failed: {e}"))?;
    if reparsed != model {
        return Err("ONNX round trip is not the identity".to_string());
    }
    Ok(())
}

fn zoo_listing_json() -> JsonValue {
    JsonValue::Array(
        zoo::entries()
            .iter()
            .map(|entry| {
                let model = (entry.build)();
                let stats = model.stats();
                let shape = model.input_shape();
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::String(entry.name.to_string())),
                    (
                        "description".into(),
                        JsonValue::String(entry.description.to_string()),
                    ),
                    (
                        "input_shape".into(),
                        JsonValue::Array(vec![
                            JsonValue::Number(shape.channels as f64),
                            JsonValue::Number(shape.height as f64),
                            JsonValue::Number(shape.width as f64),
                        ]),
                    ),
                    (
                        "weight_layers".into(),
                        JsonValue::Number(stats.weight_layer_count as f64),
                    ),
                    (
                        "total_macs".into(),
                        JsonValue::Number(stats.total_macs as f64),
                    ),
                    (
                        "total_weights".into(),
                        JsonValue::Number(stats.total_weights as f64),
                    ),
                ])
            })
            .collect(),
    )
}

fn run_zoo(argv: &[String]) -> ExitCode {
    let args = match parse_zoo_args(argv.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &args.describe {
        let model = match load_named_model(name) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stats = model.stats();
        let shape = model.input_shape();
        let entry = zoo::entries()
            .iter()
            .find(|e| e.name == name.as_str())
            .expect("load_named_model succeeded");
        println!("{}: {}", entry.name, entry.description);
        println!(
            "  input {}x{}x{}, {} layers ({} weight layers)",
            shape.channels, shape.height, shape.width, stats.layer_count, stats.weight_layer_count
        );
        println!(
            "  {:.3} GMACs, {:.2} M weights, peak activation {} elems",
            stats.total_macs as f64 / 1e9,
            stats.total_weights as f64 / 1e6,
            stats.peak_activation
        );
        println!("  weight layers:");
        for wl in model.weight_layers() {
            let pool = wl
                .pool
                .map(|(kind, size)| format!(" pool {kind}{size}"))
                .unwrap_or_default();
            println!(
                "    {:>3} {:<14} {}x{} k{} s{} g{} -> {}x{}x{}{}{}{}",
                wl.index,
                wl.name,
                wl.in_channels,
                wl.out_channels,
                wl.kernel,
                wl.stride,
                wl.groups,
                wl.out_channels,
                wl.out_height,
                wl.out_width,
                if wl.relu { " relu" } else { "" },
                pool,
                if wl.feeds_add { " eltwise" } else { "" },
            );
        }
        return ExitCode::SUCCESS;
    }

    if args.validate {
        let entries: Vec<&zoo::ZooEntry> = match &args.validate_model {
            Some(name) => match zoo::entries().iter().find(|e| e.name == name.as_str()) {
                Some(entry) => vec![entry],
                None => {
                    eprintln!(
                        "error: unknown zoo model `{name}` (available: {})",
                        zoo::names().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            None => zoo::entries().iter().collect(),
        };
        let mut failures = 0usize;
        for entry in &entries {
            match validate_zoo_entry(entry) {
                Ok(()) => eprintln!("{:<18} ok", entry.name),
                Err(e) => {
                    failures += 1;
                    eprintln!("{:<18} FAILED: {e}", entry.name);
                }
            }
        }
        if failures > 0 {
            eprintln!(
                "error: {failures}/{} zoo models failed validation",
                entries.len()
            );
            return ExitCode::FAILURE;
        }
        println!("all {} zoo models validate", entries.len());
        return ExitCode::SUCCESS;
    }

    if args.json {
        println!("{}", zoo_listing_json());
    } else {
        for entry in zoo::entries() {
            println!("{:<18} {}", entry.name, entry.description);
        }
    }
    ExitCode::SUCCESS
}

/// `pimsyn export` flags that are not part of the shared synthesis arg set.
#[derive(Debug, Clone, Default, PartialEq)]
struct ExportArgs {
    pretty: bool,
    out: Option<String>,
}

/// Splits export-specific flags from the shared synthesis flags.
fn split_export_args(argv: &[String]) -> Result<(ExportArgs, Vec<String>), String> {
    let mut export = ExportArgs::default();
    let mut rest = Vec::new();
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--pretty" => export.pretty = true,
            "--out" => export.out = Some(it.next().ok_or("missing value for --out")?),
            _ => rest.push(flag),
        }
    }
    Ok((export, rest))
}

fn run_export(argv: &[String]) -> ExitCode {
    let fail = |e: String| {
        eprintln!("error: {e}\n\n{USAGE}");
        ExitCode::from(2)
    };
    match argv.first().map(String::as_str) {
        Some("pimsim") => {}
        Some(other) => return fail(format!("unknown export format `{other}` (try `pimsim`)")),
        None => return fail("export needs a format, e.g. `pimsyn export pimsim ...`".into()),
    }
    let (export, rest) = match split_export_args(&argv[1..]) {
        Ok(split) => split,
        Err(e) => return fail(e),
    };
    let args = match parse_args_from(rest) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.batch_file.is_some() {
        return fail("`pimsyn export` synthesizes a single model; --batch is not supported".into());
    }

    let result = (|| -> Result<SynthesisResult, String> {
        let model = match &args.model {
            Some(name) => load_named_model(name)?,
            None => load_model_file(args.model_file.as_ref().expect("validated"))?,
        };
        let options = options_from_args(&args, args.power)?;
        pimsyn::Synthesizer::new(options)
            .synthesize(&model)
            .map_err(|e| e.to_string())
    })();
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !args.quiet {
        eprintln!(
            "synthesized {} in {:.1}s ({} evaluations); exporting PIMSIM-NN config",
            result.model.name(),
            result.elapsed.as_secs_f64(),
            result.evaluations
        );
    }
    let text = if export.pretty {
        pimsyn_export::to_pimsim_config_pretty(&result)
    } else {
        pimsyn_export::to_pimsim_config(&result)
    };
    match &export.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Worker mode short-circuits everything else: the process is a child of
    // `--backend subprocess` speaking the JSON-lines protocol on stdio.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return pimsyn::run_worker_stdio();
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return run_serve(&argv[1..]),
        Some("gateway") => return run_gateway(&argv[1..]),
        Some("worker-serve") => return run_worker_serve(&argv[1..]),
        Some("worker-stop") => return run_worker_stop(&argv[1..]),
        Some("zoo") => return run_zoo(&argv[1..]),
        Some("export") => return run_export(&argv[1..]),
        Some(cmd @ ("submit" | "status" | "result" | "cancel" | "shutdown" | "drain")) => {
            return run_client(cmd, &argv[1..]);
        }
        _ => {}
    }
    let args = match parse_args_from(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.batch_file.is_some() {
        run_batch(&args)
    } else {
        run_single(&args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn minimal_invocation_parses_with_library_defaults() {
        let args = parse(&["--model", "alexnet-cifar", "--power", "9"]).unwrap();
        assert_eq!(args.model.as_deref(), Some("alexnet-cifar"));
        assert_eq!(args.power, 9.0);
        // The CLI seed default is the library default (the flow is
        // deterministic given the seed, so CLI and API runs agree).
        assert_eq!(args.seed, SynthesisOptions::DEFAULT_SEED);
        assert_eq!(args.effort, Effort::Fast);
        assert_eq!(args.output, OutputFormat::Text);
        assert!(args.timeout.is_none());
        assert!(args.max_evals.is_none());
        assert!(!args.quiet);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&["--model", "vgg16", "--power", "9", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn missing_power_is_rejected() {
        let err = parse(&["--model", "vgg16"]).unwrap_err();
        assert!(err.contains("--power"), "{err}");
        let err = parse(&["--model", "vgg16", "--power", "-3"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn model_and_model_file_are_mutually_exclusive() {
        let err = parse(&[
            "--model",
            "vgg16",
            "--model-file",
            "net.json",
            "--power",
            "9",
        ])
        .unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        let err = parse(&["--power", "9"]).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
    }

    #[test]
    fn bad_timeout_is_rejected() {
        let err = parse(&["--model", "vgg16", "--power", "9", "--timeout", "soon"]).unwrap_err();
        assert!(err.contains("bad --timeout"), "{err}");
        let err = parse(&["--model", "vgg16", "--power", "9", "--timeout", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse(&["--model", "vgg16", "--power", "9", "--timeout"]).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
        // Values Duration::from_secs_f64 would panic on must error cleanly.
        for huge in ["inf", "1e300", "nan"] {
            let err = parse(&["--model", "vgg16", "--power", "9", "--timeout", huge]).unwrap_err();
            assert!(err.contains("--timeout"), "{err}");
        }
    }

    #[test]
    fn budget_flags_parse() {
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--timeout",
            "1.5",
            "--max-evals",
            "100",
        ])
        .unwrap();
        assert_eq!(args.timeout, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(args.max_evals, Some(100));
        let err = parse(&["--model", "vgg16", "--power", "9", "--max-evals", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn batch_conflicts_with_model_flags() {
        let err = parse(&["--batch", "jobs.json", "--model", "vgg16"]).unwrap_err();
        assert!(err.contains("--batch"), "{err}");
        // Batch mode needs neither --power nor --model.
        let args = parse(&["--batch", "jobs.json"]).unwrap();
        assert_eq!(args.batch_file.as_deref(), Some("jobs.json"));
        // ... but an explicit --power must still be sane.
        let err = parse(&["--batch", "jobs.json", "--power", "-1"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn batch_power_flag_is_the_job_default() {
        let cli = parse(&["--batch", "jobs.json", "--power", "9"]).unwrap();
        let job = JsonValue::parse(r#"{"model": "alexnet-cifar"}"#).unwrap();
        let request = batch_job_request(&job, &cli, 0).unwrap();
        assert_eq!(request.options.power_budget, Watts(9.0));
        // A job-level field still wins over the CLI default.
        let job = JsonValue::parse(r#"{"model": "alexnet-cifar", "power": 12}"#).unwrap();
        let request = batch_job_request(&job, &cli, 1).unwrap();
        assert_eq!(request.options.power_budget, Watts(12.0));
        // Without either, the error points at both spellings.
        let bare = parse(&["--batch", "jobs.json"]).unwrap();
        let job = JsonValue::parse(r#"{"model": "alexnet-cifar"}"#).unwrap();
        let err = batch_job_request(&job, &bare, 0).unwrap_err();
        assert!(err.contains("--power"), "{err}");
    }

    #[test]
    fn eval_cache_flags_parse() {
        let args = parse(&["--model", "vgg16", "--power", "9"]).unwrap();
        assert!(args.eval_cache, "cache must default on");
        assert_eq!(args.eval_cache_capacity, None);
        let args = parse(&["--model", "vgg16", "--power", "9", "--eval-cache", "off"]).unwrap();
        assert!(!args.eval_cache);
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-capacity",
            "1024",
        ])
        .unwrap();
        assert_eq!(args.eval_cache_capacity, Some(1024));
        let err =
            parse(&["--model", "vgg16", "--power", "9", "--eval-cache", "maybe"]).unwrap_err();
        assert!(err.contains("--eval-cache"), "{err}");
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-capacity",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn eval_cache_flags_reach_options() {
        let args = parse(&["--model", "vgg16", "--power", "9", "--eval-cache", "off"]).unwrap();
        let options = options_from_args(&args, args.power).unwrap();
        assert!(!options.eval_cache.enabled);
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-capacity",
            "77",
        ])
        .unwrap();
        let options = options_from_args(&args, args.power).unwrap();
        assert!(options.eval_cache.enabled);
        assert_eq!(options.eval_cache.capacity, 77);
    }

    #[test]
    fn backend_flags_parse_and_reach_options() {
        let args = parse(&["--model", "vgg16", "--power", "9"]).unwrap();
        assert_eq!(args.backend, BackendKind::Inline);
        assert!(args.eval_cache_file.is_none());
        assert!(args.max_unique_evals.is_none());
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--backend",
            "subprocess:2",
            "--eval-cache-file",
            "/tmp/c.json",
            "--max-unique-evals",
            "40",
        ])
        .unwrap();
        assert_eq!(args.backend, BackendKind::Subprocess { workers: 2 });
        assert_eq!(args.eval_cache_file.as_deref(), Some("/tmp/c.json"));
        assert_eq!(args.max_unique_evals, Some(40));
        let options = options_from_args(&args, args.power).unwrap();
        assert_eq!(options.backend.kind, BackendKind::Subprocess { workers: 2 });
        assert_eq!(
            options.backend.cache_file.as_deref(),
            Some(std::path::Path::new("/tmp/c.json"))
        );
        assert_eq!(options.max_unique_evaluations, Some(40));

        let err = parse(&["--model", "vgg16", "--power", "9", "--backend", "gpu"]).unwrap_err();
        assert!(err.contains("--backend"), "{err}");
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--max-unique-evals",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // Persistence without a memo to persist is rejected, not ignored.
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache",
            "off",
            "--eval-cache-file",
            "/tmp/c.json",
        ])
        .unwrap_err();
        assert!(err.contains("--eval-cache-file"), "{err}");
    }

    #[test]
    fn eval_cache_max_entries_parses_and_requires_a_file() {
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-file",
            "/tmp/c.json",
            "--eval-cache-max-entries",
            "100",
        ])
        .unwrap();
        assert_eq!(args.eval_cache_max_entries, Some(100));
        let options = options_from_args(&args, args.power).unwrap();
        assert_eq!(options.backend.cache_max_entries, Some(100));
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-max-entries",
            "100",
        ])
        .unwrap_err();
        assert!(err.contains("--eval-cache-file"), "{err}");
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--eval-cache-file",
            "/tmp/c.json",
            "--eval-cache-max-entries",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn remote_token_file_needs_a_remote_roster_except_in_batch_mode() {
        // Single-job mode: pointless without a remote backend.
        let err = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--remote-token-file",
            "/tmp/tok",
        ])
        .unwrap_err();
        assert!(err.contains("--remote-token-file"), "{err}");
        // With a roster it parses and reaches the options.
        let args = parse(&[
            "--model",
            "vgg16",
            "--power",
            "9",
            "--backend",
            "remote:h:1",
            "--remote-token-file",
            "/tmp/tok",
        ])
        .unwrap();
        let options = options_from_args(&args, args.power).unwrap();
        assert_eq!(
            options.backend.remote_token_file.as_deref(),
            Some(std::path::Path::new("/tmp/tok"))
        );
        // Batch mode: individual jobs may select remote via their
        // `backend` field, so the flag is accepted up front...
        let cli = parse(&["--batch", "jobs.json", "--remote-token-file", "/tmp/tok"]).unwrap();
        // ... and flows into a job that does.
        let job =
            JsonValue::parse(r#"{"model": "alexnet-cifar", "power": 9, "backend": "remote:h:1"}"#)
                .unwrap();
        let request = batch_job_request(&job, &cli, 0).unwrap();
        assert_eq!(
            request.options.backend.kind,
            BackendKind::Remote {
                endpoints: vec!["h:1".to_string()]
            }
        );
        assert_eq!(
            request.options.backend.remote_token_file.as_deref(),
            Some(std::path::Path::new("/tmp/tok"))
        );
        // A malformed per-job backend is named in the error.
        let bad = JsonValue::parse(r#"{"model": "alexnet-cifar", "power": 9, "backend": "gpu"}"#)
            .unwrap();
        let err = batch_job_request(&bad, &cli, 2).unwrap_err();
        assert!(
            err.contains("batch job 2") && err.contains("backend"),
            "{err}"
        );
    }

    fn parse_serve(args: &[&str]) -> Result<ServeArgs, String> {
        parse_serve_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn serve_args_parse_and_validate() {
        let args = parse_serve(&[
            "--listen",
            "127.0.0.1:7741",
            "--job-slots",
            "2",
            "--queue-depth",
            "8",
            "--backend",
            "subprocess:2",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(args.listen, "127.0.0.1:7741");
        assert_eq!(args.job_slots, Some(2));
        assert_eq!(args.queue_depth, Some(8));
        assert_eq!(args.backend, BackendKind::Subprocess { workers: 2 });
        assert!(args.quiet);

        let err = parse_serve(&[]).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = parse_serve(&["--listen", "x", "--job-slots", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_serve(&["--listen", "x", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown serve flag"), "{err}");
        let err = parse_serve(&["--listen", "x", "--eval-cache-max-entries", "5"]).unwrap_err();
        assert!(err.contains("--eval-cache-file"), "{err}");
        let args = parse_serve(&["--listen", "x", "--auth-token-file", "tok.txt"]).unwrap();
        assert_eq!(args.auth_token_file.as_deref(), Some("tok.txt"));
    }

    #[test]
    fn serve_worker_registry_implies_a_remote_backend() {
        // No explicit backend: the registry fleet is the backend, with an
        // initially empty roster that announcing workers will grow.
        let args = parse_serve(&["--listen", "x", "--worker-registry", "127.0.0.1:0"]).unwrap();
        assert_eq!(args.worker_registry.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            args.backend,
            BackendKind::Remote {
                endpoints: Vec::new()
            }
        );
        // An explicit remote backend keeps its static seed endpoints.
        let args = parse_serve(&[
            "--listen",
            "x",
            "--worker-registry",
            "127.0.0.1:0",
            "--backend",
            "remote:h:1",
        ])
        .unwrap();
        assert_eq!(
            args.backend,
            BackendKind::Remote {
                endpoints: vec!["h:1".to_string()]
            }
        );
        // The auto-remote backend makes --remote-token-file coherent too.
        let args = parse_serve(&[
            "--listen",
            "x",
            "--worker-registry",
            "127.0.0.1:0",
            "--remote-token-file",
            "/tmp/tok",
        ])
        .unwrap();
        assert_eq!(args.remote_token_file.as_deref(), Some("/tmp/tok"));
        // An explicitly non-remote backend contradicts the registry.
        let err = parse_serve(&[
            "--listen",
            "x",
            "--worker-registry",
            "127.0.0.1:0",
            "--backend",
            "subprocess:2",
        ])
        .unwrap_err();
        assert!(err.contains("--worker-registry"), "{err}");
        // The registry address must look dialable.
        let err = parse_serve(&["--listen", "x", "--worker-registry", "noport"]).unwrap_err();
        assert!(err.contains("HOST:PORT"), "{err}");
    }

    fn parse_gateway(args: &[&str]) -> Result<GatewayArgs, String> {
        parse_gateway_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn gateway_args_parse_and_validate() {
        let args = parse_gateway(&[
            "--listen",
            "127.0.0.1:0",
            "--keys",
            "tenants.json",
            "--job-slots",
            "2",
            "--queue-depth",
            "8",
            "--scheduler",
            "fair",
        ])
        .unwrap();
        assert_eq!(args.listen, "127.0.0.1:0");
        assert_eq!(args.keys.as_deref(), Some("tenants.json"));
        assert_eq!(args.job_slots, Some(2));
        assert_eq!(args.queue_depth, Some(8));
        assert_eq!(args.scheduler, Some(pimsyn::SchedulingPolicy::WeightedFair));

        // The scheduler default is decided later, from --keys presence.
        let args = parse_gateway(&["--listen", "h:0"]).unwrap();
        assert_eq!(args.scheduler, None);

        let err = parse_gateway(&[]).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = parse_gateway(&["--listen", "x", "--scheduler", "lifo"]).unwrap_err();
        assert!(err.contains("fifo|fair"), "{err}");
        let err = parse_gateway(&["--listen", "x", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown gateway flag"), "{err}");
        let err = parse_gateway(&["--listen", "x", "--eval-cache-max-entries", "5"]).unwrap_err();
        assert!(err.contains("--eval-cache-file"), "{err}");

        // --worker-registry works exactly like on `serve`.
        let args = parse_gateway(&["--listen", "x", "--worker-registry", "127.0.0.1:0"]).unwrap();
        assert_eq!(args.worker_registry.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            args.backend,
            BackendKind::Remote {
                endpoints: Vec::new()
            }
        );
        let err = parse_gateway(&[
            "--listen",
            "x",
            "--worker-registry",
            "127.0.0.1:0",
            "--backend",
            "inline",
        ])
        .unwrap_err();
        assert!(err.contains("--worker-registry"), "{err}");
    }

    fn parse_worker_serve(args: &[&str]) -> Result<WorkerServeArgs, String> {
        parse_worker_serve_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn worker_serve_args_parse_and_validate() {
        let args = parse_worker_serve(&["--listen", "127.0.0.1:0", "--slots", "2"]).unwrap();
        assert_eq!(args.listen, "127.0.0.1:0");
        assert_eq!(args.slots, 2);
        assert_eq!(args.announce, None);
        assert_eq!(args.protocol_max, None);

        let args = parse_worker_serve(&[
            "--listen",
            "127.0.0.1:0",
            "--announce",
            "127.0.0.1:7742",
            "--protocol-max",
            "1",
        ])
        .unwrap();
        assert_eq!(args.announce.as_deref(), Some("127.0.0.1:7742"));
        assert_eq!(args.protocol_max, Some(1));

        let err = parse_worker_serve(&[]).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = parse_worker_serve(&["--listen", "x", "--protocol-max", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_worker_serve(&["--listen", "x", "--announce", "noport"]).unwrap_err();
        assert!(err.contains("HOST:PORT"), "{err}");
        let err = parse_worker_serve(&["--listen", "x", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown worker-serve flag"), "{err}");
    }

    #[test]
    fn client_args_split_connect_and_id() {
        let argv: Vec<String> = ["--connect", "127.0.0.1:7741", "--id", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (connect, id, token_file, rest) = split_client_args(&argv, true).unwrap();
        assert_eq!(connect, "127.0.0.1:7741");
        assert_eq!(id, Some(3));
        assert_eq!(token_file, None);
        assert!(rest.is_empty());

        let argv: Vec<String> = [
            "--connect",
            "h:1",
            "--auth-token-file",
            "tok.txt",
            "--model",
            "vgg16",
            "--power",
            "9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (connect, id, token_file, rest) = split_client_args(&argv, false).unwrap();
        assert_eq!(connect, "h:1");
        assert_eq!(id, None);
        assert_eq!(token_file.as_deref(), Some("tok.txt"));
        assert_eq!(rest, vec!["--model", "vgg16", "--power", "9"]);

        let err = split_client_args(&[], true).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let argv: Vec<String> = vec!["--connect".into(), "h:1".into()];
        let err = split_client_args(&argv, true).unwrap_err();
        assert!(err.contains("--id"), "{err}");
    }

    #[test]
    fn stats_line_summarizes_hit_rate() {
        let line = stats_line(&EvaluatorStats {
            scored: 200,
            unique_evaluations: 150,
            cache_hits: 50,
            ..EvaluatorStats::default()
        });
        assert!(line.contains("200 candidates scored"), "{line}");
        assert!(line.contains("150 unique"), "{line}");
        assert!(line.contains("25% hit rate"), "{line}");
    }

    #[test]
    fn output_format_parses() {
        let args = parse(&["--model", "vgg16", "--power", "9", "--output", "json"]).unwrap();
        assert_eq!(args.output, OutputFormat::Json);
        let err = parse(&["--model", "vgg16", "--power", "9", "--output", "xml"]).unwrap_err();
        assert!(err.contains("unknown output format"), "{err}");
    }

    #[test]
    fn help_short_circuits_validation() {
        let args = parse(&["--help"]).unwrap();
        assert!(args.help);
    }

    #[test]
    fn batch_job_request_applies_overrides_and_defaults() {
        let cli = parse(&["--batch", "jobs.json", "--seed", "7", "--effort", "paper"]).unwrap();
        let job = JsonValue::parse(
            r#"{"model": "alexnet-cifar", "power": 9, "effort": "fast",
                "label": "smoke", "max-evals": 50}"#,
        )
        .unwrap();
        let request = batch_job_request(&job, &cli, 0).unwrap();
        assert_eq!(request.display_label(), "smoke");
        assert_eq!(request.options.power_budget, Watts(9.0));
        assert_eq!(request.options.effort, Effort::Fast); // job override
        assert_eq!(request.options.seed, 7); // CLI default inherited
        assert_eq!(request.options.max_evaluations, Some(50));
    }

    #[test]
    fn batch_job_request_rejects_bad_jobs() {
        let cli = parse(&["--batch", "jobs.json"]).unwrap();
        for (job, needle) in [
            (r#"{"power": 9}"#, "exactly one"),
            (r#"{"model": "alexnet-cifar"}"#, "power"),
            (r#"{"model": "nope", "power": 9}"#, "unknown zoo model"),
            (
                r#"{"model": "alexnet-cifar", "power": 9, "surprise": 1}"#,
                "unknown field",
            ),
            (r#"[1, 2]"#, "expected a JSON object"),
        ] {
            let parsed = JsonValue::parse(job).unwrap();
            let err = batch_job_request(&parsed, &cli, 3).unwrap_err();
            assert!(err.contains("batch job 3"), "{err}");
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn unknown_model_error_lists_zoo_names() {
        let err = load_named_model("nope").unwrap_err();
        assert!(err.contains("unknown zoo model `nope`"), "{err}");
        for name in zoo::names() {
            assert!(err.contains(name), "`{err}` should list `{name}`");
        }
    }

    fn parse_zoo(args: &[&str]) -> Result<ZooArgs, String> {
        parse_zoo_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn zoo_args_parse_and_validate() {
        assert_eq!(parse_zoo(&[]).unwrap(), ZooArgs::default());
        let args = parse_zoo(&["--describe", "mobilenet"]).unwrap();
        assert_eq!(args.describe.as_deref(), Some("mobilenet"));
        let args = parse_zoo(&["--validate"]).unwrap();
        assert!(args.validate);
        assert_eq!(args.validate_model, None);
        let args = parse_zoo(&["--validate", "vgg16"]).unwrap();
        assert_eq!(args.validate_model.as_deref(), Some("vgg16"));
        let args = parse_zoo(&["--validate", "--output", "json"]).unwrap();
        assert!(args.validate && args.json);
        assert_eq!(args.validate_model, None);

        let err = parse_zoo(&["--describe", "x", "--validate"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_zoo(&["--output", "xml"]).unwrap_err();
        assert!(err.contains("output format"), "{err}");
        let err = parse_zoo(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown zoo flag"), "{err}");
    }

    #[test]
    fn every_zoo_entry_validates() {
        for entry in zoo::entries() {
            validate_zoo_entry(entry).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
        let listing = zoo_listing_json();
        assert_eq!(listing.as_array().unwrap().len(), zoo::entries().len());
    }

    #[test]
    fn export_args_split_from_synthesis_flags() {
        let argv: Vec<String> = ["--model", "vgg16", "--pretty", "--power", "9", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (export, rest) = split_export_args(&argv).unwrap();
        assert!(export.pretty);
        assert_eq!(export.out.as_deref(), Some("x"));
        assert_eq!(rest, vec!["--model", "vgg16", "--power", "9"]);
        // The remainder still parses as ordinary synthesis flags.
        let args = parse_args_from(rest).unwrap();
        assert_eq!(args.model.as_deref(), Some("vgg16"));

        let argv: Vec<String> = vec!["--out".into()];
        let err = split_export_args(&argv).unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }
}
