//! The gateway server: accept loop, routing, job registry, drain.
//!
//! One thread per connection, one request per connection (see
//! [`crate::http`]). The gateway owns a job registry mapping service job
//! ids to their tenant, replayable event log and submit timestamp; the
//! [`SynthesisService`] underneath owns queueing, scheduling and
//! execution. Routes:
//!
//! | Route                     | Verb   | Purpose                          |
//! |---------------------------|--------|----------------------------------|
//! | `/v1/jobs`                | POST   | submit a job (202 + id)          |
//! | `/v1/jobs/{id}`           | GET    | status                           |
//! | `/v1/jobs/{id}`           | DELETE | cancel                           |
//! | `/v1/jobs/{id}/result`    | GET    | block for (or poll) the summary  |
//! | `/v1/jobs/{id}/events`    | GET    | SSE / NDJSON event stream        |
//! | `/v1/drain`               | POST   | graceful drain, then exit        |
//! | `/metrics`                | GET    | Prometheus text exposition       |
//! | `/healthz`                | GET    | liveness probe                   |
//!
//! With a tenant registry, `/v1/*` requires `Authorization: Bearer <key>`
//! and jobs are invisible across tenants (404, not 403 — ids don't leak).
//! `/metrics` and `/healthz` stay open for scrapers and probes.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pimsyn::{
    event_to_json, EventSink, JobStatus, ServiceError, SynthesisEvent, SynthesisRequest,
    SynthesisService, SynthesisSummary,
};
use pimsyn_model::json::JsonValue;

use crate::http::{self, HttpParseError, HttpRequest};
use crate::metrics::MetricsRegistry;
use crate::payload;
use crate::tenant::{TenantRegistry, TenantSource};

/// Gateway-level policy, beyond the service's own configuration.
#[derive(Debug, Clone, Default)]
pub struct GatewayConfig {
    /// API keys and per-tenant policies; empty = open (no auth, one
    /// anonymous lane).
    pub tenants: TenantRegistry,
    /// The keys file behind [`tenants`](Self::tenants), when it came from
    /// disk. With a path set the gateway re-reads the file whenever its
    /// mtime/size changes, so keys rotate on a live gateway — added keys
    /// start authenticating, removed keys start getting 401s — without a
    /// restart.
    pub keys_file: Option<String>,
    /// Suppress per-request log lines on stderr (the script-facing
    /// `listening on <addr>` line prints regardless).
    pub quiet: bool,
    /// Interval between keep-alive frames on idle event streams. `None`
    /// reads `PIMSYN_GATEWAY_HEARTBEAT_SECS` from the environment, falling
    /// back to [`DEFAULT_HEARTBEAT`]; `Some(Duration::ZERO)` disables
    /// heartbeats entirely.
    pub heartbeat: Option<Duration>,
    /// The worker registry of a `--worker-registry` gateway. Only read at
    /// `/metrics` scrape time (fleet gauges); announcing workers feed it
    /// through its own TCP listener.
    pub worker_registry: Option<Arc<pimsyn::WorkerRegistry>>,
}

/// Default keep-alive interval for idle event streams: short enough that
/// common reverse-proxy idle timeouts (30–60 s) never fire mid-job.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(15);

impl GatewayConfig {
    /// An open, chatty gateway.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a tenant registry (enables bearer-token auth).
    #[must_use]
    pub fn with_tenants(mut self, tenants: TenantRegistry) -> Self {
        self.tenants = tenants;
        self
    }

    /// Points the gateway at the keys file its tenant registry was loaded
    /// from, enabling live key rotation (mtime-based reload).
    #[must_use]
    pub fn with_keys_file(mut self, path: impl Into<String>) -> Self {
        self.keys_file = Some(path.into());
        self
    }

    /// Attaches the worker registry whose fleet state `/metrics` reports.
    #[must_use]
    pub fn with_worker_registry(mut self, registry: Arc<pimsyn::WorkerRegistry>) -> Self {
        self.worker_registry = Some(registry);
        self
    }

    /// Sets request logging verbosity.
    #[must_use]
    pub fn with_quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Sets the idle-stream keep-alive interval explicitly
    /// (`Duration::ZERO` disables heartbeats).
    #[must_use]
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = Some(interval);
        self
    }

    /// The effective heartbeat interval: the explicit setting, else the
    /// `PIMSYN_GATEWAY_HEARTBEAT_SECS` environment variable (0 disables),
    /// else [`DEFAULT_HEARTBEAT`].
    fn heartbeat_interval(&self) -> Duration {
        self.heartbeat.unwrap_or_else(|| {
            std::env::var("PIMSYN_GATEWAY_HEARTBEAT_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(DEFAULT_HEARTBEAT, Duration::from_secs)
        })
    }
}

/// Buffers a job's events so late subscribers replay the full stream.
struct EventLog {
    events: Mutex<Vec<SynthesisEvent>>,
    grown: Condvar,
}

impl EventLog {
    fn new() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            grown: Condvar::new(),
        }
    }

    fn push(&self, event: SynthesisEvent) {
        self.events.lock().expect("event log").push(event);
        self.grown.notify_all();
    }
}

/// What the gateway remembers about one submitted job.
struct JobRecord {
    /// Owning tenant ("" = anonymous); access control compares this.
    tenant: String,
    log: EventLog,
    /// When the submit was accepted — the latency histogram measures from
    /// here to the terminal event, queue wait included.
    submitted: Instant,
}

/// The per-job event sink: logs every event for replay and folds terminal
/// statistics into the metrics registry.
struct JobSink {
    record: Arc<JobRecord>,
    metrics: Arc<MetricsRegistry>,
    /// The latest evaluator-stats snapshot; the value at `Finished` time
    /// summarizes the job (stats are job-wide and monotonic).
    last_stats: Mutex<Option<[u64; 6]>>,
}

impl EventSink for JobSink {
    fn emit(&self, event: SynthesisEvent) {
        match &event {
            SynthesisEvent::EvaluatorStats { stats, .. } => {
                *self.last_stats.lock().expect("job sink") = Some([
                    stats.scored as u64,
                    stats.unique_evaluations as u64,
                    stats.cache_hits as u64,
                    stats.delta_hits as u64,
                    stats.delta_fallbacks as u64,
                    stats.layers_recomputed as u64,
                ]);
            }
            SynthesisEvent::Finished { .. } => {
                let latency = self.record.submitted.elapsed().as_secs_f64();
                self.metrics.record_finished(&self.record.tenant, latency);
                if let Some([scored, unique, hits, delta_hits, fallbacks, layers]) =
                    *self.last_stats.lock().expect("job sink")
                {
                    self.metrics
                        .record_eval_stats(scored, unique, hits, delta_hits, fallbacks, layers);
                }
            }
            _ => {}
        }
        self.record.log.push(event);
    }
}

struct GatewayShared {
    service: Arc<SynthesisService>,
    configure: Box<dyn Fn(&mut SynthesisRequest) + Send + Sync>,
    tenants: TenantSource,
    metrics: Arc<MetricsRegistry>,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    stop: AtomicBool,
    addr: SocketAddr,
    quiet: bool,
    heartbeat: Duration,
    registry: Option<Arc<pimsyn::WorkerRegistry>>,
}

impl GatewayShared {
    fn note(&self, message: &str) {
        if !self.quiet {
            eprintln!("pimsyn gateway [{}]: {message}", self.addr);
        }
    }
}

/// Runs the gateway behind `listener` until a `POST /v1/drain` completes,
/// blocking the calling thread. `configure` overlays server-side policy
/// (evaluation backend, cache file) onto every submitted request, exactly
/// like [`pimsyn::serve`]'s overlay.
///
/// On startup the actually-bound address — including the kernel-resolved
/// port when the listener was bound to port 0 — prints to stderr as
/// `pimsyn gateway: listening on <addr>` regardless of
/// [`quiet`](GatewayConfig::quiet), so scripts can bind port 0 instead of
/// racing for free ports.
///
/// # Errors
///
/// Propagates listener-level IO errors; per-connection errors only drop
/// that connection.
pub fn serve_gateway<F>(
    listener: TcpListener,
    service: Arc<SynthesisService>,
    configure: F,
    config: GatewayConfig,
) -> std::io::Result<()>
where
    F: Fn(&mut SynthesisRequest) + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let heartbeat = config.heartbeat_interval();
    let shared = Arc::new(GatewayShared {
        service,
        configure: Box::new(configure),
        tenants: TenantSource::new(config.tenants, config.keys_file),
        metrics: Arc::new(MetricsRegistry::new()),
        jobs: Mutex::new(HashMap::new()),
        stop: AtomicBool::new(false),
        addr,
        quiet: config.quiet,
        heartbeat,
        registry: config.worker_registry,
    });
    // Unconditional: the script-facing bound-address line (see above).
    eprintln!("pimsyn gateway: listening on {addr}");
    let tenants = shared.tenants.current();
    if tenants.requires_auth() {
        shared.note(&format!(
            "bearer-token auth enabled ({} tenants)",
            tenants.len()
        ));
    }
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        thread::spawn(move || handle_connection(&shared, stream));
    }
    shared.note("stopped");
    Ok(())
}

/// Handle to a gateway running on a background thread.
#[derive(Debug)]
pub struct GatewayHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl GatewayHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the gateway to stop (a completed drain) and returns its
    /// exit result.
    ///
    /// # Panics
    ///
    /// Panics if the gateway thread itself panicked (a bug).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("gateway thread panicked")
    }
}

/// [`serve_gateway`] on a background thread, returning with a handle.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_gateway_in_background<F>(
    listener: TcpListener,
    service: Arc<SynthesisService>,
    configure: F,
    config: GatewayConfig,
) -> std::io::Result<GatewayHandle>
where
    F: Fn(&mut SynthesisRequest) + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let thread = thread::spawn(move || serve_gateway(listener, service, configure, config));
    Ok(GatewayHandle { addr, thread })
}

/// Unblocks an accept loop that is waiting in `listener.incoming()` by
/// making (and dropping) one throwaway connection.
fn poke_listener(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_body(code: &str, detail: &str) -> Vec<u8> {
    object(vec![
        ("code", JsonValue::String(code.to_string())),
        ("error", JsonValue::String(detail.to_string())),
    ])
    .to_string()
    .into_bytes()
}

/// The response of one routed request: status, content type, extra
/// headers, body. Streaming routes write the stream themselves and return
/// `None`.
struct Outcome {
    status: u16,
    content_type: &'static str,
    extra: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Outcome {
    fn json(status: u16, body: JsonValue) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.to_string().into_bytes(),
        }
    }

    fn error(status: u16, code: &str, detail: &str) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: error_body(code, detail),
        }
    }
}

fn handle_connection(shared: &Arc<GatewayShared>, mut stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpParseError::ConnectionClosed) => return,
        Err(e @ HttpParseError::BodyTooLarge { .. }) => {
            shared.metrics.record_http("(malformed)", 413);
            let _ = http::write_response(
                &mut stream,
                413,
                "application/json",
                &[],
                &error_body("body_too_large", &e.to_string()),
            );
            return;
        }
        Err(e) => {
            shared.metrics.record_http("(malformed)", 400);
            let _ = http::write_response(
                &mut stream,
                400,
                "application/json",
                &[],
                &error_body("bad_request", &e.to_string()),
            );
            return;
        }
    };
    route(shared, &mut stream, &request);
}

/// Splits `/v1/jobs/{id}[/leaf]` into `(id, leaf)`.
fn job_path(path: &str) -> Option<(u64, Option<&str>)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    let (id, leaf) = match rest.split_once('/') {
        Some((id, leaf)) => (id, Some(leaf)),
        None => (rest, None),
    };
    Some((id.parse().ok()?, leaf))
}

fn route(shared: &Arc<GatewayShared>, stream: &mut TcpStream, request: &HttpRequest) {
    // Resolve authentication once against the keys file's *current* state
    // (rotations apply to the very next request); per-route code decides
    // whether the route needs it. `Ok(None)` = open mode (no registry).
    let tenants = shared.tenants.current();
    let auth: Result<Option<&pimsyn::TenantPolicy>, ()> = if tenants.requires_auth() {
        match request.bearer_token().and_then(|k| tenants.resolve(k)) {
            Some(policy) => Ok(Some(policy)),
            None => Err(()),
        }
    } else {
        Ok(None)
    };

    let (pattern, outcome) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ("/healthz", Some(handle_health(shared))),
        ("GET", "/metrics") => ("/metrics", Some(handle_metrics(shared))),
        ("POST", "/v1/jobs") => (
            "/v1/jobs",
            Some(match auth {
                Ok(tenant) => handle_submit(shared, request, tenant),
                Err(()) => unauthorized(),
            }),
        ),
        ("POST", "/v1/drain") => (
            "/v1/drain",
            Some(match auth {
                Ok(_) => handle_drain(shared),
                Err(()) => unauthorized(),
            }),
        ),
        (method, path) => match job_path(path) {
            Some((id, leaf)) => {
                let pattern = match leaf {
                    None => "/v1/jobs/{id}",
                    Some("result") => "/v1/jobs/{id}/result",
                    Some("events") => "/v1/jobs/{id}/events",
                    Some(_) => {
                        respond(
                            shared,
                            stream,
                            "/v1/jobs/{id}",
                            Outcome::error(404, "not_found", "no such route"),
                        );
                        return;
                    }
                };
                let tenant = match auth {
                    Ok(tenant) => tenant,
                    Err(()) => {
                        respond(shared, stream, pattern, unauthorized());
                        return;
                    }
                };
                // A job is visible only to its submitting tenant.
                let record = shared.jobs.lock().expect("gateway jobs").get(&id).cloned();
                let record = record.filter(|r| r.tenant == tenant.map_or("", |t| &t.name));
                let outcome = match (method, leaf, record) {
                    (_, _, None) => Outcome::error(404, "not_found", "unknown job id"),
                    ("GET", None, Some(_)) => handle_status(shared, id),
                    ("DELETE", None, Some(_)) => handle_cancel(shared, id),
                    ("GET", Some("result"), Some(_)) => handle_result(shared, request, id),
                    ("GET", Some("events"), Some(record)) => {
                        // Streaming: writes the response itself.
                        shared.metrics.record_http(pattern, 200);
                        stream_events(shared, stream, request, id, &record);
                        return;
                    }
                    _ => Outcome::error(405, "method_not_allowed", "unsupported method"),
                };
                (pattern, Some(outcome))
            }
            None => (
                "(unknown)",
                Some(Outcome::error(404, "not_found", "no such route")),
            ),
        },
    };
    if let Some(outcome) = outcome {
        respond(shared, stream, pattern, outcome);
    }
}

fn respond(shared: &GatewayShared, stream: &mut TcpStream, pattern: &str, outcome: Outcome) {
    shared.metrics.record_http(pattern, outcome.status);
    shared.note(&format!("{} -> {}", pattern, outcome.status));
    let _ = http::write_response(
        stream,
        outcome.status,
        outcome.content_type,
        &outcome.extra,
        &outcome.body,
    );
}

fn unauthorized() -> Outcome {
    let mut outcome = Outcome::error(401, "auth_failed", "bad or missing bearer token");
    outcome
        .extra
        .push(("WWW-Authenticate", "Bearer".to_string()));
    outcome
}

fn handle_health(shared: &GatewayShared) -> Outcome {
    let snapshot = shared.service.snapshot();
    Outcome::json(
        200,
        object(vec![
            ("ok", JsonValue::Bool(!snapshot.shut_down)),
            ("draining", JsonValue::Bool(snapshot.draining)),
        ]),
    )
}

fn handle_submit(
    shared: &Arc<GatewayShared>,
    request: &HttpRequest,
    tenant: Option<&pimsyn::TenantPolicy>,
) -> Outcome {
    let mut job = match payload::parse_http_job(&request.body) {
        Ok(job) => job,
        Err(detail) => return Outcome::error(400, "bad_job", &detail),
    };
    (shared.configure)(&mut job);
    let record = Arc::new(JobRecord {
        tenant: tenant.map_or(String::new(), |t| t.name.clone()),
        log: EventLog::new(),
        submitted: Instant::now(),
    });
    let sink: Arc<dyn EventSink> = Arc::new(JobSink {
        record: Arc::clone(&record),
        metrics: Arc::clone(&shared.metrics),
        last_stats: Mutex::new(None),
    });
    let handle = match shared.service.submit_with(job, tenant.cloned(), Some(sink)) {
        Ok(handle) => handle,
        Err(ServiceError::QuotaExceeded { tenant, limit }) => {
            let mut outcome = Outcome::json(
                429,
                object(vec![
                    ("code", JsonValue::String("quota_exceeded".into())),
                    ("tenant", JsonValue::String(tenant)),
                    ("limit", JsonValue::Number(limit as f64)),
                ]),
            );
            outcome.extra.push(("Retry-After", "1".to_string()));
            return outcome;
        }
        Err(ServiceError::QueueFull { depth }) => {
            let mut outcome = Outcome::json(
                429,
                object(vec![
                    ("code", JsonValue::String("queue_full".into())),
                    ("depth", JsonValue::Number(depth as f64)),
                ]),
            );
            outcome.extra.push(("Retry-After", "1".to_string()));
            return outcome;
        }
        Err(ServiceError::Draining) => {
            return Outcome::error(503, "draining", "gateway is draining")
        }
        Err(e) => return Outcome::error(503, "shut_down", &e.to_string()),
    };
    let id = handle.id();
    {
        let mut jobs = shared.jobs.lock().expect("gateway jobs");
        // The service evicts finished jobs past its retention bound;
        // shed the matching gateway records so the registry stays
        // bounded too.
        jobs.retain(|known, _| shared.service.status_of(*known).is_some());
        jobs.insert(id, record);
    }
    shared
        .metrics
        .record_submitted(tenant.map_or("", |t| &t.name));
    Outcome::json(
        202,
        object(vec![
            ("id", JsonValue::Number(id as f64)),
            ("status", JsonValue::String("queued".into())),
        ]),
    )
}

fn handle_status(shared: &GatewayShared, id: u64) -> Outcome {
    match shared.service.status_of(id) {
        Some(status) => Outcome::json(
            200,
            object(vec![
                ("id", JsonValue::Number(id as f64)),
                ("status", JsonValue::String(status.to_string())),
            ]),
        ),
        None => Outcome::error(404, "not_found", "unknown job id"),
    }
}

fn handle_cancel(shared: &GatewayShared, id: u64) -> Outcome {
    if shared.service.cancel_by_id(id) {
        Outcome::json(
            200,
            object(vec![
                ("id", JsonValue::Number(id as f64)),
                ("cancelled", JsonValue::Bool(true)),
            ]),
        )
    } else {
        Outcome::error(404, "not_found", "unknown job id")
    }
}

fn handle_result(shared: &GatewayShared, request: &HttpRequest, id: u64) -> Outcome {
    // `?wait=0` polls: not-finished is 202 + current status instead of
    // blocking the connection until the job completes.
    if request.query_param("wait") == Some("0")
        && shared.service.status_of(id) != Some(JobStatus::Finished)
    {
        return match shared.service.status_of(id) {
            Some(status) => Outcome::json(
                202,
                object(vec![
                    ("id", JsonValue::Number(id as f64)),
                    ("status", JsonValue::String(status.to_string())),
                ]),
            ),
            None => Outcome::error(404, "not_found", "unknown job id"),
        };
    }
    match shared.service.await_result_by_id(id) {
        Some(Ok(result)) => {
            // The bare summary document — byte-comparable (modulo
            // `elapsed_s`) with `pimsyn --output json`.
            Outcome::json(200, SynthesisSummary::from_result(&result).to_json())
        }
        Some(Err(e)) => Outcome::error(500, "job_failed", &e.to_string()),
        None => Outcome::error(404, "not_found", "unknown job id"),
    }
}

fn handle_drain(shared: &Arc<GatewayShared>) -> Outcome {
    shared.note("drain requested");
    shared.service.begin_drain();
    let background = Arc::clone(shared);
    // Finish the queue off-thread so this request gets its 202 now; the
    // accept loop exits once the last job completes.
    thread::spawn(move || {
        background.service.drain();
        background.stop.store(true, Ordering::SeqCst);
        poke_listener(background.addr);
    });
    Outcome::json(202, object(vec![("draining", JsonValue::Bool(true))]))
}

fn handle_metrics(shared: &GatewayShared) -> Outcome {
    use std::fmt::Write as _;
    let mut body = shared.metrics.render();
    let snapshot = shared.service.snapshot();
    let _ = writeln!(
        body,
        "# HELP pimsyn_gateway_queue_depth Jobs waiting in the service queue.\n\
         # TYPE pimsyn_gateway_queue_depth gauge\n\
         pimsyn_gateway_queue_depth {}",
        snapshot.queued
    );
    let _ = writeln!(
        body,
        "# HELP pimsyn_gateway_running_jobs Jobs occupying service job slots.\n\
         # TYPE pimsyn_gateway_running_jobs gauge\n\
         pimsyn_gateway_running_jobs {}",
        snapshot.running
    );
    let _ = writeln!(
        body,
        "# HELP pimsyn_gateway_draining Whether a graceful drain is in progress.\n\
         # TYPE pimsyn_gateway_draining gauge\n\
         pimsyn_gateway_draining {}",
        u8::from(snapshot.draining)
    );
    body.push_str(
        "# HELP pimsyn_gateway_tenant_queued Waiting jobs per tenant (empty = anonymous).\n\
         # TYPE pimsyn_gateway_tenant_queued gauge\n",
    );
    for counts in &snapshot.tenants {
        let _ = writeln!(
            body,
            "pimsyn_gateway_tenant_queued{{tenant=\"{}\"}} {}",
            http::escape_label(&counts.tenant),
            counts.queued
        );
    }
    body.push_str(
        "# HELP pimsyn_gateway_tenant_running Running jobs per tenant (empty = anonymous).\n\
         # TYPE pimsyn_gateway_tenant_running gauge\n",
    );
    for counts in &snapshot.tenants {
        let _ = writeln!(
            body,
            "pimsyn_gateway_tenant_running{{tenant=\"{}\"}} {}",
            http::escape_label(&counts.tenant),
            counts.running
        );
    }
    let _ = writeln!(
        body,
        "# HELP pimsyn_gateway_worker_spawns_total Subprocess evaluation workers \
         spawned by the shared pool.\n\
         # TYPE pimsyn_gateway_worker_spawns_total counter\n\
         pimsyn_gateway_worker_spawns_total {}",
        shared.service.worker_spawns()
    );
    if let Some(registry) = &shared.registry {
        let reg = registry.snapshot();
        let _ = writeln!(
            body,
            "# HELP pimsyn_gateway_registry_workers Worker daemons currently \
             registered (announced and not stale).\n\
             # TYPE pimsyn_gateway_registry_workers gauge\n\
             pimsyn_gateway_registry_workers {}",
            reg.workers.len()
        );
        for (name, help, value) in [
            (
                "pimsyn_gateway_registry_announces_total",
                "Worker announces accepted by the registry.",
                reg.announces,
            ),
            (
                "pimsyn_gateway_registry_heartbeats_total",
                "Worker heartbeats received by the registry.",
                reg.heartbeats,
            ),
            (
                "pimsyn_gateway_registry_evictions_total",
                "Workers evicted for missed heartbeats.",
                reg.evictions,
            ),
            (
                "pimsyn_gateway_registry_drains_total",
                "Workers deregistered by graceful drain.",
                reg.drains,
            ),
        ] {
            let _ = writeln!(
                body,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        }
        body.push_str(
            "# HELP pimsyn_gateway_registry_worker_slots Advertised session slots \
             per registered worker, labeled with its protocol ceiling.\n\
             # TYPE pimsyn_gateway_registry_worker_slots gauge\n",
        );
        for worker in &reg.workers {
            let _ = writeln!(
                body,
                "pimsyn_gateway_registry_worker_slots{{addr=\"{}\",proto_max=\"{}\"}} {}",
                http::escape_label(&worker.addr),
                worker.proto_max,
                worker.slots
            );
        }
    }
    if let Some(fleet) = shared.service.shared_resources().remote_fleet() {
        for (name, help, value) in [
            (
                "pimsyn_gateway_fleet_live_connections",
                "Remote worker connections currently leased to running jobs.",
                fleet.live_connections,
            ),
            (
                "pimsyn_gateway_fleet_idle_connections",
                "Persistent remote worker connections held open between jobs.",
                fleet.idle_connections,
            ),
        ] {
            let _ = writeln!(
                body,
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
            );
        }
        let _ = writeln!(
            body,
            "# HELP pimsyn_gateway_fleet_connects_total Remote worker dials over \
             the shared pool's lifetime.\n\
             # TYPE pimsyn_gateway_fleet_connects_total counter\n\
             pimsyn_gateway_fleet_connects_total {}",
            fleet.connects
        );
        let _ = writeln!(
            body,
            "# HELP pimsyn_gateway_fleet_requeued_pieces_total Straggler chunk \
             pieces stolen by an idle connection over the pool's lifetime.\n\
             # TYPE pimsyn_gateway_fleet_requeued_pieces_total counter\n\
             pimsyn_gateway_fleet_requeued_pieces_total {}",
            fleet.requeued_pieces
        );
        body.push_str(
            "# HELP pimsyn_gateway_fleet_endpoint_protocol Last negotiated worker-\
             protocol version per endpoint (0 = never connected).\n\
             # TYPE pimsyn_gateway_fleet_endpoint_protocol gauge\n",
        );
        for endpoint in &fleet.endpoints {
            let _ = writeln!(
                body,
                "pimsyn_gateway_fleet_endpoint_protocol{{addr=\"{}\",discovered=\"{}\"}} {}",
                http::escape_label(&endpoint.addr),
                endpoint.discovered,
                endpoint.protocol
            );
        }
        body.push_str(
            "# HELP pimsyn_gateway_fleet_endpoint_batch_seconds Wall-clock time \
             spent in successful scoring round trips per endpoint (summary: \
             _sum seconds, _count batches).\n\
             # TYPE pimsyn_gateway_fleet_endpoint_batch_seconds summary\n",
        );
        for endpoint in &fleet.endpoints {
            let addr = http::escape_label(&endpoint.addr);
            let _ = writeln!(
                body,
                "pimsyn_gateway_fleet_endpoint_batch_seconds_sum{{addr=\"{addr}\"}} {}",
                endpoint.batch_seconds
            );
            let _ = writeln!(
                body,
                "pimsyn_gateway_fleet_endpoint_batch_seconds_count{{addr=\"{addr}\"}} {}",
                endpoint.batches
            );
        }
        body.push_str(
            "# HELP pimsyn_gateway_fleet_endpoint_jobs_total Candidates scored \
             remotely per endpoint — the adaptive chunker's per-endpoint share \
             of the work.\n\
             # TYPE pimsyn_gateway_fleet_endpoint_jobs_total counter\n",
        );
        for endpoint in &fleet.endpoints {
            let _ = writeln!(
                body,
                "pimsyn_gateway_fleet_endpoint_jobs_total{{addr=\"{}\"}} {}",
                http::escape_label(&endpoint.addr),
                endpoint.jobs
            );
        }
        body.push_str(
            "# HELP pimsyn_gateway_fleet_endpoint_throughput Current per-\
             candidate throughput estimate (candidates/s; EWMA over observed \
             exchanges, 0 = no estimate yet) weighting the endpoint's chunk \
             share.\n\
             # TYPE pimsyn_gateway_fleet_endpoint_throughput gauge\n",
        );
        for endpoint in &fleet.endpoints {
            let _ = writeln!(
                body,
                "pimsyn_gateway_fleet_endpoint_throughput{{addr=\"{}\"}} {}",
                http::escape_label(&endpoint.addr),
                endpoint.throughput.unwrap_or(0.0)
            );
        }
    }
    Outcome {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        extra: Vec::new(),
        body: body.into_bytes(),
    }
}

/// Replays a job's event log from the start and follows it live until the
/// job finishes. SSE frames by default; NDJSON lines with `?format=ndjson`
/// (or `Accept: application/x-ndjson`). Idle streams carry periodic
/// keep-alive frames (SSE comments / `{"heartbeat":true}` lines) at the
/// configured [`GatewayConfig::heartbeat`] interval.
fn stream_events(
    shared: &GatewayShared,
    stream: &mut TcpStream,
    request: &HttpRequest,
    id: u64,
    record: &JobRecord,
) {
    let ndjson = request.query_param("format") == Some("ndjson")
        || request
            .header("accept")
            .is_some_and(|a| a.contains("application/x-ndjson"));
    let content_type = if ndjson {
        "application/x-ndjson"
    } else {
        "text/event-stream"
    };
    if http::write_stream_header(stream, 200, content_type).is_err() {
        return;
    }
    shared.note(&format!("streaming events of job {id}"));
    let heartbeat = shared.heartbeat;
    let mut last_write = Instant::now();
    let mut cursor = 0usize;
    loop {
        let batch: Vec<SynthesisEvent> = {
            let mut events = record.log.events.lock().expect("event log");
            while events.len() == cursor
                && shared.service.status_of(id) != Some(JobStatus::Finished)
            {
                // Long-running stages emit nothing for a while; break out
                // to send a keep-alive frame so proxies with idle timeouts
                // don't sever the stream mid-job.
                if !heartbeat.is_zero() && last_write.elapsed() >= heartbeat {
                    break;
                }
                // A bounded wait so a job that finishes *without* a final
                // event (cancelled while queued) still ends the stream;
                // capped below the heartbeat interval so short intervals
                // (tests, aggressive proxies) are honored.
                let mut tick = Duration::from_millis(100);
                if !heartbeat.is_zero() {
                    tick = tick.min(heartbeat);
                }
                let (guard, _) = record
                    .log
                    .grown
                    .wait_timeout(events, tick)
                    .expect("event log");
                events = guard;
            }
            events[cursor..].to_vec()
        };
        cursor += batch.len();
        if batch.is_empty()
            && !heartbeat.is_zero()
            && last_write.elapsed() >= heartbeat
            && shared.service.status_of(id) != Some(JobStatus::Finished)
        {
            // SSE comment lines are ignored by `EventSource`; NDJSON
            // consumers see a `{"heartbeat":true}` line to skip.
            let written = if ndjson {
                writeln!(
                    stream,
                    "{}",
                    object(vec![("heartbeat", JsonValue::Bool(true))])
                )
            } else {
                write!(stream, ": heartbeat\n\n")
            };
            if written.is_err() {
                return; // subscriber hung up
            }
            let _ = stream.flush();
            last_write = Instant::now();
            continue;
        }
        let mut finished = false;
        for event in &batch {
            finished |= matches!(event, SynthesisEvent::Finished { .. });
            let json = event_to_json(event);
            let written = if ndjson {
                writeln!(stream, "{json}")
            } else {
                write!(stream, "data: {json}\n\n")
            };
            if written.is_err() {
                return; // subscriber hung up
            }
        }
        let _ = stream.flush();
        if !batch.is_empty() {
            last_write = Instant::now();
        }
        if finished
            || (batch.is_empty() && shared.service.status_of(id) == Some(JobStatus::Finished))
        {
            let _ = if ndjson {
                writeln!(stream, "{}", object(vec![("done", JsonValue::Bool(true))]))
            } else {
                write!(stream, "event: done\ndata: {{}}\n\n")
            };
            let _ = stream.flush();
            return;
        }
    }
}
