//! The `POST /v1/jobs` body format: a human-friendly superset of the
//! socket protocol's job payload.
//!
//! The socket format (`pimsyn::encode_job_payload`) is built for
//! bit-exactness between trusted peers: every field is mandatory, floats
//! travel as hex bit patterns, the model is an inline ONNX-style document.
//! An HTTP front end faces `curl`, so this parser accepts both spellings:
//!
//! - `model` — a zoo name (`"alexnet-cifar"`) *or* an inline ONNX-style
//!   JSON document (an object, or a string containing one);
//! - `power` — a JSON number in watts *or* a 16-hex-digit `f64` bit
//!   pattern;
//! - everything else optional, defaulting exactly like the `pimsyn` CLI
//!   (effort `fast`, strategy `sa`, objective `eff`, macros
//!   `specialized`, sharing on, library seed, eval cache on) so a minimal
//!   HTTP submission is bit-identical to the equivalent CLI run.
//!
//! Unknown fields are rejected — the repo-wide protocol stance (see
//! `docs/PROTOCOLS.md`): a typo'd option must fail loudly, not silently
//! synthesize with defaults.

use std::time::Duration;

use pimsyn::{
    Effort, EvalCacheConfig, MacroMode, Objective, SynthesisOptions, SynthesisRequest,
    WtDupStrategy,
};
use pimsyn_arch::{hardware_config, Watts};
use pimsyn_model::json::JsonValue;
use pimsyn_model::{onnx, zoo, Model};

const KNOWN_FIELDS: [&str; 18] = [
    "model",
    "power",
    "hw",
    "effort",
    "strategy",
    "objective",
    "macros",
    "macro_mode",
    "sharing",
    "parallel",
    "seed",
    "cycle",
    "timeout",
    "max_evals",
    "max_unique_evals",
    "eval_cache",
    "eval_cache_capacity",
    "label",
];

fn parse_model(value: &JsonValue) -> Result<Model, String> {
    match value {
        JsonValue::String(text) => {
            if let Some(model) = zoo::by_name(text) {
                return Ok(model);
            }
            if text.trim_start().starts_with('{') {
                return onnx::parse_model(text).map_err(|e| format!("cannot ingest model: {e}"));
            }
            Err(format!(
                "unknown zoo model `{text}` (and not an inline model document); \
                 available: {}",
                zoo::names().join(", ")
            ))
        }
        JsonValue::Object(_) => {
            onnx::parse_model(&value.to_string()).map_err(|e| format!("cannot ingest model: {e}"))
        }
        _ => Err("`model` must be a zoo name or a model document".to_string()),
    }
}

/// A positive finite f64 from a JSON number or a 16-hex-digit bit pattern.
fn parse_f64_or_bits(value: &JsonValue, field: &str) -> Result<f64, String> {
    let parsed = match value {
        JsonValue::Number(n) => Some(*n),
        JsonValue::String(s) if s.len() == 16 => {
            u64::from_str_radix(s, 16).ok().map(f64::from_bits)
        }
        _ => None,
    };
    match parsed {
        Some(x) if x.is_finite() && x > 0.0 => Ok(x),
        Some(_) => Err(format!("`{field}` must be positive and finite")),
        None => Err(format!(
            "`{field}` must be a number or a 16-hex-digit f64 bit pattern"
        )),
    }
}

/// A u64 from a JSON number (when integral and exactly representable) or
/// decimal text (the lossless spelling for large seeds).
fn parse_u64(value: &JsonValue, field: &str) -> Result<u64, String> {
    match value {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
            Ok(*n as u64)
        }
        JsonValue::String(s) => s
            .parse::<u64>()
            .map_err(|_| format!("`{field}` is not a u64")),
        _ => Err(format!(
            "`{field}` must be a non-negative integer (decimal text for values beyond 2^53)"
        )),
    }
}

fn parse_usize(value: &JsonValue, field: &str) -> Result<usize, String> {
    value
        .as_usize()
        .ok_or_else(|| format!("`{field}` must be a non-negative integer"))
}

fn parse_bool(value: &JsonValue, field: &str) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("`{field}` must be a boolean"))
}

fn parse_tag<T>(value: &JsonValue, field: &str, table: &[(&str, T)]) -> Result<T, String>
where
    T: Clone,
{
    let tag = value
        .as_str()
        .ok_or_else(|| format!("`{field}` must be a string"))?;
    table
        .iter()
        .find(|(name, _)| *name == tag)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| {
            let expected: Vec<&str> = table.iter().map(|(name, _)| *name).collect();
            format!("`{field}` must be one of {}", expected.join("|"))
        })
}

/// Parses a `POST /v1/jobs` body into a synthesis request.
///
/// # Errors
///
/// A message naming the malformed, missing, or unknown field (the
/// gateway's 400 body).
pub fn parse_http_job(body: &[u8]) -> Result<SynthesisRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let fields = doc
        .as_object()
        .ok_or("body must be a JSON object".to_string())?;
    for (key, _) in fields {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }

    let model = parse_model(doc.get("model").ok_or("missing `model`")?)?;
    let power = parse_f64_or_bits(doc.get("power").ok_or("missing `power`")?, "power")?;

    // Defaults below mirror the `pimsyn` CLI, not the library (which
    // defaults to paper effort): an HTTP submission with only model+power
    // must match `pimsyn --model ... --power ... --output json` bit for
    // bit.
    let mut options = SynthesisOptions::new(Watts(power))
        .with_effort(match doc.get("effort") {
            Some(v) => parse_tag(
                v,
                "effort",
                &[("fast", Effort::Fast), ("paper", Effort::Paper)],
            )?,
            None => Effort::Fast,
        })
        .with_strategy(match doc.get("strategy") {
            Some(v) => parse_tag(
                v,
                "strategy",
                &[
                    ("sa", WtDupStrategy::SimulatedAnnealing),
                    ("woho", WtDupStrategy::WohoProportional),
                    ("none", WtDupStrategy::NoDuplication),
                ],
            )?,
            None => WtDupStrategy::SimulatedAnnealing,
        })
        .with_objective(match doc.get("objective") {
            Some(v) => parse_tag(
                v,
                "objective",
                &[
                    ("eff", Objective::PowerEfficiency),
                    ("edp", Objective::EnergyDelayProduct),
                ],
            )?,
            None => Objective::PowerEfficiency,
        })
        // `macros` is the CLI spelling, `macro_mode` the socket codec's;
        // both are accepted so captured socket payloads replay over HTTP.
        .with_macro_mode(match doc.get("macros").or_else(|| doc.get("macro_mode")) {
            Some(v) => parse_tag(
                v,
                "macros",
                &[
                    ("specialized", MacroMode::Specialized),
                    ("identical", MacroMode::Identical),
                ],
            )?,
            None => MacroMode::Specialized,
        });
    if let Some(seed) = doc.get("seed") {
        options = options.with_seed(parse_u64(seed, "seed")?);
    }
    if let Some(sharing) = doc.get("sharing") {
        if !parse_bool(sharing, "sharing")? {
            options = options.without_macro_sharing();
        }
    }
    if let Some(parallel) = doc.get("parallel") {
        options.parallel = parse_bool(parallel, "parallel")?;
    }
    if let Some(cycle) = doc.get("cycle") {
        let images = parse_usize(cycle, "cycle")?;
        if images > 0 {
            options = options.with_cycle_validation(images);
        }
    }
    if let Some(timeout) = doc.get("timeout") {
        let secs = parse_f64_or_bits(timeout, "timeout")?;
        options = options.with_time_budget(Duration::from_secs_f64(secs));
    }
    if let Some(n) = doc.get("max_evals") {
        options = options.with_max_evaluations(parse_usize(n, "max_evals")?);
    }
    if let Some(n) = doc.get("max_unique_evals") {
        options = options.with_max_unique_evaluations(parse_usize(n, "max_unique_evals")?);
    }
    let mut cache = match doc.get("eval_cache") {
        Some(v) if !parse_bool(v, "eval_cache")? => EvalCacheConfig::disabled(),
        _ => EvalCacheConfig::enabled(),
    };
    if let Some(capacity) = doc.get("eval_cache_capacity") {
        cache = cache.with_capacity(parse_usize(capacity, "eval_cache_capacity")?);
    }
    options = options.with_eval_cache(cache);
    if let Some(hw) = doc.get("hw") {
        let parsed = match hw {
            JsonValue::String(text) => {
                hardware_config::from_json_exact(text).or_else(|_| hardware_config::from_json(text))
            }
            JsonValue::Object(_) => hardware_config::from_json(&hw.to_string()),
            _ => return Err("`hw` must be a hardware-params document".to_string()),
        };
        options = options.with_hardware(parsed.map_err(|e| format!("bad `hw`: {e}"))?);
    }

    let mut request = SynthesisRequest::new(model, options);
    if let Some(label) = doc.get("label") {
        request = request.with_label(
            label
                .as_str()
                .ok_or("`label` must be a string".to_string())?,
        );
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_submission_matches_cli_defaults() {
        let request = parse_http_job(br#"{"model": "alexnet-cifar", "power": 9}"#).unwrap();
        assert_eq!(request.options.power_budget, Watts(9.0));
        assert_eq!(request.options.effort, Effort::Fast);
        assert_eq!(request.options.strategy, WtDupStrategy::SimulatedAnnealing);
        assert_eq!(request.options.objective, Objective::PowerEfficiency);
        assert_eq!(request.options.macro_mode, MacroMode::Specialized);
        assert!(request.options.allow_macro_sharing);
        assert!(request.options.parallel);
        assert_eq!(request.options.seed, SynthesisOptions::DEFAULT_SEED);
        assert!(request.options.eval_cache.enabled);
        assert!(request.label.is_none());
    }

    #[test]
    fn full_submission_overrides_every_field() {
        let request = parse_http_job(
            br#"{"model": "alexnet-cifar", "power": "4022000000000000",
                 "effort": "paper", "strategy": "none", "objective": "edp",
                 "macros": "identical", "sharing": false, "parallel": false,
                 "seed": "18446744073709551615", "cycle": 2, "timeout": 30,
                 "max_evals": 100, "max_unique_evals": 50,
                 "eval_cache": false, "label": "sweep-3"}"#,
        )
        .unwrap();
        assert_eq!(request.options.power_budget, Watts(9.0)); // 0x4022... = 9.0
        assert_eq!(request.options.effort, Effort::Paper);
        assert_eq!(request.options.strategy, WtDupStrategy::NoDuplication);
        assert_eq!(request.options.objective, Objective::EnergyDelayProduct);
        assert_eq!(request.options.macro_mode, MacroMode::Identical);
        assert!(!request.options.allow_macro_sharing);
        assert!(!request.options.parallel);
        assert_eq!(request.options.seed, u64::MAX);
        assert!(request.options.cycle_validation);
        assert_eq!(request.options.time_budget, Some(Duration::from_secs(30)));
        assert_eq!(request.options.max_evaluations, Some(100));
        assert_eq!(request.options.max_unique_evaluations, Some(50));
        assert!(!request.options.eval_cache.enabled);
        assert_eq!(request.label.as_deref(), Some("sweep-3"));
    }

    #[test]
    fn rejects_malformed_submissions() {
        for (body, needle) in [
            (&b"not json"[..], "not JSON"),
            (br#"[1]"#, "must be a JSON object"),
            (br#"{"power": 9}"#, "missing `model`"),
            (br#"{"model": "alexnet-cifar"}"#, "missing `power`"),
            (br#"{"model": "noznet", "power": 9}"#, "unknown zoo model"),
            (
                br#"{"model": "alexnet-cifar", "power": -1}"#,
                "positive and finite",
            ),
            (
                br#"{"model": "alexnet-cifar", "power": 9, "effort": "max"}"#,
                "one of fast|paper",
            ),
            (
                br#"{"model": "alexnet-cifar", "power": 9, "Seed": 3}"#,
                "unknown field `Seed`",
            ),
        ] {
            let err = parse_http_job(body).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn unknown_model_error_lists_the_zoo() {
        let err = parse_http_job(br#"{"model": "noznet", "power": 9}"#).unwrap_err();
        for name in zoo::names() {
            assert!(err.contains(name), "`{err}` should list `{name}`");
        }
    }

    #[test]
    fn wire_encoded_payloads_also_parse() {
        // The strict socket codec's output is valid HTTP-body input, so a
        // client can replay a captured socket job over HTTP unchanged.
        let request =
            parse_http_job(br#"{"model": "alexnet-cifar", "power": 9, "seed": 11}"#).unwrap();
        let encoded = pimsyn::encode_job_payload(&request).unwrap().to_string();
        let reparsed = parse_http_job(encoded.as_bytes()).unwrap();
        assert_eq!(reparsed.options.seed, 11);
        assert_eq!(reparsed.options.power_budget, Watts(9.0));
        assert_eq!(reparsed.options.effort, Effort::Fast);
    }
}
