//! Tenant registry: API keys, weights and quotas from a keys file.
//!
//! The gateway authenticates requests by bearer token against a JSON keys
//! file and maps each key to a [`TenantPolicy`] (scheduling weight plus
//! queued/running quotas) that travels with every job it submits. Without
//! a keys file the gateway runs *open*: no `Authorization` header is
//! required and every job lands in one anonymous FIFO lane — exactly the
//! single-tenant service behavior.
//!
//! Keys-file schema (see `docs/PROTOCOLS.md` for the normative version):
//!
//! ```json
//! {
//!   "tenants": [
//!     {"name": "alice", "key": "k-alice", "weight": 3,
//!      "max_queued": 8, "max_running": 2},
//!     {"name": "bob",   "key": "k-bob"}
//!   ]
//! }
//! ```
//!
//! `weight` defaults to 1; omitted quotas are unlimited.

use std::collections::HashMap;

use pimsyn::TenantPolicy;
use pimsyn_model::json::JsonValue;

/// The tenant registry a gateway authenticates against.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    by_key: HashMap<String, TenantPolicy>,
}

impl TenantRegistry {
    /// An empty registry: authentication disabled, anonymous submissions.
    pub fn open() -> Self {
        Self::default()
    }

    /// Whether the registry holds any tenants (i.e. auth is enforced).
    pub fn requires_auth(&self) -> bool {
        !self.by_key.is_empty()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Resolves an API key to its tenant policy.
    pub fn resolve(&self, key: &str) -> Option<&TenantPolicy> {
        self.by_key.get(key)
    }

    /// The registered tenant policies, sorted by name (for startup logs).
    pub fn policies(&self) -> Vec<&TenantPolicy> {
        let mut all: Vec<&TenantPolicy> = self.by_key.values().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Parses a keys-file document.
    ///
    /// # Errors
    ///
    /// A message naming the malformed entry: missing/empty `name` or
    /// `key`, duplicate names or keys, zero/fractional `weight`, or
    /// fractional quota bounds.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("keys file is not JSON: {e}"))?;
        let tenants = doc
            .get("tenants")
            .and_then(|t| t.as_array())
            .ok_or("keys file has no `tenants` array")?;
        let mut by_key = HashMap::new();
        let mut seen_names = std::collections::HashSet::new();
        for (index, entry) in tenants.iter().enumerate() {
            let at = |detail: &str| format!("tenant entry {index}: {detail}");
            let name = entry
                .get("name")
                .and_then(|n| n.as_str())
                .filter(|n| !n.is_empty())
                .ok_or_else(|| at("missing or empty `name`"))?;
            let key = entry
                .get("key")
                .and_then(|k| k.as_str())
                .filter(|k| !k.is_empty())
                .ok_or_else(|| at("missing or empty `key`"))?;
            if !seen_names.insert(name.to_string()) {
                return Err(at(&format!("duplicate tenant name `{name}`")));
            }
            let mut policy = TenantPolicy::new(name);
            if let Some(weight) = entry.get("weight") {
                let weight = weight
                    .as_usize()
                    .filter(|&w| w > 0 && w <= u32::MAX as usize)
                    .ok_or_else(|| at("`weight` must be a positive integer"))?;
                policy = policy.with_weight(weight as u32);
            }
            if let Some(max) = entry.get("max_queued") {
                let max = max
                    .as_usize()
                    .ok_or_else(|| at("`max_queued` must be a non-negative integer"))?;
                policy = policy.with_max_queued(max);
            }
            if let Some(max) = entry.get("max_running") {
                let max = max
                    .as_usize()
                    .ok_or_else(|| at("`max_running` must be a non-negative integer"))?;
                policy = policy.with_max_running(max);
            }
            if by_key.insert(key.to_string(), policy).is_some() {
                return Err(at("duplicate API key"));
            }
        }
        Ok(Self { by_key })
    }

    /// Reads and parses a keys file from disk.
    ///
    /// # Errors
    ///
    /// I/O failures and everything [`parse`](Self::parse) rejects.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&text)
    }
}

/// A tenant registry that follows its keys file across rotations.
///
/// The gateway resolves every request against [`current`](Self::current),
/// which re-reads the keys file whenever its on-disk fingerprint
/// (modification time and size) changes — so API keys can be added or
/// revoked on a *live* gateway by rewriting the file, no restart needed.
/// A keys file that turns unreadable or malformed mid-rotation keeps the
/// last good registry (and says so on stderr once per bad revision): a
/// fumbled rotation must not lock every tenant out.
#[derive(Debug)]
pub struct TenantSource {
    path: Option<String>,
    state: std::sync::Mutex<SourceState>,
}

#[derive(Debug)]
struct SourceState {
    registry: std::sync::Arc<TenantRegistry>,
    fingerprint: Option<(std::time::SystemTime, u64)>,
}

impl TenantSource {
    /// A source seeded with `registry`, reloading from `path` when set.
    pub fn new(registry: TenantRegistry, path: Option<String>) -> Self {
        let fingerprint = path.as_deref().and_then(keys_fingerprint);
        Self {
            path,
            state: std::sync::Mutex::new(SourceState {
                registry: std::sync::Arc::new(registry),
                fingerprint,
            }),
        }
    }

    /// A static source that never reloads (no keys file on disk).
    pub fn fixed(registry: TenantRegistry) -> Self {
        Self::new(registry, None)
    }

    /// The registry as of the keys file's current on-disk state.
    pub fn current(&self) -> std::sync::Arc<TenantRegistry> {
        let mut state = self.state.lock().expect("tenant source");
        if let Some(path) = &self.path {
            let fresh = keys_fingerprint(path);
            if fresh != state.fingerprint {
                match TenantRegistry::load(path) {
                    Ok(registry) => state.registry = std::sync::Arc::new(registry),
                    // Keep the last good key set. Recording the bad
                    // revision's fingerprint anyway means the warning
                    // prints once per rewrite, not once per request.
                    Err(e) => eprintln!("pimsyn gateway: keys file reload failed: {e}"),
                }
                state.fingerprint = fresh;
            }
        }
        std::sync::Arc::clone(&state.registry)
    }
}

/// The (mtime, size) pair that decides whether a keys file changed.
/// `None` when the file is missing or unreadable — distinct from every
/// readable fingerprint, so deleting and restoring the file triggers a
/// reload too.
fn keys_fingerprint(path: &str) -> Option<(std::time::SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tenants_with_defaults_and_quotas() {
        let registry = TenantRegistry::parse(
            r#"{"tenants": [
                {"name": "alice", "key": "k-a", "weight": 3, "max_queued": 8, "max_running": 2},
                {"name": "bob", "key": "k-b"}
            ]}"#,
        )
        .unwrap();
        assert!(registry.requires_auth());
        assert_eq!(registry.len(), 2);
        let alice = registry.resolve("k-a").unwrap();
        assert_eq!(alice.name, "alice");
        assert_eq!(alice.weight, 3);
        assert_eq!(alice.max_queued, Some(8));
        assert_eq!(alice.max_running, Some(2));
        let bob = registry.resolve("k-b").unwrap();
        assert_eq!(bob.weight, 1);
        assert_eq!(bob.max_queued, None);
        assert!(registry.resolve("k-c").is_none());
    }

    #[test]
    fn open_registry_requires_no_auth() {
        assert!(!TenantRegistry::open().requires_auth());
    }

    #[test]
    fn source_follows_keys_file_rotations() {
        let path = std::env::temp_dir().join(format!(
            "pimsyn-tenant-source-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_str = path.to_str().unwrap().to_string();
        std::fs::write(&path, r#"{"tenants": [{"name": "alice", "key": "k-a"}]}"#).unwrap();
        let seed = TenantRegistry::load(&path_str).unwrap();
        let source = TenantSource::new(seed, Some(path_str.clone()));
        assert!(source.current().resolve("k-a").is_some());
        assert!(source.current().resolve("k-bob").is_none());
        // Rotate: bob in, alice out. The revisions differ in size, so the
        // fingerprint changes even on filesystems with coarse mtimes.
        std::fs::write(&path, r#"{"tenants": [{"name": "bob", "key": "k-bob"}]}"#).unwrap();
        assert!(source.current().resolve("k-bob").is_some());
        assert!(source.current().resolve("k-a").is_none());
        // A malformed rewrite keeps the last good key set.
        std::fs::write(&path, "not json {").unwrap();
        assert!(source.current().resolve("k-bob").is_some());
        std::fs::remove_file(&path).unwrap();
        // A fixed source never reloads.
        let fixed = TenantSource::fixed(TenantRegistry::open());
        assert!(!fixed.current().requires_auth());
    }

    #[test]
    fn rejects_malformed_registries() {
        for (text, needle) in [
            ("[]", "no `tenants` array"),
            (r#"{"tenants": [{"key": "k"}]}"#, "missing or empty `name`"),
            (r#"{"tenants": [{"name": "a"}]}"#, "missing or empty `key`"),
            (
                r#"{"tenants": [{"name": "a", "key": "k", "weight": 0}]}"#,
                "positive integer",
            ),
            (
                r#"{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}"#,
                "duplicate tenant name",
            ),
            (
                r#"{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}"#,
                "duplicate API key",
            ),
        ] {
            let err = TenantRegistry::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }
}
