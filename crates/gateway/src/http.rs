//! A minimal HTTP/1.1 server-side codec on blocking `std::net` sockets.
//!
//! The offline-build constraint rules out hyper/axum, and the gateway's
//! needs are narrow: parse one request (method, target, headers, an
//! optional `Content-Length` body), write one response — either a buffered
//! body or an unbounded stream (SSE/NDJSON) terminated by closing the
//! connection. Each connection carries exactly one request; every response
//! says `Connection: close`, which HTTP/1.1 clients must honor. That
//! mirrors the service socket protocol's one-request-per-connection model
//! and keeps the implementation auditable.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Largest accepted request body (a submitted model is at most a few
/// hundred kilobytes of ONNX-style JSON; 8 MiB leaves generous headroom).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Largest accepted request line or header line.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Query parameters in order of appearance, un-deduplicated.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The bearer token of an `Authorization: Bearer <key>` header.
    pub fn bearer_token(&self) -> Option<&str> {
        let auth = self.header("authorization")?;
        let (scheme, rest) = auth.split_once(' ')?;
        if scheme.eq_ignore_ascii_case("bearer") {
            Some(rest.trim())
        } else {
            None
        }
    }
}

/// Why a request could not be parsed (maps to a 4xx response).
#[derive(Debug)]
pub enum HttpParseError {
    /// The peer closed before sending a full request.
    ConnectionClosed,
    /// Malformed request line, header, or body framing.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
    },
    /// Transport failure mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::ConnectionClosed => write!(f, "connection closed mid-request"),
            HttpParseError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpParseError::BodyTooLarge { declared } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds {MAX_BODY_BYTES}"
                )
            }
            HttpParseError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

fn read_crlf_line(reader: &mut impl BufRead) -> Result<String, HttpParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(HttpParseError::ConnectionClosed)
            }
            Err(e) => return Err(HttpParseError::Io(e)),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpParseError::Malformed("non-UTF-8 header line".into()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpParseError::Malformed("header line too long".into()));
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(byte) => {
                        out.push(byte);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(pair), String::new()),
        })
        .collect()
}

/// Reads and parses one request from `reader`.
///
/// # Errors
///
/// [`HttpParseError`] — [`ConnectionClosed`](HttpParseError::ConnectionClosed)
/// when the peer sent nothing, otherwise the malformation or transport
/// failure.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<HttpRequest, HttpParseError> {
    let request_line = read_crlf_line(reader)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpParseError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpParseError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, raw)) => (path.to_string(), parse_query(raw)),
        None => (target.to_string(), Vec::new()),
    };
    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpParseError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = HttpRequest {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpParseError::Malformed("bad Content-Length".into()))?;
        if length > MAX_BODY_BYTES {
            return Err(HttpParseError::BodyTooLarge { declared: length });
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpParseError::ConnectionClosed
            } else {
                HttpParseError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// The standard reason phrase of the status codes the gateway emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one buffered response with a `Content-Length` and closes framing
/// (`Connection: close`). `extra_headers` are emitted verbatim.
///
/// # Errors
///
/// Transport failures (the peer usually hung up).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason_phrase(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the header of a streamed response (no `Content-Length`; the body
/// runs until the connection closes, which `Connection: close` makes
/// well-formed HTTP/1.1 framing).
///
/// # Errors
///
/// Transport failures.
pub fn write_stream_header(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
        reason_phrase(status)
    )?;
    stream.flush()
}

/// Escapes a string for a Prometheus label value (backslash, quote,
/// newline).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// What [`roundtrip`] returns on success: status code, lowercased header
/// map, and the raw response body.
pub type RoundtripResponse = (u16, HashMap<String, String>, Vec<u8>);

/// A tiny client-side helper: sends `request` (already HTTP-framed) to a
/// freshly-connected stream and returns `(status, headers, body)`. Used by
/// the gateway's own tests and benches; not a general HTTP client.
///
/// # Errors
///
/// A message describing the transport or framing failure.
pub fn roundtrip(addr: &str, request: &[u8]) -> Result<RoundtripResponse, String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(request)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&response[..header_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, headers, response[header_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<HttpRequest, HttpParseError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let request = parse(
            "POST /v1/jobs?wait=0&x=a%20b HTTP/1.1\r\nHost: h\r\nAuthorization: Bearer k-1\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/jobs");
        assert_eq!(request.query_param("wait"), Some("0"));
        assert_eq!(request.query_param("x"), Some("a b"));
        assert_eq!(request.bearer_token(), Some("k-1"));
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let request = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
        assert!(request.bearer_token().is_none());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(parse(""), Err(HttpParseError::ConnectionClosed)));
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(HttpParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(HttpParseError::Malformed(_))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            parse(&huge),
            Err(HttpParseError::Malformed(_) | HttpParseError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn responses_frame_with_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "application/json", &[], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn retry_after_travels_as_an_extra_header() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
