//! **pimsyn-gateway**: a multi-tenant HTTP/REST front end over
//! [`pimsyn::SynthesisService`].
//!
//! Where `pimsyn serve` speaks a versioned JSON-lines socket protocol to
//! trusted peers, the gateway speaks plain HTTP/1.1 to anything that can
//! `curl`: REST job submission and lifecycle, Server-Sent-Events progress
//! streaming, Prometheus `/metrics`, bearer-token tenancy with per-tenant
//! quotas, and weighted-fair scheduling across tenants
//! ([`pimsyn::SchedulingPolicy::WeightedFair`]). The HTTP layer is
//! hand-rolled on `std::net` — this workspace builds offline, and the
//! endpoint surface is small enough that a dependency would cost more
//! than it saves.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::sync::Arc;
//! use pimsyn::{ServiceConfig, SynthesisService};
//! use pimsyn_gateway::{serve_gateway, GatewayConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Arc::new(SynthesisService::new(ServiceConfig::default()));
//! let listener = TcpListener::bind("127.0.0.1:8080")?;
//! serve_gateway(listener, service, |_job| {}, GatewayConfig::new())
//! # }
//! ```
//!
//! then:
//!
//! ```text
//! curl -s -X POST localhost:8080/v1/jobs \
//!      -d '{"model": "alexnet-cifar", "power": 9}'      # -> {"id": 1, ...}
//! curl -s localhost:8080/v1/jobs/1/result               # blocks; summary JSON
//! curl -s localhost:8080/v1/jobs/1/events               # SSE progress
//! curl -s localhost:8080/metrics                        # Prometheus text
//! curl -s -X POST localhost:8080/v1/drain               # graceful exit
//! ```
//!
//! The normative API contract lives in `docs/PROTOCOLS.md` ("Gateway HTTP
//! API"); `docs/ARCHITECTURE.md` places the gateway in the serving stack.
//! The `pimsyn gateway` CLI subcommand (this crate also owns the `pimsyn`
//! binary) wires the pieces together.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
mod metrics;
mod payload;
mod server;
mod tenant;

pub use metrics::MetricsRegistry;
pub use payload::parse_http_job;
pub use server::{
    serve_gateway, serve_gateway_in_background, GatewayConfig, GatewayHandle, DEFAULT_HEARTBEAT,
};
pub use tenant::{TenantRegistry, TenantSource};
