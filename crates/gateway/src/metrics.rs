//! A hand-rolled Prometheus registry for the gateway's `/metrics` page.
//!
//! The [text exposition format] needs no library: `# HELP` / `# TYPE`
//! comments followed by `name{labels} value` lines. The registry keeps
//! three kinds of state:
//!
//! - **counters** updated as requests and jobs flow through the gateway
//!   (HTTP requests by route/code, submissions by tenant, evaluator
//!   throughput accumulated from terminal `EvaluatorStats` events);
//! - **histograms** observed at job completion (end-to-end job latency);
//! - **gauges** sampled at scrape time from
//!   [`SynthesisService::snapshot`](pimsyn::SynthesisService::snapshot)
//!   (queue depth, per-tenant occupancy, drain state), the worker pool,
//!   and the remote fleet's scheduling state (per-endpoint scored-job
//!   counters and throughput-estimate gauges feeding the adaptive
//!   chunker, plus the straggler requeued-pieces counter) — those live in
//!   the server module, not here, because they are reads of service state
//!   rather than gateway state.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::http::escape_label;

/// Upper bounds (seconds) of the job-latency histogram buckets. Synthesis
/// jobs span ~0.1 s (fast effort, tiny budgets) to hours (paper effort on
/// large models), so the grid is log-spaced.
pub const LATENCY_BUCKETS: [f64; 10] = [0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0, 1800.0];

/// A fixed-bucket histogram rendered as Prometheus `_bucket`/`_sum`/`_count`.
#[derive(Debug, Default)]
struct Histogram {
    /// Cumulative counts per bucket of [`LATENCY_BUCKETS`] (`+Inf` is
    /// derived from `count`).
    buckets: [u64; LATENCY_BUCKETS.len()],
    sum: f64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            if value <= *bound {
                self.buckets[i] += 1;
            }
        }
        self.sum += value;
        self.count += 1;
    }
}

/// The gateway's mutable metric state. All methods are cheap and callable
/// from connection threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// `(route, status)` → request count. Routes are the *patterns*
    /// (`/v1/jobs/{id}`), not raw paths, so cardinality stays bounded.
    http_requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Tenant → submitted-job count ("" = anonymous).
    jobs_submitted: Mutex<BTreeMap<String, u64>>,
    /// Tenant → finished-job count (success or failure).
    jobs_finished: Mutex<BTreeMap<String, u64>>,
    /// End-to-end latency (submit accepted → terminal event) of finished
    /// jobs.
    job_latency: Mutex<Histogram>,
    /// Candidate evaluations scored, summed over finished jobs' terminal
    /// evaluator-stats snapshots.
    eval_scored: AtomicU64,
    /// Unique (memo-missing) evaluations, same provenance.
    eval_unique: AtomicU64,
    /// Evaluation-cache hits, same provenance.
    eval_cache_hits: AtomicU64,
    /// Candidates rescored incrementally by the delta engine, same
    /// provenance.
    eval_delta_hits: AtomicU64,
    /// Delta attempts that fell back to a full recomputation, same
    /// provenance.
    eval_delta_fallbacks: AtomicU64,
    /// Per-layer stage recomputations performed by the delta engine (hits
    /// and fallbacks combined), same provenance.
    eval_delta_layers_recomputed: AtomicU64,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one HTTP request against its route pattern and status code.
    pub fn record_http(&self, route: &str, status: u16) {
        let mut map = self.http_requests.lock().expect("metrics");
        *map.entry((route.to_string(), status)).or_insert(0) += 1;
    }

    /// Counts one accepted submission for `tenant` ("" = anonymous).
    pub fn record_submitted(&self, tenant: &str) {
        let mut map = self.jobs_submitted.lock().expect("metrics");
        *map.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Counts one finished job and observes its end-to-end latency.
    pub fn record_finished(&self, tenant: &str, latency_seconds: f64) {
        let mut map = self.jobs_finished.lock().expect("metrics");
        *map.entry(tenant.to_string()).or_insert(0) += 1;
        drop(map);
        self.job_latency
            .lock()
            .expect("metrics")
            .observe(latency_seconds);
    }

    /// Accumulates a finished job's terminal evaluator-stats counters.
    #[allow(clippy::too_many_arguments)]
    pub fn record_eval_stats(
        &self,
        scored: u64,
        unique: u64,
        cache_hits: u64,
        delta_hits: u64,
        delta_fallbacks: u64,
        layers_recomputed: u64,
    ) {
        self.eval_scored.fetch_add(scored, Ordering::Relaxed);
        self.eval_unique.fetch_add(unique, Ordering::Relaxed);
        self.eval_cache_hits
            .fetch_add(cache_hits, Ordering::Relaxed);
        self.eval_delta_hits
            .fetch_add(delta_hits, Ordering::Relaxed);
        self.eval_delta_fallbacks
            .fetch_add(delta_fallbacks, Ordering::Relaxed);
        self.eval_delta_layers_recomputed
            .fetch_add(layers_recomputed, Ordering::Relaxed);
    }

    /// Renders the registry's counters and histograms in Prometheus text
    /// format. The caller appends its scrape-time gauges.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str(concat!(
            "# HELP pimsyn_gateway_http_requests_total HTTP requests served, ",
            "by route pattern and status code.\n",
            "# TYPE pimsyn_gateway_http_requests_total counter\n",
        ));
        for ((route, status), count) in self.http_requests.lock().expect("metrics").iter() {
            let _ = writeln!(
                out,
                "pimsyn_gateway_http_requests_total{{route=\"{}\",code=\"{status}\"}} {count}",
                escape_label(route)
            );
        }

        out.push_str(concat!(
            "# HELP pimsyn_gateway_jobs_submitted_total Jobs accepted for ",
            "synthesis, by tenant (empty = anonymous).\n",
            "# TYPE pimsyn_gateway_jobs_submitted_total counter\n",
        ));
        for (tenant, count) in self.jobs_submitted.lock().expect("metrics").iter() {
            let _ = writeln!(
                out,
                "pimsyn_gateway_jobs_submitted_total{{tenant=\"{}\"}} {count}",
                escape_label(tenant)
            );
        }

        out.push_str(concat!(
            "# HELP pimsyn_gateway_jobs_finished_total Jobs that reached a ",
            "terminal state (success or failure), by tenant.\n",
            "# TYPE pimsyn_gateway_jobs_finished_total counter\n",
        ));
        for (tenant, count) in self.jobs_finished.lock().expect("metrics").iter() {
            let _ = writeln!(
                out,
                "pimsyn_gateway_jobs_finished_total{{tenant=\"{}\"}} {count}",
                escape_label(tenant)
            );
        }

        out.push_str(concat!(
            "# HELP pimsyn_gateway_job_latency_seconds End-to-end job ",
            "latency: submit accepted to terminal event.\n",
            "# TYPE pimsyn_gateway_job_latency_seconds histogram\n",
        ));
        {
            let histogram = self.job_latency.lock().expect("metrics");
            for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "pimsyn_gateway_job_latency_seconds_bucket{{le=\"{bound}\"}} {}",
                    histogram.buckets[i]
                );
            }
            let _ = writeln!(
                out,
                "pimsyn_gateway_job_latency_seconds_bucket{{le=\"+Inf\"}} {}",
                histogram.count
            );
            let _ = writeln!(
                out,
                "pimsyn_gateway_job_latency_seconds_sum {}",
                histogram.sum
            );
            let _ = writeln!(
                out,
                "pimsyn_gateway_job_latency_seconds_count {}",
                histogram.count
            );
        }

        for (name, help, value) in [
            (
                "pimsyn_gateway_evaluations_scored_total",
                "Candidate evaluations scored by finished jobs.",
                self.eval_scored.load(Ordering::Relaxed),
            ),
            (
                "pimsyn_gateway_evaluations_unique_total",
                "Unique (memo-missing) candidate evaluations by finished jobs.",
                self.eval_unique.load(Ordering::Relaxed),
            ),
            (
                "pimsyn_gateway_eval_cache_hits_total",
                "Evaluation-cache hits by finished jobs.",
                self.eval_cache_hits.load(Ordering::Relaxed),
            ),
            (
                "pimsyn_gateway_eval_delta_hits_total",
                "Candidates rescored incrementally (delta path) by finished jobs.",
                self.eval_delta_hits.load(Ordering::Relaxed),
            ),
            (
                "pimsyn_gateway_eval_delta_fallbacks_total",
                "Delta attempts that fell back to full rescoring in finished jobs.",
                self.eval_delta_fallbacks.load(Ordering::Relaxed),
            ),
            (
                "pimsyn_gateway_eval_delta_layers_recomputed_total",
                "Per-layer stage recomputations by the delta engine in finished jobs.",
                self.eval_delta_layers_recomputed.load(Ordering::Relaxed),
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_counters_with_labels() {
        let registry = MetricsRegistry::new();
        registry.record_http("/v1/jobs", 202);
        registry.record_http("/v1/jobs", 202);
        registry.record_http("/v1/jobs/{id}", 404);
        registry.record_submitted("alice");
        registry.record_finished("alice", 0.3);
        registry.record_eval_stats(100, 40, 60, 25, 5, 120);
        let text = registry.render();
        assert!(
            text.contains("pimsyn_gateway_http_requests_total{route=\"/v1/jobs\",code=\"202\"} 2")
        );
        assert!(text.contains(
            "pimsyn_gateway_http_requests_total{route=\"/v1/jobs/{id}\",code=\"404\"} 1"
        ));
        assert!(text.contains("pimsyn_gateway_jobs_submitted_total{tenant=\"alice\"} 1"));
        assert!(text.contains("pimsyn_gateway_jobs_finished_total{tenant=\"alice\"} 1"));
        assert!(text.contains("pimsyn_gateway_evaluations_scored_total 100"));
        assert!(text.contains("pimsyn_gateway_eval_cache_hits_total 60"));
        assert!(text.contains("pimsyn_gateway_eval_delta_hits_total 25"));
        assert!(text.contains("pimsyn_gateway_eval_delta_fallbacks_total 5"));
        assert!(text.contains("pimsyn_gateway_eval_delta_layers_recomputed_total 120"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = MetricsRegistry::new();
        registry.record_finished("", 0.05); // below every bound
        registry.record_finished("", 0.3); // lands in le=0.5 and up
        registry.record_finished("", 10_000.0); // beyond the largest bound
        let text = registry.render();
        assert!(text.contains("pimsyn_gateway_job_latency_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("pimsyn_gateway_job_latency_seconds_bucket{le=\"0.5\"} 2"));
        assert!(text.contains("pimsyn_gateway_job_latency_seconds_bucket{le=\"1800\"} 2"));
        assert!(text.contains("pimsyn_gateway_job_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pimsyn_gateway_job_latency_seconds_count 3"));
    }

    #[test]
    fn every_metric_family_has_help_and_type() {
        let text = MetricsRegistry::new().render();
        for family in [
            "pimsyn_gateway_http_requests_total",
            "pimsyn_gateway_jobs_submitted_total",
            "pimsyn_gateway_jobs_finished_total",
            "pimsyn_gateway_job_latency_seconds",
            "pimsyn_gateway_evaluations_scored_total",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
    }
}
