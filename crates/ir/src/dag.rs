//! Explicit IR DAG materialization and analysis.
//!
//! Nodes are IR operations; edges carry their dependency class (Fig. 4:
//! inter-operation, inter-bit, inter-block, inter-layer). Construction order
//! is topological by design, which keeps depth/critical-path analysis a
//! single forward sweep.

use std::fmt::Write as _;

use crate::compile::Dataflow;
use crate::error::IrError;
use crate::op::{AluOp, IrCategory, IrOp};

/// Dependency classes between IR operations (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Order of operations within one computation block.
    InterOp,
    /// Pipelining between consecutive computation blocks.
    InterBlock,
    /// Pipelining between consecutive input-bit iterations.
    InterBit,
    /// Fine-grained producer/consumer dependency between layers.
    InterLayer,
}

/// The materialized IR DAG.
///
/// # Example
///
/// ```
/// use pimsyn_arch::{CrossbarConfig, DacConfig};
/// use pimsyn_ir::Dataflow;
/// use pimsyn_model::{ModelBuilder, TensorShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
/// b.conv("c1", None, 4, 3, 1, 1);
/// let model = b.build()?;
/// let df = Dataflow::compile(
///     &model,
///     CrossbarConfig::new(128, 2)?,
///     DacConfig::new(4)?,
///     &[8],
/// )?;
/// let dag = df.build_dag(1_000_000)?;
/// assert!(dag.node_count() > 0);
/// assert!(dag.depth() >= 6); // load -> 4 x mvm chain -> ... -> store
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IrDag {
    nodes: Vec<IrOp>,
    succs: Vec<Vec<(u32, DepKind)>>,
    edge_count: usize,
}

impl IrDag {
    /// Builds the DAG for a compiled dataflow. See
    /// [`Dataflow::build_dag`] for the public entry point.
    ///
    /// # Errors
    ///
    /// [`IrError::DagTooLarge`] when the estimated node count exceeds
    /// `node_limit`.
    pub(crate) fn build(df: &Dataflow, node_limit: usize) -> Result<Self, IrError> {
        let estimate = df.dag_node_estimate();
        if estimate > node_limit {
            return Err(IrError::DagTooLarge {
                nodes: estimate,
                limit: node_limit,
            });
        }

        let mut dag = IrDag {
            nodes: Vec::with_capacity(estimate),
            succs: Vec::new(),
            edge_count: 0,
        };

        // store node id per (layer, block), for inter-layer edges.
        let mut store_ids: Vec<Vec<u32>> = Vec::with_capacity(df.programs().len());

        for prog in df.programs() {
            let mut layer_stores = Vec::with_capacity(prog.blocks);
            let mut prev_load: Option<u32> = None;
            let mut prev_block_last_mvm: Option<u32> = None;

            for cnt in 0..prog.blocks {
                let load = dag.push(IrOp::Load {
                    layer: prog.layer,
                    cnt,
                    vec_width: prog.load_elems,
                });
                // Inter-block: the scratchpad port issues loads in order.
                if let Some(p) = prev_load {
                    dag.link(p, load, DepKind::InterBlock);
                }
                prev_load = Some(load);

                // Inter-layer: producers must have stored enough blocks.
                for &producer in &prog.producers {
                    let needed = df.producer_blocks_needed(prog.layer, cnt, producer);
                    if needed > 0 {
                        let pstores: &Vec<u32> = &store_ids[producer];
                        let idx = needed.min(pstores.len()) - 1;
                        dag.link(pstores[idx], load, DepKind::InterLayer);
                    }
                }

                let mut prev_mvm: Option<u32> = None;
                let mut last_sa = load;
                for bit in 0..prog.bits {
                    let mvm = dag.push(IrOp::Mvm {
                        layer: prog.layer,
                        cnt,
                        bit,
                        xb_num: prog.crossbars,
                    });
                    match prev_mvm {
                        // Inter-bit: bit iterations reuse the same arrays.
                        Some(p) => dag.link(p, mvm, DepKind::InterBit),
                        // First bit waits for the block's inputs.
                        None => dag.link(load, mvm, DepKind::InterOp),
                    }
                    // Inter-block: block cnt+1's first MVM follows block
                    // cnt's last (the arrays are busy until then).
                    if bit == 0 {
                        if let Some(p) = prev_block_last_mvm {
                            dag.link(p, mvm, DepKind::InterBlock);
                        }
                    }
                    prev_mvm = Some(mvm);
                    if bit + 1 == prog.bits {
                        prev_block_last_mvm = Some(mvm);
                    }

                    let adc = dag.push(IrOp::Adc {
                        layer: prog.layer,
                        cnt,
                        bit,
                        vec_width: prog.adc_samples,
                    });
                    dag.link(mvm, adc, DepKind::InterOp);
                    let sa = dag.push(IrOp::Alu {
                        aluop: AluOp::ShiftAdd,
                        layer: prog.layer,
                        cnt,
                        bit,
                        vec_width: prog.shift_add_ops,
                    });
                    dag.link(adc, sa, DepKind::InterOp);
                    last_sa = sa;
                }

                let mut tail = last_sa;
                if prog.act_ops > 0 {
                    let act = dag.push(IrOp::Alu {
                        aluop: AluOp::Activation,
                        layer: prog.layer,
                        cnt,
                        bit: prog.bits - 1,
                        vec_width: prog.act_ops,
                    });
                    dag.link(tail, act, DepKind::InterOp);
                    tail = act;
                }
                if prog.pool_ops > 0 {
                    let pool = dag.push(IrOp::Alu {
                        aluop: AluOp::Pool,
                        layer: prog.layer,
                        cnt,
                        bit: prog.bits - 1,
                        vec_width: prog.pool_ops,
                    });
                    dag.link(tail, pool, DepKind::InterOp);
                    tail = pool;
                }
                if prog.eltwise_ops > 0 {
                    let elt = dag.push(IrOp::Alu {
                        aluop: AluOp::Eltwise,
                        layer: prog.layer,
                        cnt,
                        bit: prog.bits - 1,
                        vec_width: prog.eltwise_ops,
                    });
                    dag.link(tail, elt, DepKind::InterOp);
                    tail = elt;
                }
                let store = dag.push(IrOp::Store {
                    layer: prog.layer,
                    cnt,
                    vec_width: prog.store_elems,
                });
                dag.link(tail, store, DepKind::InterOp);
                layer_stores.push(store);
            }
            store_ids.push(layer_stores);
        }
        Ok(dag)
    }

    fn push(&mut self, op: IrOp) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(op);
        self.succs.push(Vec::new());
        id
    }

    fn link(&mut self, from: u32, to: u32, kind: DepKind) {
        debug_assert!(from < to, "construction order must be topological");
        self.succs[from as usize].push((to, kind));
        self.edge_count += 1;
    }

    /// Number of IR nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The `id`-th operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: u32) -> IrOp {
        self.nodes[id as usize]
    }

    /// Iterates over all nodes in topological order.
    pub fn nodes(&self) -> impl Iterator<Item = &IrOp> + '_ {
        self.nodes.iter()
    }

    /// Successors of a node with their dependency kinds.
    pub fn successors(&self, id: u32) -> &[(u32, DepKind)] {
        &self.succs[id as usize]
    }

    /// Longest path length in nodes (the paper estimates performance by "the
    /// depth of the IR-based DAG and the IRs' latencies").
    pub fn depth(&self) -> usize {
        self.longest_path(|_| 1.0) as usize
    }

    /// Longest weighted path where each node contributes `latency(op)`.
    pub fn longest_path(&self, latency: impl Fn(&IrOp) -> f64) -> f64 {
        let mut dist = vec![0.0f64; self.nodes.len()];
        let mut best = 0.0f64;
        for (i, op) in self.nodes.iter().enumerate() {
            let here = dist[i] + latency(op);
            best = best.max(here);
            for &(succ, _) in &self.succs[i] {
                let d = &mut dist[succ as usize];
                if here > *d {
                    *d = here;
                }
            }
        }
        best
    }

    /// Node counts per Table II category: (computation, intra-macro,
    /// inter-macro).
    pub fn category_counts(&self) -> (usize, usize, usize) {
        let mut comp = 0;
        let mut intra = 0;
        let mut inter = 0;
        for op in &self.nodes {
            match op.category() {
                IrCategory::Computation => comp += 1,
                IrCategory::IntraMacro => intra += 1,
                IrCategory::InterMacro => inter += 1,
            }
        }
        (comp, intra, inter)
    }

    /// Renders the first `max_nodes` nodes as Graphviz `dot` (dataflow
    /// visualization; edges annotated with their dependency kind).
    pub fn to_dot(&self, max_nodes: usize) -> String {
        let n = self.nodes.len().min(max_nodes);
        let mut out = String::from("digraph ir {\n  rankdir=LR;\n");
        for i in 0..n {
            let _ = writeln!(out, "  n{i} [label=\"{}\"];", self.nodes[i]);
        }
        for i in 0..n {
            for &(succ, kind) in &self.succs[i] {
                if (succ as usize) < n {
                    let style = match kind {
                        DepKind::InterOp => "solid",
                        DepKind::InterBlock => "dashed",
                        DepKind::InterBit => "dotted",
                        DepKind::InterLayer => "bold",
                    };
                    let _ = writeln!(out, "  n{i} -> n{succ} [style={style}];");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{CrossbarConfig, DacConfig};
    use pimsyn_model::{ModelBuilder, TensorShape};

    fn small_df(dup: &[usize]) -> Dataflow {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        b.conv("c2", Some(p1), 8, 3, 1, 1);
        let m = b.build().unwrap();
        Dataflow::compile(
            &m,
            CrossbarConfig::new(128, 2).unwrap(),
            DacConfig::new(4).unwrap(),
            dup,
        )
        .unwrap()
    }

    #[test]
    fn node_count_matches_estimate() {
        let df = small_df(&[4, 2]);
        let dag = df.build_dag(1_000_000).unwrap();
        assert_eq!(dag.node_count(), df.dag_node_estimate());
    }

    #[test]
    fn edges_are_topological_and_acyclic() {
        let df = small_df(&[4, 2]);
        let dag = df.build_dag(1_000_000).unwrap();
        for i in 0..dag.node_count() as u32 {
            for &(succ, _) in dag.successors(i) {
                assert!(succ > i, "edge {i} -> {succ} violates topo order");
            }
        }
    }

    #[test]
    fn depth_spans_both_layers() {
        let df = small_df(&[64, 16]);
        let dag = df.build_dag(1_000_000).unwrap();
        // One block per layer (dup = positions): chain depth is
        // load + 4 x (mvm adc sa) + act [+ pool] + store per layer, linked
        // by an inter-layer edge.
        let single_layer_min = 1 + 3 * 4 + 1 + 1;
        assert!(dag.depth() > single_layer_min, "depth {}", dag.depth());
    }

    #[test]
    fn inter_layer_edges_exist() {
        let df = small_df(&[4, 2]);
        let dag = df.build_dag(1_000_000).unwrap();
        let inter_layer = (0..dag.node_count() as u32)
            .flat_map(|i| dag.successors(i).iter())
            .filter(|(_, k)| *k == DepKind::InterLayer)
            .count();
        assert!(inter_layer > 0);
    }

    #[test]
    fn category_counts_are_consistent() {
        let df = small_df(&[4, 2]);
        let dag = df.build_dag(1_000_000).unwrap();
        let (comp, intra, inter) = dag.category_counts();
        assert_eq!(comp + intra + inter, dag.node_count());
        assert_eq!(
            inter, 0,
            "communication IRs appear after macro partitioning"
        );
        assert!(comp > intra);
    }

    #[test]
    fn weighted_longest_path_dominated_by_slow_ops() {
        let df = small_df(&[4, 2]);
        let dag = df.build_dag(1_000_000).unwrap();
        let mvm_only = dag.longest_path(|op| match op {
            IrOp::Mvm { .. } => 100.0,
            _ => 0.0,
        });
        // Block count of layer 0 (16 blocks) x 4 bits x 100 plus layer 1's
        // chained MVMs must appear on the path.
        assert!(mvm_only >= 16.0 * 4.0 * 100.0, "got {mvm_only}");
    }

    #[test]
    fn dot_export_is_well_formed() {
        let df = small_df(&[64, 16]);
        let dag = df.build_dag(1_000_000).unwrap();
        let dot = dag.to_dot(50);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
