//! Compact per-layer execution schedules.
//!
//! A [`LayerProgram`] captures everything the performance models need about
//! one layer's compiled dataflow — block/bit structure, per-step workloads of
//! every IR class, and the geometry needed to evaluate inter-layer
//! dependencies — without materializing the full IR DAG (which reaches 10^7
//! nodes for ImageNet networks; see `DESIGN.md`).

use pimsyn_model::PoolKind;

/// The compiled schedule of one weight layer.
///
/// Quantities are split by rate class:
/// - *per block-bit* (executed `blocks x bits` times): `adc_samples`,
///   `shift_add_ops`, one MVM of `crossbars` arrays;
/// - *per block* (executed `blocks` times): `load_elems`, `store_elems`,
///   `act_ops`, `pool_ops`, `eltwise_ops`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerProgram {
    /// Weight-layer index.
    pub layer: usize,
    /// Layer name for reports.
    pub name: String,
    /// Weight duplication factor (`WtDup_i`).
    pub wt_dup: usize,
    /// Computation blocks: `ceil(HO x WO / WtDup)`.
    pub blocks: usize,
    /// Input-bit iterations per block: `ceil(PrecAct / ResDAC)`.
    pub bits: usize,
    /// Crossbars per weight copy (Eq. (1)).
    pub crossbar_set: usize,
    /// Crossbars firing per MVM step: `WtDup x set`.
    pub crossbars: usize,
    /// Row groups per copy: `ceil(WK*WK*CI / XbSize)` — when a layer spans
    /// multiple macros, partial sums from different row groups must be
    /// merged across macros.
    pub row_groups: usize,
    /// ADC samples per block-bit.
    pub adc_samples: usize,
    /// Shift-and-add merges per block-bit.
    pub shift_add_ops: usize,
    /// Activation elements loaded per block.
    pub load_elems: usize,
    /// Result elements stored per block.
    pub store_elems: usize,
    /// Activation-function ops per block (0 when no ReLU follows).
    pub act_ops: usize,
    /// Pooling ops per block (0 when no pooling follows).
    pub pool_ops: usize,
    /// Elementwise-add ops per block (0 unless the layer feeds a residual).
    pub eltwise_ops: usize,
    /// Pooling fused after the layer, if any.
    pub pool: Option<(PoolKind, usize)>,

    /// Output spatial height `HO`.
    pub out_height: usize,
    /// Output spatial width `WO`.
    pub out_width: usize,
    /// Input spatial height `HI`.
    pub in_height: usize,
    /// Kernel extent `WK`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Producer weight-layer indices.
    pub producers: Vec<usize>,
    /// Consumer weight-layer indices.
    pub consumers: Vec<usize>,
}

impl LayerProgram {
    /// Total block-bit MVM steps the layer executes per inference.
    pub fn total_steps(&self) -> u64 {
        self.blocks as u64 * self.bits as u64
    }

    /// Total ADC samples per inference.
    pub fn total_adc_samples(&self) -> u64 {
        self.total_steps() * self.adc_samples as u64
    }

    /// Total scratchpad traffic per inference, in elements.
    pub fn total_memory_elems(&self) -> u64 {
        self.blocks as u64 * (self.load_elems + self.store_elems) as u64
    }

    /// Total vector-ALU operations per inference (all classes).
    pub fn total_alu_ops(&self) -> u64 {
        self.total_steps() * self.shift_add_ops as u64
            + self.blocks as u64 * (self.act_ops + self.pool_ops + self.eltwise_ops) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> LayerProgram {
        LayerProgram {
            layer: 0,
            name: "c1".into(),
            wt_dup: 2,
            blocks: 50,
            bits: 4,
            crossbar_set: 8,
            crossbars: 16,
            row_groups: 1,
            adc_samples: 64,
            shift_add_ops: 64,
            load_elems: 54,
            store_elems: 16,
            act_ops: 16,
            pool_ops: 0,
            eltwise_ops: 0,
            pool: None,
            out_height: 10,
            out_width: 10,
            in_height: 10,
            kernel: 3,
            stride: 1,
            producers: vec![],
            consumers: vec![1],
        }
    }

    #[test]
    fn totals() {
        let p = prog();
        assert_eq!(p.total_steps(), 200);
        assert_eq!(p.total_adc_samples(), 200 * 64);
        assert_eq!(p.total_memory_elems(), 50 * 70);
        assert_eq!(p.total_alu_ops(), 200 * 64 + 50 * 16);
    }
}
