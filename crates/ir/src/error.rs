use std::error::Error;
use std::fmt;

/// Errors from dataflow compilation and DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The weight-duplication vector does not match the model's layer count.
    WtDupArity {
        /// Entries provided.
        got: usize,
        /// Weight layers in the model.
        expected: usize,
    },
    /// A duplication factor of zero is meaningless (every layer keeps at
    /// least one weight copy).
    ZeroDuplication {
        /// Offending layer index.
        layer: usize,
    },
    /// Materializing the full IR DAG would exceed the node budget; use the
    /// streamed `LayerProgram` path instead (how the simulator handles
    /// ImageNet-scale networks).
    DagTooLarge {
        /// Nodes the DAG would need.
        nodes: usize,
        /// Configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::WtDupArity { got, expected } => {
                write!(
                    f,
                    "weight duplication vector has {got} entries, model has {expected} layers"
                )
            }
            IrError::ZeroDuplication { layer } => {
                write!(f, "layer {layer} has zero weight duplication")
            }
            IrError::DagTooLarge { nodes, limit } => {
                write!(
                    f,
                    "IR DAG needs {nodes} nodes, exceeding the {limit}-node limit"
                )
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }

    #[test]
    fn messages() {
        assert!(IrError::WtDupArity {
            got: 3,
            expected: 16
        }
        .to_string()
        .contains("16"));
        assert!(IrError::ZeroDuplication { layer: 2 }
            .to_string()
            .contains("layer 2"));
    }
}
