//! PIM intermediate representation and dataflow compilation for the PIMSYN
//! reproduction.
//!
//! The dataflow-compilation stage (Sec. IV-B of the paper) translates a CNN
//! into IR operations whose dependencies form a DAG; hardware exploration
//! then reduces to finding the best resource allocation for those IRs.
//!
//! - [`IrOp`] / [`AluOp`] / [`IrCategory`]: the IR set of Table II.
//! - [`Dataflow`]: the compiled per-layer schedules ([`LayerProgram`]) plus
//!   inter-layer dependency queries (Fig. 4 pipeline semantics).
//! - [`IrDag`] / [`DepKind`]: the explicit DAG with depth/critical-path
//!   analysis and Graphviz export.
//! - [`pipeline`]: the fine-grained inter-layer dependency arithmetic.
//!
//! # Example
//!
//! ```
//! use pimsyn_arch::{CrossbarConfig, DacConfig};
//! use pimsyn_ir::Dataflow;
//! use pimsyn_model::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::alexnet_cifar(10);
//! let dup = vec![2; model.weight_layer_count()];
//! let df = Dataflow::compile(
//!     &model,
//!     CrossbarConfig::new(128, 2)?,
//!     DacConfig::new(2)?,
//!     &dup,
//! )?;
//! // 16-bit activations at 2-bit DAC: 8 bit-iterations per block.
//! assert_eq!(df.program(0).bits, 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod dag;
mod error;
mod op;
pub mod pipeline;
mod program;

pub use compile::Dataflow;
pub use dag::{DepKind, IrDag};
pub use error::IrError;
pub use op::{AluOp, IrCategory, IrOp};
pub use program::LayerProgram;
