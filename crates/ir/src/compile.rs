//! Dataflow compilation (Sec. IV-B): translate the CNN description plus the
//! weight-duplication strategy and DAC resolution into per-layer IR
//! schedules, with dependencies per Fig. 4.

use pimsyn_arch::{CrossbarConfig, DacConfig};
use pimsyn_model::{Model, WeightLayer};

use crate::dag::IrDag;
use crate::error::IrError;
use crate::pipeline;
use crate::program::LayerProgram;

/// A compiled dataflow: the unified representation consumed by the macro
/// partitioning / components allocation stages and by both performance
/// models.
///
/// # Example
///
/// ```
/// use pimsyn_arch::{CrossbarConfig, DacConfig};
/// use pimsyn_ir::Dataflow;
/// use pimsyn_model::zoo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = zoo::alexnet();
/// let dup = vec![1; model.weight_layer_count()];
/// let df = Dataflow::compile(
///     &model,
///     CrossbarConfig::new(128, 2)?,
///     DacConfig::new(1)?,
///     &dup,
/// )?;
/// assert_eq!(df.programs().len(), 8);
/// assert_eq!(df.programs()[0].bits, 16); // 16-bit activations, 1-bit DAC
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataflow {
    programs: Vec<LayerProgram>,
    geometry: Vec<WeightLayer>,
    crossbar: CrossbarConfig,
    dac: DacConfig,
    activation_bits: u32,
    weight_bits: u32,
}

impl Dataflow {
    /// Compiles `model` under duplication strategy `wt_dup`.
    ///
    /// # Errors
    ///
    /// - [`IrError::WtDupArity`] if `wt_dup.len() != model.weight_layer_count()`.
    /// - [`IrError::ZeroDuplication`] if any factor is zero.
    pub fn compile(
        model: &Model,
        crossbar: CrossbarConfig,
        dac: DacConfig,
        wt_dup: &[usize],
    ) -> Result<Self, IrError> {
        let layer_count = model.weight_layer_count();
        if wt_dup.len() != layer_count {
            return Err(IrError::WtDupArity {
                got: wt_dup.len(),
                expected: layer_count,
            });
        }
        if let Some(zero) = wt_dup.iter().position(|&d| d == 0) {
            return Err(IrError::ZeroDuplication { layer: zero });
        }

        let precision = model.precision();
        let bits = dac.bit_iterations(precision.activation_bits());
        let weight_bits = precision.weight_bits();

        let mut programs = Vec::with_capacity(layer_count);
        let mut geometry = Vec::with_capacity(layer_count);
        for (i, wl) in model.weight_layers().enumerate() {
            let dup = wt_dup[i];
            let set = crossbar.crossbar_set(wl, weight_bits);
            let positions = wl.output_positions();
            let blocks = positions.div_ceil(dup);
            let row_groups = wl.filter_rows().div_ceil(crossbar.size());
            let slices = crossbar.weight_slices(weight_bits);
            // Every output channel is digitized once per weight slice and per
            // row group (partial sums from split rows are merged digitally).
            let adc_samples = dup * wl.out_channels * slices * row_groups;
            programs.push(LayerProgram {
                layer: i,
                name: wl.name.clone(),
                wt_dup: dup,
                blocks,
                bits,
                crossbar_set: set,
                crossbars: dup * set,
                row_groups,
                adc_samples,
                shift_add_ops: adc_samples,
                // Inputs fetched per block step: the full window WK*WK*CI,
                // independent of grouping (every input channel is loaded once
                // per position even though each filter reads only its group).
                load_elems: dup * wl.input_window(),
                store_elems: dup * wl.out_channels,
                act_ops: if wl.relu { dup * wl.out_channels } else { 0 },
                pool_ops: if wl.pool.is_some() {
                    dup * wl.out_channels
                } else {
                    0
                },
                eltwise_ops: if wl.feeds_add {
                    dup * wl.out_channels
                } else {
                    0
                },
                pool: wl.pool,
                out_height: wl.out_height,
                out_width: wl.out_width,
                in_height: wl.in_height,
                kernel: wl.kernel,
                stride: wl.stride,
                producers: wl.producers.clone(),
                consumers: wl.consumers.clone(),
            });
            geometry.push(wl.clone());
        }

        Ok(Self {
            programs,
            geometry,
            crossbar,
            dac,
            activation_bits: precision.activation_bits(),
            weight_bits,
        })
    }

    /// Per-layer compiled schedules, indexed by weight-layer index.
    pub fn programs(&self) -> &[LayerProgram] {
        &self.programs
    }

    /// The `index`-th layer's schedule.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn program(&self, index: usize) -> &LayerProgram {
        &self.programs[index]
    }

    /// Crossbar configuration the dataflow was compiled against.
    pub fn crossbar(&self) -> CrossbarConfig {
        self.crossbar
    }

    /// DAC configuration the dataflow was compiled against.
    pub fn dac(&self) -> DacConfig {
        self.dac
    }

    /// Activation precision in bits.
    pub fn activation_bits(&self) -> u32 {
        self.activation_bits
    }

    /// Weight precision in bits.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Total crossbars demanded by the dataflow: `sum WtDup_i x set_i` — the
    /// left side of Eq. (2)'s constraint.
    pub fn total_crossbars(&self) -> usize {
        self.programs.iter().map(|p| p.crossbars).sum()
    }

    /// Inter-layer dependency (Fig. 4): producer blocks that must finish
    /// before `consumer` layer's block `cnt` may start.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn producer_blocks_needed(&self, consumer: usize, cnt: usize, producer: usize) -> usize {
        pipeline::producer_blocks_needed(
            &self.geometry[consumer],
            self.programs[consumer].wt_dup,
            cnt,
            &self.geometry[producer],
            self.programs[producer].wt_dup,
        )
    }

    /// Pipeline fill offset between a producer/consumer pair (blocks of the
    /// producer needed before the consumer's first block).
    pub fn fill_blocks(&self, consumer: usize, producer: usize) -> usize {
        self.producer_blocks_needed(consumer, 0, producer)
    }

    /// Materializes the explicit IR DAG (for analysis, visualization and
    /// small-model validation).
    ///
    /// # Errors
    ///
    /// [`IrError::DagTooLarge`] when the DAG would exceed `node_limit` nodes
    /// — use the streamed [`LayerProgram`] path instead (what the simulator
    /// does for ImageNet-scale networks).
    pub fn build_dag(&self, node_limit: usize) -> Result<IrDag, IrError> {
        IrDag::build(self, node_limit)
    }

    /// Estimated node count of the explicit DAG without building it.
    pub fn dag_node_estimate(&self) -> usize {
        self.programs
            .iter()
            .map(|p| {
                let per_block = 2 // load + store
                    + 3 * p.bits // mvm, adc, s&a per bit
                    + usize::from(p.act_ops > 0)
                    + usize::from(p.pool_ops > 0)
                    + usize::from(p.eltwise_ops > 0);
                p.blocks * per_block
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::{zoo, ModelBuilder, TensorShape};

    fn xb() -> CrossbarConfig {
        CrossbarConfig::new(128, 2).unwrap()
    }

    fn dac() -> DacConfig {
        DacConfig::new(4).unwrap()
    }

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        b.conv("c2", Some(p1), 8, 3, 1, 1);
        b.build().unwrap()
    }

    use pimsyn_model::Model;

    #[test]
    fn arity_checked() {
        let m = tiny_model();
        assert!(matches!(
            Dataflow::compile(&m, xb(), dac(), &[1]),
            Err(IrError::WtDupArity {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn zero_dup_rejected() {
        let m = tiny_model();
        assert!(matches!(
            Dataflow::compile(&m, xb(), dac(), &[1, 0]),
            Err(IrError::ZeroDuplication { layer: 1 })
        ));
    }

    #[test]
    fn block_and_bit_structure() {
        let m = tiny_model();
        let df = Dataflow::compile(&m, xb(), dac(), &[4, 2]).unwrap();
        let p0 = df.program(0);
        assert_eq!(p0.blocks, 64usize.div_ceil(4));
        assert_eq!(p0.bits, 4); // 16-bit activations / 4-bit DAC
        assert_eq!(p0.crossbars, 4 * p0.crossbar_set);
        // c1: rows 27 -> 1 group, cols 8 -> 1 group, slices 8.
        assert_eq!(p0.crossbar_set, 8);
    }

    #[test]
    fn adc_workload_scales_with_dup_and_slices() {
        let m = tiny_model();
        let df1 = Dataflow::compile(&m, xb(), dac(), &[1, 1]).unwrap();
        let df4 = Dataflow::compile(&m, xb(), dac(), &[4, 1]).unwrap();
        assert_eq!(df4.program(0).adc_samples, 4 * df1.program(0).adc_samples);
        // Total samples per inference are duplication-invariant.
        assert_eq!(
            df4.program(0).total_adc_samples(),
            df1.program(0).total_adc_samples()
        );
    }

    #[test]
    fn fused_op_workloads() {
        let m = tiny_model();
        let df = Dataflow::compile(&m, xb(), dac(), &[2, 2]).unwrap();
        assert!(df.program(0).act_ops > 0);
        assert!(df.program(0).pool_ops > 0);
        assert_eq!(df.program(0).eltwise_ops, 0);
        assert_eq!(df.program(1).pool_ops, 0);
    }

    #[test]
    fn total_crossbars_is_eq2_lhs() {
        let m = tiny_model();
        let df = Dataflow::compile(&m, xb(), dac(), &[3, 5]).unwrap();
        let expected = 3 * df.program(0).crossbar_set + 5 * df.program(1).crossbar_set;
        assert_eq!(df.total_crossbars(), expected);
    }

    #[test]
    fn inter_layer_dependency_through_pool() {
        let m = tiny_model();
        let df = Dataflow::compile(&m, xb(), dac(), &[8, 1]).unwrap();
        // First block of c2 needs 3 input rows -> 6 producer rows (2x pool)
        // -> 48 positions -> 6 blocks at dup 8.
        assert_eq!(df.producer_blocks_needed(1, 0, 0), 6);
        assert_eq!(df.fill_blocks(1, 0), 6);
    }

    #[test]
    fn imagenet_dag_estimate_is_large_but_computable() {
        let m = zoo::vgg16();
        let dup = vec![1; m.weight_layer_count()];
        let df = Dataflow::compile(&m, xb(), DacConfig::new(1).unwrap(), &dup).unwrap();
        let est = df.dag_node_estimate();
        assert!(
            est > 1_000_000,
            "VGG16 at dup 1 should exceed 1M nodes, got {est}"
        );
        assert!(matches!(
            df.build_dag(100_000),
            Err(IrError::DagTooLarge { .. })
        ));
    }
}
