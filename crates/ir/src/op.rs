//! The intermediate representation of Table II: computation IRs (`MVM`,
//! `ADC`, `ALU`), intra-macro communication (`load`, `store`) and inter-macro
//! communication (`merge`, `transfer`).
//!
//! Every IR corresponds to one hardware intrinsic; synthesis is the search
//! for the optimal resource allocation for these IRs (Sec. IV-B).

use std::fmt;

/// Vector ALU operation class (the `aluop` parameter of the `ALU` IR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Shift-and-add: merges bit-serial / slice partial sums.
    ShiftAdd,
    /// Pooling windows (max or average).
    Pool,
    /// Activation (ReLU / PReLU class).
    Activation,
    /// Elementwise residual addition.
    Eltwise,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::ShiftAdd => "s&a",
            AluOp::Pool => "pool",
            AluOp::Activation => "act",
            AluOp::Eltwise => "elt",
        };
        write!(f, "{s}")
    }
}

/// One IR operation (Table II).
///
/// Parameters follow the paper exactly: `layer` is the weight-layer index,
/// `cnt` the computation-block index, `bit` the input-bit iteration,
/// `xb_num` the crossbars participating in an analog MVM, `vec_width` the
/// operand length, and `macro_num`/`src`/`dst` identify macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrOp {
    /// Analog matrix-vector multiply: DAC drive + crossbar read + sample-hold
    /// (indivisible, per the Table II footnote).
    Mvm {
        /// Weight-layer index.
        layer: usize,
        /// Computation-block index.
        cnt: usize,
        /// Input-bit iteration.
        bit: usize,
        /// Number of crossbars firing together.
        xb_num: usize,
    },
    /// Analog-to-digital conversion of bit-line outputs.
    Adc {
        /// Weight-layer index.
        layer: usize,
        /// Computation-block index.
        cnt: usize,
        /// Input-bit iteration.
        bit: usize,
        /// Samples converted.
        vec_width: usize,
    },
    /// Vector ALU operation.
    Alu {
        /// Operation class.
        aluop: AluOp,
        /// Weight-layer index.
        layer: usize,
        /// Computation-block index.
        cnt: usize,
        /// Input-bit iteration.
        bit: usize,
        /// Elements processed.
        vec_width: usize,
    },
    /// Intra-macro activation load from the scratchpad into input registers.
    Load {
        /// Weight-layer index.
        layer: usize,
        /// Computation-block index.
        cnt: usize,
        /// Elements loaded.
        vec_width: usize,
    },
    /// Intra-macro store of results into the scratchpad.
    Store {
        /// Weight-layer index.
        layer: usize,
        /// Computation-block index.
        cnt: usize,
        /// Elements stored.
        vec_width: usize,
    },
    /// Inter-macro partial-sum merge across the macros a layer spans.
    Merge {
        /// Weight-layer index.
        layer: usize,
        /// Macros participating.
        macro_num: usize,
        /// Elements merged.
        vec_width: usize,
    },
    /// Inter-macro activation transfer between a producer and consumer layer.
    Transfer {
        /// Weight-layer index (producer side).
        layer: usize,
        /// Source macro-group id.
        src: usize,
        /// Destination macro-group id.
        dst: usize,
        /// Elements moved.
        vec_width: usize,
    },
}

impl IrOp {
    /// The weight layer this operation belongs to.
    pub fn layer(&self) -> usize {
        match *self {
            IrOp::Mvm { layer, .. }
            | IrOp::Adc { layer, .. }
            | IrOp::Alu { layer, .. }
            | IrOp::Load { layer, .. }
            | IrOp::Store { layer, .. }
            | IrOp::Merge { layer, .. }
            | IrOp::Transfer { layer, .. } => layer,
        }
    }

    /// The computation-block index, where applicable (`merge`/`transfer` are
    /// per-block in the compiled dataflow but keyed by layer in Table II).
    pub fn cnt(&self) -> Option<usize> {
        match *self {
            IrOp::Mvm { cnt, .. }
            | IrOp::Adc { cnt, .. }
            | IrOp::Alu { cnt, .. }
            | IrOp::Load { cnt, .. }
            | IrOp::Store { cnt, .. } => Some(cnt),
            IrOp::Merge { .. } | IrOp::Transfer { .. } => None,
        }
    }

    /// Table II category of this IR.
    pub fn category(&self) -> IrCategory {
        match self {
            IrOp::Mvm { .. } | IrOp::Adc { .. } | IrOp::Alu { .. } => IrCategory::Computation,
            IrOp::Load { .. } | IrOp::Store { .. } => IrCategory::IntraMacro,
            IrOp::Merge { .. } | IrOp::Transfer { .. } => IrCategory::InterMacro,
        }
    }
}

impl fmt::Display for IrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IrOp::Mvm {
                layer,
                cnt,
                bit,
                xb_num,
            } => {
                write!(f, "MVM[l{layer} c{cnt} b{bit} xb{xb_num}]")
            }
            IrOp::Adc {
                layer,
                cnt,
                bit,
                vec_width,
            } => {
                write!(f, "ADC[l{layer} c{cnt} b{bit} w{vec_width}]")
            }
            IrOp::Alu {
                aluop,
                layer,
                cnt,
                bit,
                vec_width,
            } => {
                write!(f, "ALU[{aluop} l{layer} c{cnt} b{bit} w{vec_width}]")
            }
            IrOp::Load {
                layer,
                cnt,
                vec_width,
            } => write!(f, "load[l{layer} c{cnt} w{vec_width}]"),
            IrOp::Store {
                layer,
                cnt,
                vec_width,
            } => {
                write!(f, "store[l{layer} c{cnt} w{vec_width}]")
            }
            IrOp::Merge {
                layer,
                macro_num,
                vec_width,
            } => {
                write!(f, "merge[l{layer} m{macro_num} w{vec_width}]")
            }
            IrOp::Transfer {
                layer,
                src,
                dst,
                vec_width,
            } => {
                write!(f, "transfer[l{layer} {src}->{dst} w{vec_width}]")
            }
        }
    }
}

/// The three IR categories of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrCategory {
    /// MVM / ADC / ALU.
    Computation,
    /// load / store.
    IntraMacro,
    /// merge / transfer.
    InterMacro,
}

impl fmt::Display for IrCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrCategory::Computation => "computation",
            IrCategory::IntraMacro => "intra-macro",
            IrCategory::InterMacro => "inter-macro",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table2() {
        let mvm = IrOp::Mvm {
            layer: 0,
            cnt: 0,
            bit: 0,
            xb_num: 4,
        };
        let load = IrOp::Load {
            layer: 0,
            cnt: 0,
            vec_width: 27,
        };
        let xfer = IrOp::Transfer {
            layer: 0,
            src: 0,
            dst: 1,
            vec_width: 64,
        };
        assert_eq!(mvm.category(), IrCategory::Computation);
        assert_eq!(load.category(), IrCategory::IntraMacro);
        assert_eq!(xfer.category(), IrCategory::InterMacro);
    }

    #[test]
    fn layer_and_cnt_accessors() {
        let adc = IrOp::Adc {
            layer: 3,
            cnt: 7,
            bit: 1,
            vec_width: 64,
        };
        assert_eq!(adc.layer(), 3);
        assert_eq!(adc.cnt(), Some(7));
        let merge = IrOp::Merge {
            layer: 2,
            macro_num: 4,
            vec_width: 16,
        };
        assert_eq!(merge.cnt(), None);
    }

    #[test]
    fn display_is_compact() {
        let op = IrOp::Alu {
            aluop: AluOp::ShiftAdd,
            layer: 1,
            cnt: 2,
            bit: 3,
            vec_width: 64,
        };
        assert_eq!(op.to_string(), "ALU[s&a l1 c2 b3 w64]");
    }
}
