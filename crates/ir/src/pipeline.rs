//! Fine-grained inter-layer pipeline math (Sec. IV-B / Fig. 4): a layer can
//! start computing as soon as its producers have emitted *enough* outputs,
//! not all of them. This module answers "how many producer computation
//! blocks must finish before consumer block `cnt` may start?".

use pimsyn_model::WeightLayer;

/// Number of input rows of `consumer` needed to compute its output rows
/// `0..=last_row` (convolution window arithmetic; padding is ignored, which
/// is conservative by at most `padding` rows).
pub fn input_rows_needed(consumer: &WeightLayer, last_row: usize) -> usize {
    let needed = last_row * consumer.stride + consumer.kernel;
    needed.min(consumer.in_height)
}

/// How many of `producer`'s computation blocks (at duplication
/// `producer_dup`) must be complete before `consumer` block `consumer_block`
/// (at duplication `consumer_dup`) can start.
///
/// Blocks cover output positions in row-major order, `dup` positions per
/// block. Any pooling between the two layers is captured by the ratio of
/// `producer.out_height` to `consumer.in_height`. Fully-connected consumers
/// (`in_height == 1`) require the entire producer output, which falls out of
/// the same arithmetic.
pub fn producer_blocks_needed(
    consumer: &WeightLayer,
    consumer_dup: usize,
    consumer_block: usize,
    producer: &WeightLayer,
    producer_dup: usize,
) -> usize {
    let producer_positions = producer.output_positions();
    let producer_blocks = producer_positions.div_ceil(producer_dup.max(1));

    let consumer_positions = consumer.output_positions();
    let last_pos = ((consumer_block + 1) * consumer_dup.max(1)).min(consumer_positions) - 1;
    let last_row = last_pos / consumer.out_width.max(1);

    let in_rows = input_rows_needed(consumer, last_row);
    if in_rows >= consumer.in_height {
        return producer_blocks;
    }

    // Map consumer-input rows to producer-output rows (pooling contracts the
    // spatial extent between the two).
    let scale = producer.out_height as f64 / consumer.in_height.max(1) as f64;
    let prod_rows = ((in_rows as f64 * scale).ceil() as usize).min(producer.out_height);
    let prod_positions = prod_rows * producer.out_width;
    prod_positions
        .div_ceil(producer_dup.max(1))
        .min(producer_blocks)
}

/// Producer blocks needed before the consumer's *first* block — the pipeline
/// fill offset between adjacent layers.
pub fn fill_blocks(
    consumer: &WeightLayer,
    consumer_dup: usize,
    producer: &WeightLayer,
    producer_dup: usize,
) -> usize {
    producer_blocks_needed(consumer, consumer_dup, 0, producer, producer_dup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::{ModelBuilder, TensorShape};

    /// Two stacked 3x3/1 convs on 16x16, no pooling.
    fn stacked() -> (WeightLayer, WeightLayer) {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 16, 16));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        b.conv("c2", Some(c1), 8, 3, 1, 1);
        let m = b.build().unwrap();
        (m.weight_layer(0).clone(), m.weight_layer(1).clone())
    }

    /// conv -> 2x2 pool -> conv.
    fn pooled() -> (WeightLayer, WeightLayer) {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 16, 16));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let p = b.max_pool("p", c1, 2, 2);
        b.conv("c2", Some(p), 8, 3, 1, 1);
        let m = b.build().unwrap();
        (m.weight_layer(0).clone(), m.weight_layer(1).clone())
    }

    #[test]
    fn first_block_needs_kernel_rows() {
        let (p, c) = stacked();
        // Consumer block 0 at dup 1 computes output (0,0): needs 3 input
        // rows = 3 producer rows = 48 positions = 48 blocks at dup 1.
        assert_eq!(producer_blocks_needed(&c, 1, 0, &p, 1), 3 * 16);
        // At producer dup 16 (a full row per block): 3 blocks.
        assert_eq!(producer_blocks_needed(&c, 1, 0, &p, 16), 3);
    }

    #[test]
    fn deeper_blocks_need_more_rows() {
        let (p, c) = stacked();
        let early = producer_blocks_needed(&c, 1, 0, &p, 1);
        let mid = producer_blocks_needed(&c, 1, 8 * 16, &p, 1);
        assert!(mid > early);
    }

    #[test]
    fn last_block_needs_everything_reachable() {
        let (p, c) = stacked();
        let total_blocks = p.output_positions();
        let last = c.output_positions() - 1;
        assert_eq!(producer_blocks_needed(&c, 1, last, &p, 1), total_blocks);
    }

    #[test]
    fn never_exceeds_producer_blocks() {
        let (p, c) = stacked();
        for dup_c in [1, 4, 16, 256] {
            let blocks_c = c.output_positions().div_ceil(dup_c);
            for cb in [0, blocks_c / 2, blocks_c - 1] {
                for dup_p in [1, 8, 64] {
                    let need = producer_blocks_needed(&c, dup_c, cb, &p, dup_p);
                    assert!(need <= p.output_positions().div_ceil(dup_p));
                }
            }
        }
    }

    #[test]
    fn pooling_doubles_row_demand() {
        let (p, c) = pooled();
        // Consumer input is 8x8 (pooled from 16x16): one consumer input row
        // corresponds to two producer rows.
        let need = producer_blocks_needed(&c, 1, 0, &p, 16);
        // 3 consumer-input rows -> 6 producer rows -> 6 blocks at dup 16.
        assert_eq!(need, 6);
    }

    #[test]
    fn fc_consumer_requires_full_producer() {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 4, 3, 1, 1);
        let f = b.flatten("f", c1);
        b.linear("fc", f, 10);
        let m = b.build().unwrap();
        let (p, c) = (m.weight_layer(0).clone(), m.weight_layer(1).clone());
        assert_eq!(
            producer_blocks_needed(&c, 1, 0, &p, 4),
            p.output_positions().div_ceil(4)
        );
    }

    #[test]
    fn monotone_in_consumer_block() {
        let (p, c) = stacked();
        let mut prev = 0;
        let blocks = c.output_positions().div_ceil(4);
        for cb in 0..blocks {
            let need = producer_blocks_needed(&c, 4, cb, &p, 8);
            assert!(need >= prev, "dependency must be monotone");
            prev = need;
        }
    }

    #[test]
    fn fill_blocks_matches_block_zero() {
        let (p, c) = stacked();
        assert_eq!(
            fill_blocks(&c, 2, &p, 8),
            producer_blocks_needed(&c, 2, 0, &p, 8)
        );
    }
}
