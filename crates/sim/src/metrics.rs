//! Evaluation results: the metrics the paper reports (latency, throughput,
//! energy, EDP, power efficiency) plus per-layer diagnostics.

use std::fmt;

use pimsyn_arch::{Joules, Seconds, Watts};

/// The pipeline stage that limits a layer's computation-block period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Scratchpad input load.
    Load,
    /// Analog matrix-vector multiply.
    Mvm,
    /// ADC conversion.
    Adc,
    /// Shift-and-add merging.
    ShiftAdd,
    /// Post-ops (activation / pooling / residual add).
    Post,
    /// Inter-macro partial-sum merge.
    Merge,
    /// Scratchpad result store.
    Store,
    /// Inter-macro activation transfer.
    Transfer,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageKind::Load => "load",
            StageKind::Mvm => "mvm",
            StageKind::Adc => "adc",
            StageKind::ShiftAdd => "shift-add",
            StageKind::Post => "post",
            StageKind::Merge => "merge",
            StageKind::Store => "store",
            StageKind::Transfer => "transfer",
        };
        write!(f, "{s}")
    }
}

/// Per-layer performance diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Weight-layer index.
    pub layer: usize,
    /// Computation-block pipeline period (steady-state issue interval).
    pub period: Seconds,
    /// Total busy span: `blocks x period`.
    pub busy: Seconds,
    /// Pipeline start offset of the layer's first block.
    pub start: Seconds,
    /// Completion time of the layer's last block.
    pub finish: Seconds,
    /// Which stage limits the period.
    pub bottleneck: StageKind,
}

/// Chip-level busy fractions of the major dynamic resource classes over the
/// run's makespan (1.0 = the class never idled). The paper's efficiency
/// argument is exactly about raising these under a fixed power split.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilization {
    /// ReRAM crossbar arrays.
    pub crossbar: f64,
    /// ADC banks.
    pub adc: f64,
    /// Shift-and-add units.
    pub shift_add: f64,
    /// Post-op ALUs (activation/pool/residual).
    pub post: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xbar {:.0}% adc {:.0}% s&a {:.0}% post {:.0}%",
            self.crossbar * 100.0,
            self.adc * 100.0,
            self.shift_add * 100.0,
            self.post * 100.0
        )
    }
}

/// A complete evaluation result for one accelerator running one CNN.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end latency of a single inference.
    pub latency: Seconds,
    /// Steady-state per-image period of the inter-layer pipeline (inverse
    /// throughput).
    pub steady_period: Seconds,
    /// Effective operations per second (2 x MACs x images/s) at the model's
    /// native precision.
    pub throughput_ops: f64,
    /// Realized total power.
    pub power: Watts,
    /// Energy per inference.
    pub energy_per_image: Joules,
    /// Index of the throughput-limiting layer.
    pub bottleneck_layer: usize,
    /// Chip-level resource busy fractions.
    pub utilization: Utilization,
    /// Per-layer diagnostics.
    pub per_layer: Vec<LayerPerf>,
}

/// Effective power efficiency in TOPS/W, shared by [`SimReport`] and the
/// analytic summary so both compute the exact same float expression.
pub(crate) fn efficiency_tops_per_watt(throughput_ops: f64, power: Watts) -> f64 {
    if power.value() <= 0.0 {
        return 0.0;
    }
    throughput_ops / 1e12 / power.value()
}

/// Energy-delay product in the paper's Table V unit (ms x mJ), shared by
/// [`SimReport`] and the analytic summary.
pub(crate) fn edp_ms_mj(latency: Seconds, energy_per_image: Joules) -> f64 {
    latency.millis() * energy_per_image.value() * 1e3
}

impl SimReport {
    /// Effective power efficiency in TOPS/W (Fig. 6's left axis).
    pub fn efficiency_tops_per_watt(&self) -> f64 {
        efficiency_tops_per_watt(self.throughput_ops, self.power)
    }

    /// Throughput in TOPS (Fig. 6's right axis).
    pub fn throughput_tops(&self) -> f64 {
        self.throughput_ops / 1e12
    }

    /// Inferences per second.
    pub fn images_per_second(&self) -> f64 {
        if self.steady_period.value() <= 0.0 {
            return 0.0;
        }
        1.0 / self.steady_period.value()
    }

    /// Energy-delay product in the paper's Table V unit, ms x mJ.
    pub fn edp_ms_mj(&self) -> f64 {
        edp_ms_mj(self.latency, self.energy_per_image)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "latency {:.4} ms | {:.1} img/s | {:.3} TOPS | {:.3} TOPS/W | {:.4} mJ/img | EDP {:.4} ms*mJ",
            self.latency.millis(),
            self.images_per_second(),
            self.throughput_tops(),
            self.efficiency_tops_per_watt(),
            self.energy_per_image.value() * 1e3,
            self.edp_ms_mj(),
        )?;
        write!(
            f,
            "bottleneck: layer {} | utilization: {}",
            self.bottleneck_layer, self.utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            latency: Seconds::from_millis(2.0),
            steady_period: Seconds::from_millis(1.0),
            throughput_ops: 4e12,
            power: Watts(2.0),
            energy_per_image: Joules(4e-3),
            bottleneck_layer: 1,
            utilization: Utilization::default(),
            per_layer: vec![],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.efficiency_tops_per_watt() - 2.0).abs() < 1e-12);
        assert!((r.throughput_tops() - 4.0).abs() < 1e-12);
        assert!((r.images_per_second() - 1000.0).abs() < 1e-9);
        // 2 ms x 4 mJ = 8 ms*mJ.
        assert!((r.edp_ms_mj() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_power_does_not_divide_by_zero() {
        let mut r = report();
        r.power = Watts(0.0);
        assert_eq!(r.efficiency_tops_per_watt(), 0.0);
    }

    #[test]
    fn display_mentions_units() {
        let text = report().to_string();
        assert!(text.contains("TOPS/W"));
        assert!(text.contains("EDP"));
    }
}
