//! Performance evaluation for PIM CNN accelerators: a cycle-accurate
//! IR-based behavior-level simulator plus a closed-form analytical model.
//!
//! The paper evaluates every synthesized accelerator with "a cycle-accurate
//! IR-based behavior-level simulator" (Sec. V) and steers its DSE with a
//! cheaper estimate derived from the IR DAG's depth and latencies
//! (Sec. IV-B). This crate provides both:
//!
//! - [`simulate`]: discrete-event execution of the compiled
//!   [`Dataflow`](pimsyn_ir::Dataflow) on an
//!   [`Architecture`](pimsyn_arch::Architecture), with resource contention
//!   (shared ADC banks, scratchpad ports, NoC egress), fine-grained
//!   inter-layer pipelining, and multi-image steady-state measurement.
//! - [`evaluate_analytic`]: the fast pipeline-period model used inside the
//!   DSE loops (thousands of evaluations per synthesis).
//! - [`SimReport`]: latency / throughput / energy / EDP / TOPS-per-watt, the
//!   exact metrics of the paper's Tables IV-V and Figs. 6-9.
//!
//! # Example
//!
//! ```no_run
//! use pimsyn_sim::{evaluate_analytic, simulate};
//! # fn get() -> (pimsyn_model::Model, pimsyn_ir::Dataflow, pimsyn_arch::Architecture) {
//! #     unimplemented!()
//! # }
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (model, dataflow, arch) = get();
//! let quick = evaluate_analytic(&model, &dataflow, &arch)?;
//! let precise = simulate(&model, &dataflow, &arch, 4)?;
//! println!("analytic {quick}\ncycle    {precise}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod engine;
mod error;
mod metrics;
mod stages;

pub use analytic::{
    efficiency_or_zero, evaluate_analytic, evaluate_analytic_cached, solve_pipeline,
    solve_pipeline_into, summarize_pipeline, AnalyticSummary, LayerCacheStats, LayerCostCache,
    LayerCostKey, PipelineSolution,
};
pub use engine::simulate;
pub use error::SimError;
pub use metrics::{LayerPerf, SimReport, StageKind, Utilization};
pub use stages::{
    assemble_stages, compute_layer_base, compute_layer_base_with, compute_layer_dynamic,
    compute_layer_dynamic_with, compute_stages, LayerBaseCosts, LayerCostInputs, LayerStages,
};
