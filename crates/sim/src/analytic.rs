//! Fast analytical performance model.
//!
//! The DSE flow (Alg. 1) evaluates thousands of candidate architectures; the
//! paper estimates performance from "the depth of the IR-based DAG and the
//! IRs' latencies" (Sec. IV-B). This model does exactly that in closed form:
//! each layer issues computation blocks at the period of its slowest stage
//! (Eq. (5)'s `min max` objective), layers start when their producers have
//! filled the pipeline far enough (Fig. 4), and inter-layer ADC sharing
//! inflates periods when the sharing layers' active windows overlap
//! (Fig. 5a). The cycle-accurate engine ([`crate::simulate`]) refines these
//! numbers for final reporting.

use pimsyn_arch::{Architecture, Joules, Seconds};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;

use crate::error::SimError;
use crate::metrics::{LayerPerf, SimReport, StageKind, Utilization};
use crate::stages::{compute_stages, LayerStages};

/// Evaluates `arch` running `df` (compiled from `model`) analytically.
///
/// # Errors
///
/// Propagates [`SimError`] from stage computation (mismatched layer counts,
/// missing components).
///
/// # Example
///
/// See [`crate`]-level docs; the quickstart example builds an architecture
/// and calls this directly.
pub fn evaluate_analytic(
    model: &Model,
    df: &Dataflow,
    arch: &Architecture,
) -> Result<SimReport, SimError> {
    let stages = compute_stages(df, arch)?;
    let n = stages.len();

    // First pass: periods, starts and finishes without sharing contention.
    let mut periods: Vec<f64> = Vec::with_capacity(n);
    let mut bottlenecks: Vec<StageKind> = Vec::with_capacity(n);
    for s in &stages {
        let (p, k) = s.period();
        periods.push(p);
        bottlenecks.push(k);
    }
    let (mut starts, mut finishes) = schedule(df, &stages, &periods);

    // Second pass: inter-layer ADC reuse. Layers sharing a macro group share
    // its physical ADC bank: when their active windows overlap, the bank
    // serves both, stretching whoever needs it (Fig. 5a shows the distance
    // dependence of this penalty).
    let mut adjusted = periods.clone();
    for group in arch.macro_groups() {
        if group.members.len() < 2 {
            continue;
        }
        for &m in &group.members {
            let demand_m = stages[m].bits as f64 * stages[m].adc_bit;
            if demand_m == 0.0 {
                continue;
            }
            // Fraction of the ADC bank consumed by overlapping partners
            // during layer m's window.
            let dur_m = (finishes[m] - starts[m]).max(1e-30);
            let mut partner_load = 0.0;
            for &o in &group.members {
                if o == m {
                    continue;
                }
                let overlap = overlap_len(starts[m], finishes[m], starts[o], finishes[o]);
                if overlap <= 0.0 {
                    continue;
                }
                let demand_o = stages[o].bits as f64 * stages[o].adc_bit;
                // Partner's ADC utilization during the overlap.
                partner_load += (demand_o / periods[o].max(1e-30)) * (overlap / dur_m);
            }
            if partner_load > 0.0 {
                // The ADC stage of layer m slows by the contended share.
                let own_util = demand_m / periods[m].max(1e-30);
                let total = own_util + partner_load;
                if total > 1.0 {
                    let stretched_adc = demand_m * total / own_util.max(1e-30);
                    adjusted[m] = adjusted[m].max(stretched_adc);
                    if stretched_adc >= adjusted[m] {
                        bottlenecks[m] = StageKind::Adc;
                    }
                }
            }
        }
    }
    if adjusted != periods {
        let (s2, f2) = schedule(df, &stages, &adjusted);
        starts = s2;
        finishes = f2;
        periods = adjusted;
    }

    let per_layer: Vec<LayerPerf> = (0..n)
        .map(|i| LayerPerf {
            layer: i,
            period: Seconds(periods[i]),
            busy: Seconds(df.program(i).blocks as f64 * periods[i]),
            start: Seconds(starts[i]),
            finish: Seconds(finishes[i]),
            bottleneck: bottlenecks[i],
        })
        .collect();

    let latency = finishes.iter().cloned().fold(0.0, f64::max);
    let (bottleneck_layer, steady) = (0..n)
        .map(|i| (i, df.program(i).blocks as f64 * periods[i]))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, latency));

    let power = arch.power_breakdown().total();
    let macs = model.stats().total_macs as f64;
    let throughput_ops = if steady > 0.0 {
        2.0 * macs / steady
    } else {
        0.0
    };

    // Estimated busy fractions: each class's occupancy per block over the
    // layer's period, weighted by the layer's share of the makespan.
    let span = latency.max(1e-30);
    let n_groups = arch.macro_groups().len().max(1) as f64;
    let mut utilization = Utilization::default();
    for (i, s) in stages.iter().enumerate() {
        let blocks = df.program(i).blocks as f64;
        utilization.crossbar += blocks * s.bits as f64 * s.mvm_bit / (n as f64 * span);
        utilization.adc += blocks * s.bits as f64 * s.adc_bit / (n_groups * span);
        utilization.shift_add += blocks * s.bits as f64 * s.sa_bit / (n as f64 * span);
        utilization.post += blocks * (s.post + s.merge) / (n as f64 * span);
    }

    Ok(SimReport {
        latency: Seconds(latency),
        steady_period: Seconds(steady),
        throughput_ops,
        power,
        energy_per_image: Joules(power.value() * latency),
        bottleneck_layer,
        utilization,
        per_layer,
    })
}

/// Computes pipeline start/finish per layer: a layer starts once each
/// producer has emitted the blocks its first block needs, and finishes after
/// all its blocks plus the serial latency of the last one.
fn schedule(df: &Dataflow, stages: &[LayerStages], periods: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = stages.len();
    let mut starts = vec![0.0f64; n];
    let mut finishes = vec![0.0f64; n];
    for i in 0..n {
        let prog = df.program(i);
        let mut start: f64 = 0.0;
        for &p in &prog.producers {
            let fill = df.fill_blocks(i, p) as f64;
            let t = starts[p] + fill * periods[p] + stages[p].block_latency();
            start = start.max(t);
        }
        starts[i] = start;
        finishes[i] = start + prog.blocks as f64 * periods[i] + stages[i].block_latency();
    }
    (starts, finishes)
}

fn overlap_len(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Convenience: the power-efficiency objective the DSE maximizes
/// (TOPS/W under the realized power), or 0 when infeasible.
pub fn efficiency_or_zero(model: &Model, df: &Dataflow, arch: &Architecture) -> f64 {
    match evaluate_analytic(model, df, arch) {
        Ok(r) => r.efficiency_tops_per_watt(),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{
        AdcConfig, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams, LayerHardware,
        MacroMode, Watts,
    };
    use pimsyn_model::{ModelBuilder, TensorShape};

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        b.conv("c2", Some(r1), 8, 3, 1, 1);
        b.build().unwrap()
    }

    fn setup(dup: [usize; 2], adcs: usize) -> (Model, Dataflow, Architecture) {
        let model = tiny_model();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(4).unwrap();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let hw = HardwareParams::date24();
        let layers = (0..2)
            .map(|i| LayerHardware {
                layer: i,
                name: format!("c{}", i + 1),
                wt_dup: dup[i],
                crossbar_set: df.program(i).crossbar_set,
                macros: 1,
                shares_macros_with: None,
                adc: AdcConfig::new(8, &hw),
                components: ComponentCounts {
                    adc: adcs,
                    shift_add: 4,
                    pool: 1,
                    activation: 1,
                    eltwise: 1,
                },
            })
            .collect();
        let arch = Architecture {
            model_name: "t".into(),
            crossbar: xb,
            dac,
            ratio_rram: 0.3,
            power_budget: Watts(1.0),
            macro_mode: MacroMode::Specialized,
            layers,
            hw,
        };
        (model, df, arch)
    }

    #[test]
    fn basic_report_sanity() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        assert!(r.latency.value() > 0.0);
        assert!(r.steady_period.value() > 0.0);
        assert!(r.latency >= r.steady_period);
        assert!(r.throughput_ops > 0.0);
        assert!(r.efficiency_tops_per_watt() > 0.0);
        assert_eq!(r.per_layer.len(), 2);
    }

    #[test]
    fn duplication_improves_throughput() {
        let (model, df1, arch1) = setup([1, 1], 4);
        let (_, df4, arch4) = setup([4, 4], 4);
        let r1 = evaluate_analytic(&model, &df1, &arch1).unwrap();
        let r4 = evaluate_analytic(&model, &df4, &arch4).unwrap();
        assert!(
            r4.throughput_ops > r1.throughput_ops,
            "dup 4 {} !> dup 1 {}",
            r4.throughput_ops,
            r1.throughput_ops
        );
    }

    #[test]
    fn consumer_starts_after_producer_fill() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        assert!(r.per_layer[1].start > r.per_layer[0].start);
        assert!(
            r.per_layer[1].start < r.per_layer[0].finish,
            "fine-grained pipeline overlap"
        );
    }

    #[test]
    fn sharing_overlapping_layers_increases_latency() {
        let (model, df, solo) = setup([2, 2], 1);
        let base = evaluate_analytic(&model, &df, &solo).unwrap();
        let mut shared = solo.clone();
        shared.layers[1].shares_macros_with = Some(0);
        let r = evaluate_analytic(&model, &df, &shared).unwrap();
        // These two layers overlap heavily, so sharing one ADC bank between
        // them must not make things faster; transfer savings may offset some
        // of the penalty but the ADC-bound steady period cannot shrink.
        let base_adc_busy = base.per_layer[0].period.value();
        let shared_adc_busy = r.per_layer[0].period.value();
        assert!(shared_adc_busy >= base_adc_busy * 0.999);
    }

    #[test]
    fn efficiency_or_zero_on_broken_arch() {
        let (model, df, mut arch) = setup([2, 2], 2);
        arch.layers[0].components.adc = 0;
        assert_eq!(efficiency_or_zero(&model, &df, &arch), 0.0);
    }

    #[test]
    fn energy_equals_power_times_latency() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        let expect = r.power.value() * r.latency.value();
        assert!((r.energy_per_image.value() - expect).abs() < 1e-15);
    }
}
