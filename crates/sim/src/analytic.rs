//! Fast analytical performance model.
//!
//! The DSE flow (Alg. 1) evaluates thousands of candidate architectures; the
//! paper estimates performance from "the depth of the IR-based DAG and the
//! IRs' latencies" (Sec. IV-B). This model does exactly that in closed form:
//! each layer issues computation blocks at the period of its slowest stage
//! (Eq. (5)'s `min max` objective), layers start when their producers have
//! filled the pipeline far enough (Fig. 4), and inter-layer ADC sharing
//! inflates periods when the sharing layers' active windows overlap
//! (Fig. 5a). The cycle-accurate engine ([`crate::simulate`]) refines these
//! numbers for final reporting.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use pimsyn_arch::{Architecture, Joules, MacroGroup, Seconds, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;

use crate::error::SimError;
use crate::metrics::{LayerPerf, SimReport, StageKind, Utilization};
use crate::stages::{
    assemble_stages, compute_layer_base, compute_layer_dynamic, compute_stages, LayerBaseCosts,
    LayerStages,
};

/// Hit/miss counters of a [`LayerCostCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCacheStats {
    /// Per-layer base-cost lookups served from the cache.
    pub hits: usize,
    /// Per-layer base costs computed from scratch.
    pub misses: usize,
}

/// Memo key for one layer's NoC-independent base costs: the dataflow
/// fingerprint plus every layer-local hardware input of
/// [`compute_layer_base`].
///
/// Public (with public fields) so evaluation layers can serialize cache
/// entries — see [`LayerCostCache::entries`] / [`LayerCostCache::preload`];
/// the fields are opaque cache-key material, not a stable API for deriving
/// hardware meaning.
#[derive(Debug, Hash, PartialEq, Eq, Clone)]
pub struct LayerCostKey {
    /// Dataflow + hardware-constant fingerprint (see
    /// [`LayerCostCache::stages`]).
    pub fingerprint: u64,
    /// Layer index within the dataflow.
    pub layer: usize,
    /// Macro count assigned to the layer.
    pub macros: usize,
    /// Effective ADC units serving the layer.
    pub effective_adcs: usize,
    /// Bit pattern of the layer ADC's sample rate.
    pub adc_rate_bits: u64,
    /// Shift-and-add units.
    pub shift_add: usize,
    /// Pooling units.
    pub pool: usize,
    /// Activation units.
    pub activation: usize,
    /// Elementwise-add units.
    pub eltwise: usize,
}

struct LayerCostState {
    map: HashMap<LayerCostKey, LayerBaseCosts>,
    stats: LayerCacheStats,
}

/// Per-layer incremental cost memo for [`evaluate_analytic_cached`].
///
/// The analytic model decomposes into per-layer stage occupancies that are
/// recombined by the pipeline schedule. The expensive half of each layer's
/// occupancies depends only on that layer's hardware assignment (macro
/// count, ADC bank, component counts) — so a candidate that changes one
/// layer's allocation only recomputes that layer's contribution; every other
/// layer's base costs come from this cache. The NoC-coupled `merge` /
/// `transfer` terms and the schedule itself are recomputed per candidate,
/// keeping cached evaluations bit-identical to uncached ones.
///
/// The cache is `Sync` (interior mutex) so batch evaluators can share it
/// across worker threads. Entries are keyed by a dataflow + hardware-params
/// fingerprint, so one cache serves many dataflows of one synthesis run; do
/// not reuse a cache across *models* (the intended scope is one model per
/// cache). The fingerprint is a 64-bit hash of the inputs, not the inputs
/// themselves: two distinct dataflows colliding would silently reuse wrong
/// base costs. At ~10^4 dataflows per run the collision probability is
/// ~10^-12 — accepted and documented rather than paid for with per-entry
/// input storage.
pub struct LayerCostCache {
    inner: Mutex<LayerCostState>,
    capacity: usize,
}

impl std::fmt::Debug for LayerCostCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("LayerCostCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl Default for LayerCostCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LayerCostCache {
    /// Default entry bound: generous for one synthesis run while keeping the
    /// worst case bounded (entries are a handful of `f64`s each).
    pub const DEFAULT_CAPACITY: usize = 1 << 17;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` entries; once full, further
    /// base costs are computed without being stored.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LayerCostState {
                map: HashMap::new(),
                stats: LayerCacheStats::default(),
            }),
            capacity,
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> LayerCacheStats {
        self.inner.lock().expect("layer-cost cache").stats
    }

    /// Snapshot of every resident entry, for cross-run persistence.
    pub fn entries(&self) -> Vec<(LayerCostKey, LayerBaseCosts)> {
        let inner = self.inner.lock().expect("layer-cost cache");
        inner.map.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Seeds the cache with previously exported entries (up to the capacity
    /// bound), returning how many were inserted. Preloads are not counted as
    /// hits or misses — the stats keep describing this run's lookups only.
    pub fn preload(
        &self,
        entries: impl IntoIterator<Item = (LayerCostKey, LayerBaseCosts)>,
    ) -> usize {
        let mut inner = self.inner.lock().expect("layer-cost cache");
        let mut inserted = 0;
        for (key, base) in entries {
            if inner.map.len() >= self.capacity {
                break;
            }
            inner.map.insert(key, base);
            inserted += 1;
        }
        inserted
    }

    /// Fingerprint covering every dataflow-side and hardware-constant input
    /// of [`compute_layer_base`]; two (dataflow, hardware) pairs with equal
    /// fingerprints produce identical base costs for identical layer
    /// hardware.
    fn fingerprint(df: &Dataflow, arch: &Architecture) -> u64 {
        let mut h = DefaultHasher::new();
        df.crossbar().hash(&mut h);
        df.dac().bits().hash(&mut h);
        df.activation_bits().hash(&mut h);
        for p in df.programs() {
            p.wt_dup.hash(&mut h);
            p.bits.hash(&mut h);
            p.load_elems.hash(&mut h);
            p.store_elems.hash(&mut h);
            p.adc_samples.hash(&mut h);
            p.shift_add_ops.hash(&mut h);
            p.act_ops.hash(&mut h);
            p.pool_ops.hash(&mut h);
            p.eltwise_ops.hash(&mut h);
        }
        let hw = &arch.hw;
        hw.clock.value().to_bits().hash(&mut h);
        hw.mvm_latency.value().to_bits().hash(&mut h);
        let spm = pimsyn_arch::ScratchpadSpec::from_params(hw);
        spm.bandwidth().to_bits().hash(&mut h);
        spm.read_latency(0).value().to_bits().hash(&mut h);
        h.finish()
    }

    /// Every layer's stage occupancies, base parts served from the memo.
    /// Bit-identical to [`compute_stages`].
    ///
    /// # Errors
    ///
    /// Same as [`compute_stages`].
    pub fn stages(&self, df: &Dataflow, arch: &Architecture) -> Result<Vec<LayerStages>, SimError> {
        if arch.layers.len() != df.programs().len() {
            return Err(SimError::LayerCountMismatch {
                arch: arch.layers.len(),
                dataflow: df.programs().len(),
            });
        }
        let fingerprint = Self::fingerprint(df, arch);
        let noc = arch.noc();
        let mut out = Vec::with_capacity(df.programs().len());
        for layer in 0..df.programs().len() {
            let lh = &arch.layers[layer];
            let key = LayerCostKey {
                fingerprint,
                layer,
                macros: lh.macros,
                effective_adcs: arch.effective_adcs(layer),
                adc_rate_bits: lh.adc.sample_rate(&arch.hw).value().to_bits(),
                shift_add: lh.components.shift_add,
                pool: lh.components.pool,
                activation: lh.components.activation,
                eltwise: lh.components.eltwise,
            };
            let cached = {
                let mut inner = self.inner.lock().expect("layer-cost cache");
                let found = inner.map.get(&key).copied();
                match found {
                    Some(base) => {
                        inner.stats.hits += 1;
                        Some(base)
                    }
                    None => {
                        inner.stats.misses += 1;
                        None
                    }
                }
            };
            let base = match cached {
                Some(base) => base,
                None => {
                    let base = compute_layer_base(df, arch, layer)?;
                    let mut inner = self.inner.lock().expect("layer-cost cache");
                    if inner.map.len() < self.capacity {
                        inner.map.insert(key, base);
                    }
                    base
                }
            };
            let (merge, transfer) = compute_layer_dynamic(df, arch, layer, &noc);
            out.push(assemble_stages(base, merge, transfer));
        }
        Ok(out)
    }
}

/// Evaluates `arch` running `df` (compiled from `model`) analytically.
///
/// # Errors
///
/// Propagates [`SimError`] from stage computation (mismatched layer counts,
/// missing components).
///
/// # Example
///
/// See [`crate`]-level docs; the quickstart example builds an architecture
/// and calls this directly.
pub fn evaluate_analytic(
    model: &Model,
    df: &Dataflow,
    arch: &Architecture,
) -> Result<SimReport, SimError> {
    let stages = compute_stages(df, arch)?;
    evaluate_from_stages(model, df, arch, &stages)
}

/// [`evaluate_analytic`] with per-layer base costs memoized in `cache`:
/// candidates that differ from previously evaluated ones in only a few
/// layers' hardware recompute only those layers' base occupancies. Results
/// are bit-identical to [`evaluate_analytic`].
///
/// # Errors
///
/// Same as [`evaluate_analytic`].
pub fn evaluate_analytic_cached(
    model: &Model,
    df: &Dataflow,
    arch: &Architecture,
    cache: &LayerCostCache,
) -> Result<SimReport, SimError> {
    let stages = cache.stages(df, arch)?;
    evaluate_from_stages(model, df, arch, &stages)
}

/// The pipeline schedule of one candidate: per-layer issue periods (after
/// ADC-sharing contention), the limiting stage of each, and the start/finish
/// instants of every layer's active window.
///
/// Produced by [`solve_pipeline`]; consumed by the full report assembly in
/// [`evaluate_analytic`] and by delta evaluators that reassemble an
/// [`AnalyticSummary`] from retained per-layer breakdowns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineSolution {
    /// Block issue interval per layer, seconds.
    pub periods: Vec<f64>,
    /// The stage limiting each layer's period.
    pub bottlenecks: Vec<StageKind>,
    /// Pipeline start instant per layer, seconds.
    pub starts: Vec<f64>,
    /// Pipeline finish instant per layer, seconds.
    pub finishes: Vec<f64>,
}

/// The handful of whole-accelerator numbers the DSE objectives consume,
/// without the per-layer diagnostics a full [`SimReport`] carries. Delta
/// evaluators reassemble this from a parent candidate's retained per-layer
/// breakdown; the fields and derived metrics are float-identical to the
/// corresponding [`SimReport`] fields by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticSummary {
    /// End-to-end latency of one inference.
    pub latency: Seconds,
    /// Steady-state pipeline period (bottleneck layer's busy time).
    pub steady_period: Seconds,
    /// Index of the throughput-limiting layer.
    pub bottleneck_layer: usize,
    /// Sustained operations per second (2 x MACs / steady period).
    pub throughput_ops: f64,
    /// Realized total power.
    pub power: Watts,
    /// Energy per inference.
    pub energy_per_image: Joules,
}

impl AnalyticSummary {
    /// Effective power efficiency in TOPS/W — same expression as
    /// [`SimReport::efficiency_tops_per_watt`].
    pub fn efficiency_tops_per_watt(&self) -> f64 {
        crate::metrics::efficiency_tops_per_watt(self.throughput_ops, self.power)
    }

    /// Energy-delay product in ms x mJ — same expression as
    /// [`SimReport::edp_ms_mj`].
    pub fn edp_ms_mj(&self) -> f64 {
        crate::metrics::edp_ms_mj(self.latency, self.energy_per_image)
    }
}

/// Solves the pipeline schedule for one candidate: first-pass periods from
/// each layer's slowest stage, producer-fill start times, then the
/// ADC-sharing contention pass over `groups` (re-scheduling when any period
/// stretched). `groups` must be the candidate's macro groups in
/// `Architecture::macro_groups` order.
pub fn solve_pipeline(
    df: &Dataflow,
    stages: &[LayerStages],
    groups: &[MacroGroup],
) -> PipelineSolution {
    let mut solution = PipelineSolution {
        periods: Vec::new(),
        bottlenecks: Vec::new(),
        starts: Vec::new(),
        finishes: Vec::new(),
    };
    solve_pipeline_into(df, stages, groups, &mut solution);
    solution
}

/// [`solve_pipeline`] writing into a caller-owned solution so hot loops
/// (delta rescoring) can reuse its buffers across candidates. Previous
/// contents are discarded; the arithmetic is exactly [`solve_pipeline`]'s,
/// so both entry points produce bit-identical solutions.
pub fn solve_pipeline_into(
    df: &Dataflow,
    stages: &[LayerStages],
    groups: &[MacroGroup],
    out: &mut PipelineSolution,
) {
    // First pass: periods, starts and finishes without sharing contention.
    out.periods.clear();
    out.bottlenecks.clear();
    for s in stages {
        let (p, k) = s.period();
        out.periods.push(p);
        out.bottlenecks.push(k);
    }
    schedule_into(df, stages, &out.periods, &mut out.starts, &mut out.finishes);

    // Second pass: inter-layer ADC reuse. Layers sharing a macro group share
    // its physical ADC bank: when their active windows overlap, the bank
    // serves both, stretching whoever needs it (Fig. 5a shows the distance
    // dependence of this penalty). Candidates without sharing skip the pass
    // outright (the loop below would leave `adjusted` untouched).
    if !groups.iter().any(|g| g.members.len() >= 2) {
        return;
    }
    let periods = &out.periods;
    let (starts, finishes) = (&out.starts, &out.finishes);
    let mut adjusted = periods.clone();
    for group in groups {
        if group.members.len() < 2 {
            continue;
        }
        for &m in &group.members {
            let demand_m = stages[m].bits as f64 * stages[m].adc_bit;
            if demand_m == 0.0 {
                continue;
            }
            // Fraction of the ADC bank consumed by overlapping partners
            // during layer m's window.
            let dur_m = (finishes[m] - starts[m]).max(1e-30);
            let mut partner_load = 0.0;
            for &o in &group.members {
                if o == m {
                    continue;
                }
                let overlap = overlap_len(starts[m], finishes[m], starts[o], finishes[o]);
                if overlap <= 0.0 {
                    continue;
                }
                let demand_o = stages[o].bits as f64 * stages[o].adc_bit;
                // Partner's ADC utilization during the overlap.
                partner_load += (demand_o / periods[o].max(1e-30)) * (overlap / dur_m);
            }
            if partner_load > 0.0 {
                // The ADC stage of layer m slows by the contended share.
                let own_util = demand_m / periods[m].max(1e-30);
                let total = own_util + partner_load;
                if total > 1.0 {
                    let stretched_adc = demand_m * total / own_util.max(1e-30);
                    adjusted[m] = adjusted[m].max(stretched_adc);
                    if stretched_adc >= adjusted[m] {
                        out.bottlenecks[m] = StageKind::Adc;
                    }
                }
            }
        }
    }
    if adjusted != out.periods {
        schedule_into(df, stages, &adjusted, &mut out.starts, &mut out.finishes);
        out.periods = adjusted;
    }
}

/// Reduces a solved pipeline to the whole-accelerator summary. `power` is
/// the candidate's realized total power and `total_macs` the model's MAC
/// count; both are inputs so delta evaluators can reuse memoized values.
/// Float-identical to the corresponding [`SimReport`] fields.
pub fn summarize_pipeline(
    df: &Dataflow,
    solution: &PipelineSolution,
    power: Watts,
    total_macs: u64,
) -> AnalyticSummary {
    let n = solution.periods.len();
    let latency = solution.finishes.iter().cloned().fold(0.0, f64::max);
    let (bottleneck_layer, steady) = (0..n)
        .map(|i| (i, df.program(i).blocks as f64 * solution.periods[i]))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, latency));
    let macs = total_macs as f64;
    let throughput_ops = if steady > 0.0 {
        2.0 * macs / steady
    } else {
        0.0
    };
    AnalyticSummary {
        latency: Seconds(latency),
        steady_period: Seconds(steady),
        bottleneck_layer,
        throughput_ops,
        power,
        energy_per_image: Joules(power.value() * latency),
    }
}

/// The schedule / contention / report half of the analytic model, shared by
/// the cached and uncached entry points so both produce identical floats.
fn evaluate_from_stages(
    model: &Model,
    df: &Dataflow,
    arch: &Architecture,
    stages: &[LayerStages],
) -> Result<SimReport, SimError> {
    let n = stages.len();
    let groups = arch.macro_groups();
    let solution = solve_pipeline(df, stages, &groups);
    let power = arch.power_breakdown().total();
    let summary = summarize_pipeline(df, &solution, power, model.stats().total_macs);

    let per_layer: Vec<LayerPerf> = (0..n)
        .map(|i| LayerPerf {
            layer: i,
            period: Seconds(solution.periods[i]),
            busy: Seconds(df.program(i).blocks as f64 * solution.periods[i]),
            start: Seconds(solution.starts[i]),
            finish: Seconds(solution.finishes[i]),
            bottleneck: solution.bottlenecks[i],
        })
        .collect();

    // Estimated busy fractions: each class's occupancy per block over the
    // layer's period, weighted by the layer's share of the makespan.
    let span = summary.latency.value().max(1e-30);
    let n_groups = groups.len().max(1) as f64;
    let mut utilization = Utilization::default();
    for (i, s) in stages.iter().enumerate() {
        let blocks = df.program(i).blocks as f64;
        utilization.crossbar += blocks * s.bits as f64 * s.mvm_bit / (n as f64 * span);
        utilization.adc += blocks * s.bits as f64 * s.adc_bit / (n_groups * span);
        utilization.shift_add += blocks * s.bits as f64 * s.sa_bit / (n as f64 * span);
        utilization.post += blocks * (s.post + s.merge) / (n as f64 * span);
    }

    Ok(SimReport {
        latency: summary.latency,
        steady_period: summary.steady_period,
        throughput_ops: summary.throughput_ops,
        power: summary.power,
        energy_per_image: summary.energy_per_image,
        bottleneck_layer: summary.bottleneck_layer,
        utilization,
        per_layer,
    })
}

/// Computes pipeline start/finish per layer: a layer starts once each
/// producer has emitted the blocks its first block needs, and finishes after
/// all its blocks plus the serial latency of the last one.
fn schedule_into(
    df: &Dataflow,
    stages: &[LayerStages],
    periods: &[f64],
    starts: &mut Vec<f64>,
    finishes: &mut Vec<f64>,
) {
    let n = stages.len();
    starts.clear();
    starts.resize(n, 0.0);
    finishes.clear();
    finishes.resize(n, 0.0);
    for i in 0..n {
        let prog = df.program(i);
        let mut start: f64 = 0.0;
        for &p in &prog.producers {
            let fill = df.fill_blocks(i, p) as f64;
            let t = starts[p] + fill * periods[p] + stages[p].block_latency();
            start = start.max(t);
        }
        starts[i] = start;
        finishes[i] = start + prog.blocks as f64 * periods[i] + stages[i].block_latency();
    }
}

fn overlap_len(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Convenience: the power-efficiency objective the DSE maximizes
/// (TOPS/W under the realized power), or 0 when infeasible.
pub fn efficiency_or_zero(model: &Model, df: &Dataflow, arch: &Architecture) -> f64 {
    match evaluate_analytic(model, df, arch) {
        Ok(r) => r.efficiency_tops_per_watt(),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{
        AdcConfig, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams, LayerHardware,
        MacroMode, Watts,
    };
    use pimsyn_model::{ModelBuilder, TensorShape};

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        b.conv("c2", Some(r1), 8, 3, 1, 1);
        b.build().unwrap()
    }

    fn setup(dup: [usize; 2], adcs: usize) -> (Model, Dataflow, Architecture) {
        let model = tiny_model();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(4).unwrap();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let hw = HardwareParams::date24();
        let layers = (0..2)
            .map(|i| LayerHardware {
                layer: i,
                name: format!("c{}", i + 1),
                wt_dup: dup[i],
                crossbar_set: df.program(i).crossbar_set,
                macros: 1,
                shares_macros_with: None,
                adc: AdcConfig::new(8, &hw),
                components: ComponentCounts {
                    adc: adcs,
                    shift_add: 4,
                    pool: 1,
                    activation: 1,
                    eltwise: 1,
                },
            })
            .collect();
        let arch = Architecture {
            model_name: "t".into(),
            crossbar: xb,
            dac,
            ratio_rram: 0.3,
            power_budget: Watts(1.0),
            macro_mode: MacroMode::Specialized,
            layers,
            hw,
        };
        (model, df, arch)
    }

    #[test]
    fn basic_report_sanity() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        assert!(r.latency.value() > 0.0);
        assert!(r.steady_period.value() > 0.0);
        assert!(r.latency >= r.steady_period);
        assert!(r.throughput_ops > 0.0);
        assert!(r.efficiency_tops_per_watt() > 0.0);
        assert_eq!(r.per_layer.len(), 2);
    }

    #[test]
    fn duplication_improves_throughput() {
        let (model, df1, arch1) = setup([1, 1], 4);
        let (_, df4, arch4) = setup([4, 4], 4);
        let r1 = evaluate_analytic(&model, &df1, &arch1).unwrap();
        let r4 = evaluate_analytic(&model, &df4, &arch4).unwrap();
        assert!(
            r4.throughput_ops > r1.throughput_ops,
            "dup 4 {} !> dup 1 {}",
            r4.throughput_ops,
            r1.throughput_ops
        );
    }

    #[test]
    fn consumer_starts_after_producer_fill() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        assert!(r.per_layer[1].start > r.per_layer[0].start);
        assert!(
            r.per_layer[1].start < r.per_layer[0].finish,
            "fine-grained pipeline overlap"
        );
    }

    #[test]
    fn sharing_overlapping_layers_increases_latency() {
        let (model, df, solo) = setup([2, 2], 1);
        let base = evaluate_analytic(&model, &df, &solo).unwrap();
        let mut shared = solo.clone();
        shared.layers[1].shares_macros_with = Some(0);
        let r = evaluate_analytic(&model, &df, &shared).unwrap();
        // These two layers overlap heavily, so sharing one ADC bank between
        // them must not make things faster; transfer savings may offset some
        // of the penalty but the ADC-bound steady period cannot shrink.
        let base_adc_busy = base.per_layer[0].period.value();
        let shared_adc_busy = r.per_layer[0].period.value();
        assert!(shared_adc_busy >= base_adc_busy * 0.999);
    }

    #[test]
    fn efficiency_or_zero_on_broken_arch() {
        let (model, df, mut arch) = setup([2, 2], 2);
        arch.layers[0].components.adc = 0;
        assert_eq!(efficiency_or_zero(&model, &df, &arch), 0.0);
    }

    #[test]
    fn cached_evaluation_is_bit_identical() {
        let (model, df, arch) = setup([2, 2], 2);
        let cache = LayerCostCache::new();
        let plain = evaluate_analytic(&model, &df, &arch).unwrap();
        let cold = evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        assert_eq!(plain, cold);
        // The warm pass serves both layers from the memo and still matches
        // the uncached evaluation exactly.
        let warm = evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        assert_eq!(plain, warm);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn layer_cache_recomputes_only_the_changed_layer() {
        let (model, df, arch) = setup([2, 2], 2);
        let cache = LayerCostCache::new();
        evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        let mut changed = arch.clone();
        changed.layers[1].components.shift_add = 16;
        let plain = evaluate_analytic(&model, &df, &changed).unwrap();
        let cached = evaluate_analytic_cached(&model, &df, &changed, &cache).unwrap();
        assert_eq!(plain, cached);
        let stats = cache.stats();
        // Layer 0 was reused; only layer 1's base costs were recomputed.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn layer_cache_capacity_zero_still_evaluates_correctly() {
        let (model, df, arch) = setup([2, 2], 2);
        let cache = LayerCostCache::with_capacity(0);
        let a = evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        let b = evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn entries_preload_round_trip_warm_starts() {
        let (model, df, arch) = setup([2, 2], 2);
        let cache = LayerCostCache::new();
        let expect = evaluate_analytic_cached(&model, &df, &arch, &cache).unwrap();
        let exported = cache.entries();
        assert_eq!(exported.len(), 2);
        let warm = LayerCostCache::new();
        assert_eq!(warm.preload(exported), 2);
        // Preloads are invisible in the stats; the first evaluation on the
        // warmed cache is all hits and still bit-identical.
        assert_eq!(warm.stats(), LayerCacheStats::default());
        let r = evaluate_analytic_cached(&model, &df, &arch, &warm).unwrap();
        assert_eq!(r, expect);
        assert_eq!(warm.stats().hits, 2);
        assert_eq!(warm.stats().misses, 0);
    }

    #[test]
    fn energy_equals_power_times_latency() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = evaluate_analytic(&model, &df, &arch).unwrap();
        let expect = r.power.value() * r.latency.value();
        assert!((r.energy_per_image.value() - expect).abs() < 1e-15);
    }
}
