//! Cycle-accurate IR-based behavior-level simulator (the paper's evaluation
//! vehicle, Sec. V).
//!
//! The engine executes each layer's computation blocks through the full IR
//! stage chain (`load -> MVM/ADC/shift-add bit loop -> post-ops -> merge ->
//! store -> transfer`) as a discrete-event simulation:
//!
//! - every stage serializes on its physical resource (scratchpad port,
//!   crossbar arrays, ADC bank, ALU sets, NoC egress link);
//! - ADC banks are owned by *macro groups*, so layers sharing macros contend
//!   for the same converters — the mechanism behind Fig. 5;
//! - a block starts only when its producers have made enough output visible
//!   (fine-grained inter-layer pipelining, Fig. 4), where visibility
//!   includes the NoC transfer when producer and consumer live in different
//!   macro groups;
//! - multiple images can be streamed back-to-back to measure steady-state
//!   throughput rather than single-shot latency.
//!
//! Events are processed in approximate global time order (a binary heap on
//! each layer's next feasible start), so cross-layer resource contention is
//! resolved the way concurrent hardware would.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pimsyn_arch::{Architecture, Joules, Seconds};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;

use crate::error::SimError;
use crate::metrics::{LayerPerf, SimReport, Utilization};
use crate::stages::{compute_stages, LayerStages};

/// Maximum blocks a layer advances per scheduler pop; amortizes heap churn
/// while keeping cross-layer interleaving close to global time order.
const BATCH: usize = 16;

/// A totally-ordered f64 key for the scheduler heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
struct LayerRt {
    /// Per-image blocks.
    blocks: usize,
    /// Total blocks across all simulated images.
    total_blocks: usize,
    next_block: usize,
    /// Time each finished block's output becomes visible to consumers.
    visible: Vec<f64>,
    /// Resource busy-until times.
    load_port: f64,
    xbar: f64,
    sa: f64,
    post: f64,
    store_port: f64,
    out_link: f64,
    /// Macro-group index owning this layer's ADC bank.
    adc_group: usize,
    /// Diagnostics.
    first_start: f64,
    last_finish: f64,
    busy_xbar: f64,
    busy_adc: f64,
    busy_sa: f64,
    busy_post: f64,
}

/// Simulates `images` back-to-back inferences of `model` on `arch`.
///
/// Returns a [`SimReport`] whose `latency` is the first image's end-to-end
/// time and whose `steady_period` is the marginal per-image time when
/// `images > 1` (otherwise the single-image latency).
///
/// # Errors
///
/// - [`SimError::ZeroImages`] if `images == 0`.
/// - Stage-model errors ([`SimError::MissingComponent`],
///   [`SimError::LayerCountMismatch`]).
pub fn simulate(
    model: &Model,
    df: &Dataflow,
    arch: &Architecture,
    images: usize,
) -> Result<SimReport, SimError> {
    if images == 0 {
        return Err(SimError::ZeroImages);
    }
    let stages = compute_stages(df, arch)?;
    let n = stages.len();

    // Map each layer to its macro group's shared ADC bank.
    let groups = arch.macro_groups();
    let mut group_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &m in &g.members {
            group_of[m] = gi;
        }
    }
    let mut adc_free = vec![0.0f64; groups.len()];

    let mut layers: Vec<LayerRt> = (0..n)
        .map(|i| {
            let blocks = df.program(i).blocks;
            LayerRt {
                blocks,
                total_blocks: blocks * images,
                next_block: 0,
                visible: vec![0.0; blocks * images],
                load_port: 0.0,
                xbar: 0.0,
                sa: 0.0,
                post: 0.0,
                store_port: 0.0,
                out_link: 0.0,
                adc_group: group_of[i],
                first_start: f64::INFINITY,
                last_finish: 0.0,
                busy_xbar: 0.0,
                busy_adc: 0.0,
                busy_sa: 0.0,
                busy_post: 0.0,
            }
        })
        .collect();

    // waiters[p] = layers blocked until producer p completes more blocks.
    let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut queue: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    let mut queued = vec![false; n];
    for (i, q) in queued.iter_mut().enumerate() {
        queue.push(Reverse((Key(0.0), i)));
        *q = true;
    }

    while let Some(Reverse((_, l))) = queue.pop() {
        queued[l] = false;
        let mut advanced = 0usize;
        loop {
            if layers[l].next_block >= layers[l].total_blocks || advanced >= BATCH {
                break;
            }
            match advance_one(l, df, &stages, &mut layers, &mut adc_free) {
                Advance::Done => advanced += 1,
                Advance::Blocked(producer) => {
                    if !waiters[producer].contains(&l) {
                        waiters[producer].push(l);
                    }
                    break;
                }
            }
        }
        if advanced > 0 {
            // Wake consumers that were waiting on this layer's progress.
            let woken = std::mem::take(&mut waiters[l]);
            for w in woken {
                if !queued[w] {
                    let est = next_estimate(w, &layers);
                    queue.push(Reverse((Key(est), w)));
                    queued[w] = true;
                }
            }
            if layers[l].next_block < layers[l].total_blocks && !queued[l] {
                let est = next_estimate(l, &layers);
                queue.push(Reverse((Key(est), l)));
                queued[l] = true;
            }
        }
    }

    // All layers must have drained (the dependency graph is acyclic and
    // producers always precede consumers, so starvation is impossible).
    debug_assert!(layers.iter().all(|s| s.next_block == s.total_blocks));

    // Per-image completion: the slowest layer's last block of that image.
    let mut completion = vec![0.0f64; images];
    for (i, st) in layers.iter().enumerate() {
        let b = layers[i].blocks;
        debug_assert_eq!(st.blocks, b);
        for (img, c) in completion.iter_mut().enumerate() {
            let idx = (img + 1) * b - 1;
            *c = c.max(st.visible[idx]);
        }
    }
    let latency = completion[0];
    let makespan = completion[images - 1];
    let steady = if images > 1 {
        (completion[images - 1] - completion[0]) / (images - 1) as f64
    } else {
        latency
    };

    // Energy: busy-time of dynamic resources x their power, plus per-macro
    // static infrastructure over the whole run, normalized per image.
    let hw = &arch.hw;
    let breakdown = arch.power_breakdown();
    let mut dynamic = 0.0f64;
    for (i, st) in layers.iter().enumerate() {
        let lh = &arch.layers[i];
        let xbar_power = arch.crossbar.power(hw).value() * lh.crossbars() as f64
            + arch.dac.power(hw).value() * (lh.crossbars() * arch.crossbar.size()) as f64;
        let adc_power = lh.adc.power(hw).value() * arch.effective_adcs(i) as f64;
        let sa_power = hw.shift_add_power.value() * lh.components.shift_add as f64;
        let post_power = hw.pool_power.value() * lh.components.pool as f64
            + hw.activation_power.value() * lh.components.activation as f64
            + hw.eltwise_power.value() * lh.components.eltwise as f64;
        dynamic += st.busy_xbar * xbar_power
            + st.busy_adc * adc_power
            + st.busy_sa * sa_power
            + st.busy_post * post_power;
    }
    let static_power = breakdown.scratchpad + breakdown.noc + breakdown.register;
    let energy_total = dynamic + static_power.value() * makespan;
    let energy_per_image = energy_total / images as f64;

    let per_layer: Vec<LayerPerf> = (0..n)
        .map(|i| {
            let st = &layers[i];
            let (p, kind) = stages[i].period();
            LayerPerf {
                layer: i,
                period: Seconds(p),
                busy: Seconds(st.busy_xbar.max(st.busy_adc)),
                start: Seconds(if st.first_start.is_finite() {
                    st.first_start
                } else {
                    0.0
                }),
                finish: Seconds(st.last_finish),
                bottleneck: kind,
            }
        })
        .collect();

    let bottleneck_layer = (0..n)
        .max_by(|&a, &b| {
            let ba = df.program(a).blocks as f64 * per_layer[a].period.value();
            let bb = df.program(b).blocks as f64 * per_layer[b].period.value();
            ba.total_cmp(&bb)
        })
        .unwrap_or(0);

    let macs = model.stats().total_macs as f64;
    let throughput_ops = if steady > 0.0 {
        2.0 * macs / steady
    } else {
        0.0
    };

    // Busy fractions: average each class's per-layer busy time over the
    // makespan (layers own their crossbars/ALUs; ADC banks are per group).
    let span = makespan.max(1e-30);
    let nl = layers.len().max(1) as f64;
    let utilization = Utilization {
        crossbar: layers.iter().map(|s| s.busy_xbar).sum::<f64>() / (nl * span),
        adc: layers.iter().map(|s| s.busy_adc).sum::<f64>() / (groups.len().max(1) as f64 * span),
        shift_add: layers.iter().map(|s| s.busy_sa).sum::<f64>() / (nl * span),
        post: layers.iter().map(|s| s.busy_post).sum::<f64>() / (nl * span),
    };

    Ok(SimReport {
        latency: Seconds(latency),
        steady_period: Seconds(steady),
        throughput_ops,
        power: breakdown.total(),
        energy_per_image: Joules(energy_per_image),
        bottleneck_layer,
        utilization,
        per_layer,
    })
}

enum Advance {
    Done,
    Blocked(usize),
}

fn next_estimate(l: usize, layers: &[LayerRt]) -> f64 {
    layers[l].load_port
}

fn advance_one(
    l: usize,
    df: &Dataflow,
    stages: &[LayerStages],
    layers: &mut [LayerRt],
    adc_free: &mut [f64],
) -> Advance {
    let b = layers[l].next_block;
    let blocks = layers[l].blocks;
    let img = b / blocks;
    let local = b % blocks;
    let s = stages[l];

    // Fine-grained inter-layer dependency within the same image.
    let mut dep_time = 0.0f64;
    let producers = df.program(l).producers.clone();
    for p in producers {
        let needed_local = df.producer_blocks_needed(l, local, p);
        if needed_local > 0 {
            let needed_global = img * layers[p].blocks + needed_local;
            if layers[p].next_block < needed_global {
                return Advance::Blocked(p);
            }
            dep_time = dep_time.max(layers[p].visible[needed_global - 1]);
        }
    }

    let st = &mut layers[l];
    let t0 = dep_time.max(st.load_port);
    st.first_start = st.first_start.min(t0);
    let load_end = t0 + s.load;
    st.load_port = load_end;

    let bits = s.bits as f64;
    let mvm_start = load_end.max(st.xbar);
    let mvm_end = mvm_start + bits * s.mvm_bit;
    st.xbar = mvm_end;
    st.busy_xbar += bits * s.mvm_bit;

    // The ADC bank belongs to the macro group and may be contended by a
    // sharing partner; it can start once the first bit's analog result is
    // held (S&H), pipelined with the remaining bit iterations.
    let group = st.adc_group;
    let adc_start = (mvm_start + s.mvm_bit).max(adc_free[group]);
    let adc_end = adc_start + bits * s.adc_bit;
    adc_free[group] = adc_end;
    st.busy_adc += bits * s.adc_bit;

    let sa_start = (adc_start + s.adc_bit).max(st.sa);
    let sa_end = sa_start + bits * s.sa_bit;
    st.sa = sa_end;
    st.busy_sa += bits * s.sa_bit;

    let ready = mvm_end.max(adc_end).max(sa_end);
    let post_start = ready.max(st.post);
    let post_end = post_start + s.post + s.merge;
    st.post = post_end;
    st.busy_post += s.post + s.merge;

    let store_start = post_end.max(st.store_port);
    let store_end = store_start + s.store;
    st.store_port = store_end;

    let visible = if s.transfer > 0.0 {
        let x_start = store_end.max(st.out_link);
        let x_end = x_start + s.transfer;
        st.out_link = x_end;
        x_end
    } else {
        store_end
    };

    st.visible[b] = visible;
    st.last_finish = st.last_finish.max(visible);
    st.next_block = b + 1;
    Advance::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::evaluate_analytic;
    use pimsyn_arch::{
        AdcConfig, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams, LayerHardware,
        MacroMode, Watts,
    };
    use pimsyn_model::{ModelBuilder, TensorShape};

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        b.conv("c2", Some(p1), 8, 3, 1, 1);
        b.build().unwrap()
    }

    fn setup(dup: [usize; 2], adcs: usize) -> (Model, Dataflow, Architecture) {
        let model = tiny_model();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(4).unwrap();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let hw = HardwareParams::date24();
        let layers = (0..2)
            .map(|i| LayerHardware {
                layer: i,
                name: format!("c{}", i + 1),
                wt_dup: dup[i],
                crossbar_set: df.program(i).crossbar_set,
                macros: 1,
                shares_macros_with: None,
                adc: AdcConfig::new(8, &hw),
                components: ComponentCounts {
                    adc: adcs,
                    shift_add: 4,
                    pool: 1,
                    activation: 1,
                    eltwise: 1,
                },
            })
            .collect();
        let arch = Architecture {
            model_name: "t".into(),
            crossbar: xb,
            dac,
            ratio_rram: 0.3,
            power_budget: Watts(1.0),
            macro_mode: MacroMode::Specialized,
            layers,
            hw,
        };
        (model, df, arch)
    }

    #[test]
    fn zero_images_rejected() {
        let (model, df, arch) = setup([2, 2], 2);
        assert!(matches!(
            simulate(&model, &df, &arch, 0),
            Err(SimError::ZeroImages)
        ));
    }

    #[test]
    fn single_image_completes() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = simulate(&model, &df, &arch, 1).unwrap();
        assert!(r.latency.value() > 0.0);
        assert_eq!(r.steady_period, r.latency);
        assert!(r.energy_per_image.value() > 0.0);
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let (model, df, arch) = setup([4, 4], 4);
        let r1 = simulate(&model, &df, &arch, 1).unwrap();
        let r4 = simulate(&model, &df, &arch, 4).unwrap();
        // Marginal per-image cost in steady state must be below the full
        // single-image latency (the inter-layer pipeline overlaps images).
        assert!(
            r4.steady_period.value() < r1.latency.value(),
            "steady {} !< latency {}",
            r4.steady_period.value(),
            r1.latency.value()
        );
    }

    #[test]
    fn engine_and_analytic_agree_on_ordering() {
        // Analytic and cycle models must rank configurations the same way:
        // more ADCs -> faster.
        let (model, df, arch2) = setup([2, 2], 1);
        let (_, _, arch8) = setup([2, 2], 8);
        let slow = simulate(&model, &df, &arch2, 1).unwrap();
        let fast = simulate(&model, &df, &arch8, 1).unwrap();
        assert!(fast.latency < slow.latency);
        let a_slow = evaluate_analytic(&model, &df, &arch2).unwrap();
        let a_fast = evaluate_analytic(&model, &df, &arch8).unwrap();
        assert!(a_fast.latency < a_slow.latency);
    }

    #[test]
    fn engine_within_factor_of_analytic() {
        let (model, df, arch) = setup([2, 2], 2);
        let cyc = simulate(&model, &df, &arch, 1).unwrap();
        let ana = evaluate_analytic(&model, &df, &arch).unwrap();
        let ratio = cyc.latency.value() / ana.latency.value();
        assert!(
            (0.3..3.0).contains(&ratio),
            "cycle {} vs analytic {} (ratio {ratio})",
            cyc.latency.value(),
            ana.latency.value()
        );
    }

    #[test]
    fn adc_sharing_contention_observed() {
        let (model, df, mut arch) = setup([2, 2], 1);
        let solo = simulate(&model, &df, &arch, 1).unwrap();
        arch.layers[1].shares_macros_with = Some(0);
        let shared = simulate(&model, &df, &arch, 1).unwrap();
        // One ADC bank now serves two overlapping layers: not faster.
        // (Transfer savings may partially offset, hence the slack factor.)
        assert!(shared.latency.value() > solo.latency.value() * 0.8);
    }

    #[test]
    fn dependency_order_is_respected() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = simulate(&model, &df, &arch, 1).unwrap();
        // Consumer cannot finish before its producer finishes (it needs the
        // producer's last rows for its last rows).
        assert!(r.per_layer[1].finish >= r.per_layer[0].finish);
        assert!(r.per_layer[1].start.value() > 0.0);
    }

    #[test]
    fn utilization_fractions_are_bounded() {
        let (model, df, arch) = setup([2, 2], 2);
        let r = simulate(&model, &df, &arch, 2).unwrap();
        for u in [
            r.utilization.crossbar,
            r.utilization.adc,
            r.utilization.shift_add,
            r.utilization.post,
        ] {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&u),
                "utilization {u} out of range"
            );
        }
        assert!(r.utilization.adc > 0.0, "adc bank must have been busy");
    }

    #[test]
    fn energy_scales_with_images() {
        let (model, df, arch) = setup([2, 2], 2);
        let r1 = simulate(&model, &df, &arch, 1).unwrap();
        let r3 = simulate(&model, &df, &arch, 3).unwrap();
        // Per-image energy in steady state is no larger than single-shot
        // (static power amortizes over overlapped images).
        assert!(r3.energy_per_image.value() <= r1.energy_per_image.value() * 1.05);
    }
}
