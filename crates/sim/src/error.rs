use std::error::Error;
use std::fmt;

/// Errors from performance evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The architecture allocates zero units of a component that the layer's
    /// workload requires, so the pipeline can never drain.
    MissingComponent {
        /// Weight-layer index.
        layer: usize,
        /// Component family name.
        component: &'static str,
    },
    /// Architecture and dataflow disagree on the layer count (they were
    /// built from different models or duplication vectors).
    LayerCountMismatch {
        /// Layers in the architecture.
        arch: usize,
        /// Layers in the dataflow.
        dataflow: usize,
    },
    /// The requested number of pipelined images must be at least one.
    ZeroImages,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingComponent { layer, component } => {
                write!(
                    f,
                    "layer {layer} has workload for `{component}` but zero units allocated"
                )
            }
            SimError::LayerCountMismatch { arch, dataflow } => {
                write!(
                    f,
                    "architecture has {arch} layers but dataflow has {dataflow}"
                )
            }
            SimError::ZeroImages => write!(f, "at least one image must be simulated"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn display_names_component() {
        let e = SimError::MissingComponent {
            layer: 3,
            component: "adc",
        };
        assert!(e.to_string().contains("adc"));
    }
}
