//! Per-layer pipeline-stage occupancy model shared by the analytic evaluator
//! and the cycle-accurate engine.
//!
//! For each layer, every IR class occupies one hardware resource per
//! computation block; the block issue interval ("period") of the layer is
//! the largest per-block occupancy — the `min max` objective of the paper's
//! Eq. (5).

use pimsyn_arch::{AdcConfig, Architecture, HardwareParams, ScratchpadSpec};
use pimsyn_ir::Dataflow;

use crate::error::SimError;
use crate::metrics::StageKind;

/// Bytes of a merged (pre-truncation) partial sum travelling between macros.
const PARTIAL_SUM_BYTES: usize = 4;

/// Per-block resource occupancies of one layer, in seconds.
///
/// Bit-rate stages (`mvm_bit`, `adc_bit`, `sa_bit`) run once per input-bit
/// iteration; the others once per computation block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStages {
    /// Input-bit iterations per block.
    pub bits: usize,
    /// Scratchpad load occupancy per block.
    pub load: f64,
    /// Crossbar occupancy per bit iteration.
    pub mvm_bit: f64,
    /// ADC-bank occupancy per bit iteration.
    pub adc_bit: f64,
    /// Shift-and-add occupancy per bit iteration.
    pub sa_bit: f64,
    /// Post-op (activation/pool/residual) occupancy per block.
    pub post: f64,
    /// Inter-macro partial-sum merge occupancy per block.
    pub merge: f64,
    /// Scratchpad store occupancy per block.
    pub store: f64,
    /// Inter-macro transfer occupancy per block.
    pub transfer: f64,
}

impl LayerStages {
    /// The block issue interval and its limiting stage.
    pub fn period(&self) -> (f64, StageKind) {
        let candidates = [
            (self.load, StageKind::Load),
            (self.bits as f64 * self.mvm_bit, StageKind::Mvm),
            (self.bits as f64 * self.adc_bit, StageKind::Adc),
            (self.bits as f64 * self.sa_bit, StageKind::ShiftAdd),
            (self.post, StageKind::Post),
            (self.merge, StageKind::Merge),
            (self.store, StageKind::Store),
            (self.transfer, StageKind::Transfer),
        ];
        let mut best = candidates[0];
        for &c in &candidates[1..] {
            if c.0 > best.0 {
                best = c;
            }
        }
        best
    }

    /// Serial latency of one block through the whole stage chain (pipeline
    /// fill cost; bit-rate stages overlap, bounded by the slowest).
    pub fn block_latency(&self) -> f64 {
        let bit_chain = self.bits as f64 * self.mvm_bit.max(self.adc_bit).max(self.sa_bit)
            + self.adc_bit
            + self.sa_bit;
        self.load + bit_chain + self.post + self.merge + self.store + self.transfer
    }
}

/// The NoC-independent part of one layer's stage occupancies: everything in
/// [`LayerStages`] except `merge` and `transfer`.
///
/// These costs depend only on the layer's own hardware assignment (macro
/// count, effective ADC bank, component counts) and its compiled program —
/// not on the accelerator-wide NoC sizing — so candidate evaluators can
/// memoize them per layer and recombine them across candidates that differ
/// elsewhere (see [`crate::LayerCostCache`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerBaseCosts {
    /// Input-bit iterations per block.
    pub bits: usize,
    /// Scratchpad load occupancy per block.
    pub load: f64,
    /// Crossbar occupancy per bit iteration.
    pub mvm_bit: f64,
    /// ADC-bank occupancy per bit iteration.
    pub adc_bit: f64,
    /// Shift-and-add occupancy per bit iteration.
    pub sa_bit: f64,
    /// Post-op occupancy per block.
    pub post: f64,
    /// Scratchpad store occupancy per block.
    pub store: f64,
}

/// The per-layer hardware facts [`compute_layer_base_with`] needs, decoupled
/// from [`Architecture`] so delta evaluators can rescore a single layer from
/// a candidate's component counts without materializing the whole
/// architecture struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCostInputs {
    /// Macros assigned to the layer (`MacAlloc` entry).
    pub macros: usize,
    /// ADC units effectively serving the layer (its own bank, or the
    /// largest bank in its sharing group — see `Architecture::effective_adcs`).
    pub effective_adcs: usize,
    /// The layer's ADC configuration (decides the sample rate).
    pub adc: AdcConfig,
    /// Allocated shift-and-add units.
    pub shift_add: usize,
    /// Allocated pooling units.
    pub pool: usize,
    /// Allocated activation units.
    pub activation: usize,
    /// Allocated element-wise units.
    pub eltwise: usize,
}

/// Computes the NoC-independent occupancies of layer `layer`.
///
/// # Errors
///
/// - [`SimError::LayerCountMismatch`] if `arch` and `df` disagree on layer
///   count or `layer` is out of range.
/// - [`SimError::MissingComponent`] if the layer has workload for a
///   component family with zero allocated units.
pub fn compute_layer_base(
    df: &Dataflow,
    arch: &Architecture,
    layer: usize,
) -> Result<LayerBaseCosts, SimError> {
    if arch.layers.len() != df.programs().len() || layer >= arch.layers.len() {
        return Err(SimError::LayerCountMismatch {
            arch: arch.layers.len(),
            dataflow: df.programs().len(),
        });
    }
    let lh = &arch.layers[df.program(layer).layer];
    let inputs = LayerCostInputs {
        macros: lh.macros,
        effective_adcs: arch.effective_adcs(df.program(layer).layer),
        adc: lh.adc,
        shift_add: lh.components.shift_add,
        pool: lh.components.pool,
        activation: lh.components.activation,
        eltwise: lh.components.eltwise,
    };
    compute_layer_base_with(df, &arch.hw, layer, &inputs)
}

/// Computes the NoC-independent occupancies of layer `layer` from explicit
/// per-layer hardware facts instead of a full [`Architecture`]. This is the
/// single implementation behind [`compute_layer_base`]; both paths produce
/// bit-identical floats by construction.
///
/// # Errors
///
/// [`SimError::MissingComponent`] if the layer has workload for a component
/// family with zero allocated units.
pub fn compute_layer_base_with(
    df: &Dataflow,
    hw: &HardwareParams,
    layer: usize,
    inputs: &LayerCostInputs,
) -> Result<LayerBaseCosts, SimError> {
    let spm = ScratchpadSpec::from_params(hw);
    let act_bytes = (df.activation_bits() as usize).div_ceil(8);
    let clock = hw.clock.value();
    let prog = df.program(layer);
    let n_mac = inputs.macros.max(1) as f64;
    let spm_bw = spm.bandwidth() * n_mac;

    let load_bytes = prog.load_elems * act_bytes;
    let load = load_bytes as f64 / spm_bw + spm.read_latency(0).value();

    let mvm_bit = hw.mvm_latency.value();

    let adc_units = inputs.effective_adcs;
    if prog.adc_samples > 0 && adc_units == 0 {
        return Err(SimError::MissingComponent {
            layer: prog.layer,
            component: "adc",
        });
    }
    let adc_rate = inputs.adc.sample_rate(hw).value();
    let adc_bit = prog.adc_samples as f64 / (adc_units.max(1) as f64 * adc_rate);

    let sa_units = inputs.shift_add;
    if prog.shift_add_ops > 0 && sa_units == 0 {
        return Err(SimError::MissingComponent {
            layer: prog.layer,
            component: "shift-add",
        });
    }
    let sa_bit = prog.shift_add_ops as f64 / (sa_units.max(1) as f64 * clock);

    let mut post = 0.0;
    for (ops, units, component) in [
        (prog.act_ops, inputs.activation, "activation"),
        (prog.pool_ops, inputs.pool, "pool"),
        (prog.eltwise_ops, inputs.eltwise, "eltwise"),
    ] {
        if ops > 0 {
            if units == 0 {
                return Err(SimError::MissingComponent {
                    layer: prog.layer,
                    component,
                });
            }
            post += ops as f64 / (units as f64 * clock);
        }
    }

    let store_bytes = prog.store_elems * act_bytes;
    let store = store_bytes as f64 / spm_bw + spm.read_latency(0).value();

    Ok(LayerBaseCosts {
        bits: prog.bits,
        load,
        mvm_bit,
        adc_bit,
        sa_bit,
        post,
        store,
    })
}

/// Computes the NoC-dependent `(merge, transfer)` occupancies of layer
/// `layer` under the given NoC sizing. Cheap relative to
/// [`compute_layer_base`]; recomputed for every candidate because the NoC is
/// sized from the accelerator-wide macro count.
///
/// # Panics
///
/// Panics if `arch` and `df` disagree on layer count or `layer` is out of
/// range — validate with [`compute_layer_base`] (or use [`compute_stages`],
/// which checks) first.
pub fn compute_layer_dynamic(
    df: &Dataflow,
    arch: &Architecture,
    layer: usize,
    noc: &pimsyn_arch::NocConfig,
) -> (f64, f64) {
    let prog_layer = df.program(layer).layer;
    compute_layer_dynamic_with(
        df,
        &arch.hw,
        layer,
        arch.layers[prog_layer].macros,
        |l| arch.layers[l].shares_macros_with.unwrap_or(l),
        noc,
    )
}

/// Computes the NoC-dependent `(merge, transfer)` occupancies of layer
/// `layer` from an explicit macro count and macro-group root lookup instead
/// of a full [`Architecture`]. This is the single implementation behind
/// [`compute_layer_dynamic`]; both paths produce bit-identical floats by
/// construction. `root_of(l)` must return the macro-group root of layer `l`
/// (the layer itself when it shares with nobody).
pub fn compute_layer_dynamic_with(
    df: &Dataflow,
    hw: &HardwareParams,
    layer: usize,
    macros: usize,
    root_of: impl Fn(usize) -> usize,
    noc: &pimsyn_arch::NocConfig,
) -> (f64, f64) {
    let act_bytes = (df.activation_bits() as usize).div_ceil(8);
    let prog = df.program(layer);
    let n_mac = macros.max(1) as f64;

    // Partial sums cross macros only when the layer both splits its
    // filter rows and spans multiple macros.
    let merge = if prog.row_groups > 1 && macros > 1 {
        let frac = (prog.row_groups - 1) as f64 / prog.row_groups as f64;
        let bytes = prog.store_elems as f64 * PARTIAL_SUM_BYTES as f64 * frac;
        bytes / (noc.link_bandwidth() * n_mac) + 2.0 * hw.noc_hop_latency.value()
    } else {
        0.0
    };

    let store_bytes = prog.store_elems * act_bytes;
    // Activations travel the NoC unless every consumer lives in the same
    // macro group.
    let my_group = root_of(prog.layer);
    let needs_transfer = prog.consumers.iter().any(|&c| root_of(c) != my_group);
    let transfer = if needs_transfer {
        store_bytes as f64 / (noc.link_bandwidth() * n_mac)
            + noc.average_hops() * hw.noc_hop_latency.value()
    } else {
        0.0
    };

    (merge, transfer)
}

/// Assembles full [`LayerStages`] from the two halves.
pub fn assemble_stages(base: LayerBaseCosts, merge: f64, transfer: f64) -> LayerStages {
    LayerStages {
        bits: base.bits,
        load: base.load,
        mvm_bit: base.mvm_bit,
        adc_bit: base.adc_bit,
        sa_bit: base.sa_bit,
        post: base.post,
        merge,
        store: base.store,
        transfer,
    }
}

/// Computes every layer's stage occupancies for `arch` running `df`.
///
/// # Errors
///
/// - [`SimError::LayerCountMismatch`] if `arch` and `df` disagree on layers.
/// - [`SimError::MissingComponent`] if a layer has workload for a component
///   family with zero allocated units.
pub fn compute_stages(df: &Dataflow, arch: &Architecture) -> Result<Vec<LayerStages>, SimError> {
    if arch.layers.len() != df.programs().len() {
        return Err(SimError::LayerCountMismatch {
            arch: arch.layers.len(),
            dataflow: df.programs().len(),
        });
    }
    let noc = arch.noc();
    let mut out = Vec::with_capacity(df.programs().len());
    for layer in 0..df.programs().len() {
        let base = compute_layer_base(df, arch, layer)?;
        let (merge, transfer) = compute_layer_dynamic(df, arch, layer, &noc);
        out.push(assemble_stages(base, merge, transfer));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{
        AdcConfig, Architecture, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams,
        LayerHardware, MacroMode, Watts,
    };
    use pimsyn_model::{Model, ModelBuilder, TensorShape};

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        b.conv("c2", Some(r1), 8, 3, 1, 1);
        b.build().unwrap()
    }

    fn setup(adcs: usize) -> (Dataflow, Architecture) {
        let model = tiny_model();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(4).unwrap();
        let df = Dataflow::compile(&model, xb, dac, &[2, 2]).unwrap();
        let hw = HardwareParams::date24();
        let layers = (0..2)
            .map(|i| LayerHardware {
                layer: i,
                name: format!("c{}", i + 1),
                wt_dup: 2,
                crossbar_set: df.program(i).crossbar_set,
                macros: 1,
                shares_macros_with: None,
                adc: AdcConfig::new(8, &hw),
                components: ComponentCounts {
                    adc: adcs,
                    shift_add: 4,
                    pool: 1,
                    activation: 1,
                    eltwise: 1,
                },
            })
            .collect();
        let arch = Architecture {
            model_name: "t".into(),
            crossbar: xb,
            dac,
            ratio_rram: 0.3,
            power_budget: Watts(1.0),
            macro_mode: MacroMode::Specialized,
            layers,
            hw,
        };
        (df, arch)
    }

    #[test]
    fn stages_are_positive_and_finite() {
        let (df, arch) = setup(2);
        let stages = compute_stages(&df, &arch).unwrap();
        for s in &stages {
            assert!(s.load > 0.0);
            assert!(s.mvm_bit > 0.0);
            assert!(s.adc_bit > 0.0);
            let (p, _) = s.period();
            assert!(p.is_finite() && p > 0.0);
            assert!(s.block_latency() >= p);
        }
    }

    #[test]
    fn more_adcs_shrink_adc_stage() {
        let (df, arch2) = setup(2);
        let (_, arch8) = setup(8);
        let s2 = compute_stages(&df, &arch2).unwrap();
        let s8 = compute_stages(&df, &arch8).unwrap();
        assert!(s8[0].adc_bit < s2[0].adc_bit);
        assert!((s2[0].adc_bit / s8[0].adc_bit - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_adc_is_an_error() {
        let (df, arch) = setup(0);
        assert!(matches!(
            compute_stages(&df, &arch),
            Err(SimError::MissingComponent {
                component: "adc",
                ..
            })
        ));
    }

    #[test]
    fn transfer_suppressed_within_shared_group() {
        let (df, mut arch) = setup(2);
        // c1 -> c2 in different groups: transfer needed.
        let with = compute_stages(&df, &arch).unwrap();
        assert!(with[0].transfer > 0.0);
        // Sharing macros removes the transfer stage.
        arch.layers[1].shares_macros_with = Some(0);
        let without = compute_stages(&df, &arch).unwrap();
        assert_eq!(without[0].transfer, 0.0);
    }

    #[test]
    fn layer_count_mismatch_detected() {
        let (df, mut arch) = setup(2);
        arch.layers.pop();
        assert!(matches!(
            compute_stages(&df, &arch),
            Err(SimError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn period_picks_largest_stage() {
        let s = LayerStages {
            bits: 4,
            load: 1.0,
            mvm_bit: 10.0,
            adc_bit: 1.0,
            sa_bit: 1.0,
            post: 5.0,
            merge: 0.0,
            store: 1.0,
            transfer: 39.0,
        };
        let (p, kind) = s.period();
        assert_eq!(p, 40.0); // 4 bits x 10 mvm
        assert_eq!(kind, StageKind::Mvm);
    }
}
