//! Serializes a synthesized PIMSYN design plus its workload into the
//! PIMSIM-NN configuration format, so a cycle-level ReRAM simulator can
//! replay the same accelerator and cross-check PIMSYN's analytic numbers.
//!
//! The emitted document (normative field table in
//! `docs/ARCHITECTURE.md`, "Export format") is a single JSON object:
//!
//! - `format` / `version` — `"pimsim-nn"` / [`FORMAT_VERSION`].
//! - `model` — workload identity: name, input shape, precisions.
//! - `sim_config` — chip-level knobs PIMSIM-NN needs to instantiate the
//!   substrate: crossbar size/cell bits, DAC resolution, macro/crossbar
//!   totals, NoC mesh, clock, power budget and RRAM power split.
//! - `network` — one entry per *weight layer* in pipeline order, carrying
//!   the operator (conv / fc / matmul), geometry (kernel, stride, groups,
//!   channels, spatial extents) and the fused post-ops (activation, pool,
//!   eltwise) exactly as PIMSYN scheduled them.
//! - `mapping` — the synthesized hardware assignment per layer: weight
//!   duplication, crossbar set/total, macros, macro sharing, ADC
//!   resolution and peripheral component counts.
//! - `expected` — PIMSYN's own evaluation of the design (latency, power,
//!   throughput, energy, efficiency) as cross-validation targets.
//!
//! Numbers are emitted through Rust's `f64` `Display`, which round-trips
//! exactly, so export -> [`PimsimConfig::parse`] -> re-export is
//! byte-identical — the round-trip tests below pin that down.
//!
//! # Example
//!
//! ```no_run
//! use pimsyn::{SynthesisOptions, Synthesizer};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! let result = Synthesizer::new(SynthesisOptions::fast(Watts(8.0)))
//!     .synthesize(&zoo::alexnet_cifar(10))
//!     .unwrap();
//! let text = pimsyn_export::to_pimsim_config(&result);
//! let config = pimsyn_export::PimsimConfig::parse(&text).unwrap();
//! assert_eq!(config.network.len(), config.mapping.len());
//! ```

use std::fmt;

use pimsyn::SynthesisResult;
use pimsyn_model::json::JsonValue;
use pimsyn_model::LayerKind;

/// Version of the emitted document. Bump on any field change and record the
/// delta in the `docs/ARCHITECTURE.md` appendix.
pub const FORMAT_VERSION: u64 = 1;

/// Identifier in the document's `format` field.
pub const FORMAT_NAME: &str = "pimsim-nn";

/// Everything that can go wrong reading a PIMSIM-NN config document.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportError {
    /// The text is not valid JSON.
    Json {
        /// Parser diagnostic.
        detail: String,
    },
    /// A required field is absent or has the wrong type.
    Field {
        /// Dotted path of the offending field.
        path: String,
    },
    /// The document parses but violates a format invariant.
    Invalid {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Json { detail } => write!(f, "invalid JSON: {detail}"),
            ExportError::Field { path } => {
                write!(f, "missing or mistyped field `{path}`")
            }
            ExportError::Invalid { detail } => write!(f, "invalid config: {detail}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// One `network[]` entry: a weight layer as PIMSIM-NN should replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLayer {
    /// Layer name (unique within the document).
    pub name: String,
    /// Operator: `"conv"`, `"fc"` or `"matmul"`.
    pub op: String,
    /// Kernel extent (1 for fc/matmul).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Channel groups (1 = dense).
    pub groups: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Output spatial extent `(height, width)`.
    pub out_extent: (usize, usize),
    /// Fused activation: `"relu"` or `"none"`.
    pub activation: String,
    /// Fused pooling: `"max"`, `"avg"` or `"none"`.
    pub pool: String,
    /// Whether the layer feeds a fused elementwise merge.
    pub eltwise: bool,
}

/// One `mapping[]` entry: the hardware assigned to a weight layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingEntry {
    /// Weight-layer index.
    pub layer: usize,
    /// Weight duplication factor.
    pub wt_dup: usize,
    /// Crossbars per weight copy (Eq. (1)).
    pub crossbar_set: usize,
    /// Total crossbars (`wt_dup * crossbar_set`).
    pub crossbars: usize,
    /// Macros assigned.
    pub macros: usize,
    /// Macro-sharing partner (earlier layer index), if any.
    pub shares_macros_with: Option<usize>,
    /// Derived lossless ADC resolution in bits.
    pub adc_precision: u32,
}

/// Cross-validation targets: PIMSYN's own evaluation of the design.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedMetrics {
    /// End-to-end single-inference latency in seconds.
    pub latency_seconds: f64,
    /// Realized total power in watts.
    pub power_watts: f64,
    /// Throughput in TOPS.
    pub throughput_tops: f64,
    /// Energy per inference in joules.
    pub energy_per_image_joules: f64,
    /// Power efficiency in TOPS/W.
    pub efficiency_tops_per_watt: f64,
}

/// A parsed and validated PIMSIM-NN config document.
#[derive(Debug, Clone, PartialEq)]
pub struct PimsimConfig {
    /// Format version (`version` field).
    pub version: u64,
    /// Workload name.
    pub model_name: String,
    /// Crossbar array extent.
    pub xbar_size: usize,
    /// ReRAM cell resolution in bits.
    pub cell_precision: u32,
    /// DAC resolution in bits.
    pub dac_precision: u32,
    /// Physical macro count.
    pub macro_count: usize,
    /// Total crossbar count.
    pub crossbar_count: usize,
    /// Power budget in watts.
    pub power_budget_watts: f64,
    /// The workload, one entry per weight layer.
    pub network: Vec<NetworkLayer>,
    /// The hardware assignment, parallel to `network`.
    pub mapping: Vec<MappingEntry>,
    /// PIMSYN's evaluation of the design.
    pub expected: ExpectedMetrics,
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: f64) -> JsonValue {
    JsonValue::Number(n)
}

fn int(n: usize) -> JsonValue {
    JsonValue::Number(n as f64)
}

fn s(text: impl Into<String>) -> JsonValue {
    JsonValue::String(text.into())
}

/// Builds the export document as a JSON tree. Most callers want the
/// serialized forms [`to_pimsim_config`] / [`to_pimsim_config_pretty`].
pub fn export_document(result: &SynthesisResult) -> JsonValue {
    let model = &result.model;
    let arch = &result.architecture;
    let report = result.best_report();
    let shape = model.input_shape();
    let precision = model.precision();
    let noc = arch.noc();

    let network: Vec<JsonValue> = model
        .weight_layers()
        .map(|wl| {
            let op = match model.layer(wl.id).kind {
                LayerKind::Conv2d { .. } => "conv",
                LayerKind::Linear { .. } => "fc",
                LayerKind::MatMul { .. } => "matmul",
                // Weight layers are exactly conv/fc/matmul by construction.
                _ => unreachable!("non-weight layer in weight_layers()"),
            };
            obj(vec![
                ("name", s(wl.name.clone())),
                ("op", s(op)),
                ("kernel", int(wl.kernel)),
                ("stride", int(wl.stride)),
                ("groups", int(wl.groups)),
                ("in_channels", int(wl.in_channels)),
                ("out_channels", int(wl.out_channels)),
                (
                    "in_extent",
                    JsonValue::Array(vec![int(wl.in_height), int(wl.in_width)]),
                ),
                (
                    "out_extent",
                    JsonValue::Array(vec![int(wl.out_height), int(wl.out_width)]),
                ),
                ("activation", s(if wl.relu { "relu" } else { "none" })),
                (
                    "pool",
                    s(wl.pool
                        .map(|(kind, _)| kind.to_string())
                        .unwrap_or_else(|| "none".to_string())),
                ),
                ("pool_size", int(wl.pool.map(|(_, size)| size).unwrap_or(0))),
                ("eltwise", JsonValue::Bool(wl.feeds_add)),
            ])
        })
        .collect();

    let mapping: Vec<JsonValue> = arch
        .layers
        .iter()
        .map(|lh| {
            obj(vec![
                ("layer", int(lh.layer)),
                ("name", s(lh.name.clone())),
                ("wt_dup", int(lh.wt_dup)),
                ("crossbar_set", int(lh.crossbar_set)),
                ("crossbars", int(lh.crossbars())),
                ("macros", int(lh.macros)),
                (
                    "shares_macros_with",
                    lh.shares_macros_with.map(int).unwrap_or(JsonValue::Null),
                ),
                ("adc_precision", int(lh.adc.bits() as usize)),
                (
                    "components",
                    obj(vec![
                        ("adc", int(lh.components.adc)),
                        ("shift_add", int(lh.components.shift_add)),
                        ("pool", int(lh.components.pool)),
                        ("activation", int(lh.components.activation)),
                        ("eltwise", int(lh.components.eltwise)),
                    ]),
                ),
            ])
        })
        .collect();

    obj(vec![
        ("format", s(FORMAT_NAME)),
        ("version", int(FORMAT_VERSION as usize)),
        (
            "model",
            obj(vec![
                ("name", s(model.name())),
                (
                    "input_shape",
                    JsonValue::Array(vec![
                        int(shape.channels),
                        int(shape.height),
                        int(shape.width),
                    ]),
                ),
                ("weight_precision", int(precision.weight_bits() as usize)),
                (
                    "activation_precision",
                    int(precision.activation_bits() as usize),
                ),
            ]),
        ),
        (
            "sim_config",
            obj(vec![
                ("xbar_size", int(arch.crossbar.size())),
                ("cell_precision", int(arch.crossbar.cell_bits() as usize)),
                ("dac_precision", int(arch.dac.bits() as usize)),
                ("macro_count", int(arch.macro_count())),
                ("crossbar_count", int(arch.crossbar_count())),
                ("noc_mesh_dim", int(noc.mesh_dim())),
                ("noc_flit_bits", int(arch.hw.noc_flit_bits as usize)),
                ("clock_hz", num(arch.hw.clock.value())),
                ("power_budget_watts", num(arch.power_budget.value())),
                ("ratio_rram", num(arch.ratio_rram)),
                ("macro_mode", s(arch.macro_mode.to_string())),
            ]),
        ),
        ("network", JsonValue::Array(network)),
        ("mapping", JsonValue::Array(mapping)),
        (
            "expected",
            obj(vec![
                ("latency_seconds", num(report.latency.value())),
                ("power_watts", num(report.power.value())),
                ("throughput_tops", num(report.throughput_tops())),
                (
                    "energy_per_image_joules",
                    num(report.energy_per_image.value()),
                ),
                (
                    "efficiency_tops_per_watt",
                    num(report.efficiency_tops_per_watt()),
                ),
            ]),
        ),
    ])
}

/// Serializes `result` as a compact single-line PIMSIM-NN config document.
pub fn to_pimsim_config(result: &SynthesisResult) -> String {
    export_document(result).to_string()
}

/// Serializes `result` as an indented PIMSIM-NN config document (2-space
/// indent), for humans and diffs. Parses to the same value as the compact
/// form.
pub fn to_pimsim_config_pretty(result: &SynthesisResult) -> String {
    let mut out = String::new();
    pretty(&export_document(result), 0, &mut out);
    out.push('\n');
    out
}

fn pretty(value: &JsonValue, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match value {
        JsonValue::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, v)) in fields.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                // Reuse the compact serializer for correct string escaping.
                out.push_str(&JsonValue::String(key.clone()).to_string());
                out.push_str(": ");
                pretty(v, indent + STEP, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        JsonValue::Array(items)
            if items
                .iter()
                .any(|v| matches!(v, JsonValue::Object(_) | JsonValue::Array(_))) =>
        {
            out.push_str("[\n");
            for (i, v) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                pretty(v, indent + STEP, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn field<'a>(value: &'a JsonValue, path: &str) -> Result<&'a JsonValue, ExportError> {
    let mut cur = value;
    for part in path.split('.') {
        cur = cur.get(part).ok_or_else(|| ExportError::Field {
            path: path.to_string(),
        })?;
    }
    Ok(cur)
}

fn usize_field(value: &JsonValue, path: &str) -> Result<usize, ExportError> {
    field(value, path)?
        .as_usize()
        .ok_or_else(|| ExportError::Field {
            path: path.to_string(),
        })
}

fn f64_field(value: &JsonValue, path: &str) -> Result<f64, ExportError> {
    field(value, path)?
        .as_f64()
        .ok_or_else(|| ExportError::Field {
            path: path.to_string(),
        })
}

fn str_field(value: &JsonValue, path: &str) -> Result<String, ExportError> {
    Ok(field(value, path)?
        .as_str()
        .ok_or_else(|| ExportError::Field {
            path: path.to_string(),
        })?
        .to_string())
}

impl PimsimConfig {
    /// Parses and validates a PIMSIM-NN config document.
    ///
    /// # Errors
    ///
    /// - [`ExportError::Json`] on malformed JSON.
    /// - [`ExportError::Field`] when a required field is missing/mistyped.
    /// - [`ExportError::Invalid`] when a format invariant fails (wrong
    ///   `format` tag, unsupported version, network/mapping mismatch,
    ///   inconsistent crossbar totals, non-finite metrics, ...).
    pub fn parse(text: &str) -> Result<Self, ExportError> {
        let doc = JsonValue::parse(text).map_err(|e| ExportError::Json {
            detail: e.to_string(),
        })?;

        let format = str_field(&doc, "format")?;
        if format != FORMAT_NAME {
            return Err(ExportError::Invalid {
                detail: format!("format is `{format}`, expected `{FORMAT_NAME}`"),
            });
        }
        let version = usize_field(&doc, "version")? as u64;
        if version != FORMAT_VERSION {
            return Err(ExportError::Invalid {
                detail: format!("unsupported version {version} (supported: {FORMAT_VERSION})"),
            });
        }

        let network = field(&doc, "network")?
            .as_array()
            .ok_or_else(|| ExportError::Field {
                path: "network".to_string(),
            })?
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let wrap = |path: &str| format!("network[{i}].{path}");
                let out_extent = entry
                    .get("out_extent")
                    .and_then(JsonValue::as_array)
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| ExportError::Field {
                        path: wrap("out_extent"),
                    })?;
                let extent = |v: &JsonValue| {
                    v.as_usize().ok_or_else(|| ExportError::Field {
                        path: wrap("out_extent"),
                    })
                };
                Ok(NetworkLayer {
                    name: str_field(entry, "name")
                        .map_err(|_| ExportError::Field { path: wrap("name") })?,
                    op: str_field(entry, "op")
                        .map_err(|_| ExportError::Field { path: wrap("op") })?,
                    kernel: usize_field(entry, "kernel").map_err(|_| ExportError::Field {
                        path: wrap("kernel"),
                    })?,
                    stride: usize_field(entry, "stride").map_err(|_| ExportError::Field {
                        path: wrap("stride"),
                    })?,
                    groups: usize_field(entry, "groups").map_err(|_| ExportError::Field {
                        path: wrap("groups"),
                    })?,
                    in_channels: usize_field(entry, "in_channels").map_err(|_| {
                        ExportError::Field {
                            path: wrap("in_channels"),
                        }
                    })?,
                    out_channels: usize_field(entry, "out_channels").map_err(|_| {
                        ExportError::Field {
                            path: wrap("out_channels"),
                        }
                    })?,
                    out_extent: (extent(&out_extent[0])?, extent(&out_extent[1])?),
                    activation: str_field(entry, "activation").map_err(|_| ExportError::Field {
                        path: wrap("activation"),
                    })?,
                    pool: str_field(entry, "pool")
                        .map_err(|_| ExportError::Field { path: wrap("pool") })?,
                    eltwise: entry
                        .get("eltwise")
                        .and_then(JsonValue::as_bool)
                        .ok_or_else(|| ExportError::Field {
                            path: wrap("eltwise"),
                        })?,
                })
            })
            .collect::<Result<Vec<_>, ExportError>>()?;

        let mapping = field(&doc, "mapping")?
            .as_array()
            .ok_or_else(|| ExportError::Field {
                path: "mapping".to_string(),
            })?
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let wrap = |path: &str| format!("mapping[{i}].{path}");
                let shares = match entry.get("shares_macros_with") {
                    None | Some(JsonValue::Null) => None,
                    Some(v) => Some(v.as_usize().ok_or_else(|| ExportError::Field {
                        path: wrap("shares_macros_with"),
                    })?),
                };
                let u = |path: &str| {
                    usize_field(entry, path).map_err(|_| ExportError::Field { path: wrap(path) })
                };
                Ok(MappingEntry {
                    layer: u("layer")?,
                    wt_dup: u("wt_dup")?,
                    crossbar_set: u("crossbar_set")?,
                    crossbars: u("crossbars")?,
                    macros: u("macros")?,
                    shares_macros_with: shares,
                    adc_precision: u("adc_precision")? as u32,
                })
            })
            .collect::<Result<Vec<_>, ExportError>>()?;

        let config = Self {
            version,
            model_name: str_field(&doc, "model.name")?,
            xbar_size: usize_field(&doc, "sim_config.xbar_size")?,
            cell_precision: usize_field(&doc, "sim_config.cell_precision")? as u32,
            dac_precision: usize_field(&doc, "sim_config.dac_precision")? as u32,
            macro_count: usize_field(&doc, "sim_config.macro_count")?,
            crossbar_count: usize_field(&doc, "sim_config.crossbar_count")?,
            power_budget_watts: f64_field(&doc, "sim_config.power_budget_watts")?,
            network,
            mapping,
            expected: ExpectedMetrics {
                latency_seconds: f64_field(&doc, "expected.latency_seconds")?,
                power_watts: f64_field(&doc, "expected.power_watts")?,
                throughput_tops: f64_field(&doc, "expected.throughput_tops")?,
                energy_per_image_joules: f64_field(&doc, "expected.energy_per_image_joules")?,
                efficiency_tops_per_watt: f64_field(&doc, "expected.efficiency_tops_per_watt")?,
            },
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks format invariants beyond field presence. Called by [`parse`];
    /// public so generated-elsewhere documents can be linted too.
    ///
    /// [`parse`]: PimsimConfig::parse
    ///
    /// # Errors
    ///
    /// [`ExportError::Invalid`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), ExportError> {
        let invalid = |detail: String| Err(ExportError::Invalid { detail });
        if self.network.is_empty() {
            return invalid("network has no layers".into());
        }
        if self.network.len() != self.mapping.len() {
            return invalid(format!(
                "network has {} layers but mapping has {}",
                self.network.len(),
                self.mapping.len()
            ));
        }
        for (i, layer) in self.network.iter().enumerate() {
            if !matches!(layer.op.as_str(), "conv" | "fc" | "matmul") {
                return invalid(format!("network[{i}] op `{}` unknown", layer.op));
            }
            if layer.groups == 0
                || layer.in_channels % layer.groups != 0
                || layer.out_channels % layer.groups != 0
            {
                return invalid(format!(
                    "network[{i}] groups {} must divide channels {}x{}",
                    layer.groups, layer.in_channels, layer.out_channels
                ));
            }
            if !matches!(layer.pool.as_str(), "max" | "avg" | "none") {
                return invalid(format!("network[{i}] pool `{}` unknown", layer.pool));
            }
            if !matches!(layer.activation.as_str(), "relu" | "none") {
                return invalid(format!(
                    "network[{i}] activation `{}` unknown",
                    layer.activation
                ));
            }
        }
        let mut total = 0usize;
        for (i, m) in self.mapping.iter().enumerate() {
            if m.layer != i {
                return invalid(format!("mapping[{i}] is for layer {}", m.layer));
            }
            if m.wt_dup == 0 || m.crossbar_set == 0 || m.macros == 0 {
                return invalid(format!("mapping[{i}] has a zero allocation"));
            }
            if m.crossbars != m.wt_dup * m.crossbar_set {
                return invalid(format!(
                    "mapping[{i}] crossbars {} != wt_dup {} x set {}",
                    m.crossbars, m.wt_dup, m.crossbar_set
                ));
            }
            if let Some(root) = m.shares_macros_with {
                if root >= i {
                    return invalid(format!(
                        "mapping[{i}] shares macros with non-earlier layer {root}"
                    ));
                }
            }
            total += m.crossbars;
        }
        if total != self.crossbar_count {
            return invalid(format!(
                "sim_config.crossbar_count {} != mapping total {total}",
                self.crossbar_count
            ));
        }
        let metrics = [
            ("latency_seconds", self.expected.latency_seconds),
            ("power_watts", self.expected.power_watts),
            ("throughput_tops", self.expected.throughput_tops),
            (
                "energy_per_image_joules",
                self.expected.energy_per_image_joules,
            ),
            (
                "efficiency_tops_per_watt",
                self.expected.efficiency_tops_per_watt,
            ),
        ];
        for (name, v) in metrics {
            if !v.is_finite() || v < 0.0 {
                return invalid(format!("expected.{name} is {v}"));
            }
        }
        if self.power_budget_watts <= 0.0 || !self.power_budget_watts.is_finite() {
            return invalid(format!(
                "sim_config.power_budget_watts is {}",
                self.power_budget_watts
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn::{SynthesisOptions, Synthesizer};
    use pimsyn_arch::Watts;
    use pimsyn_model::zoo;

    fn synthesize(model: &pimsyn_model::Model, watts: f64) -> SynthesisResult {
        Synthesizer::new(SynthesisOptions::fast(Watts(watts)).with_seed(3))
            .synthesize(model)
            .expect("synthesis succeeds")
    }

    #[test]
    fn classic_model_round_trips() {
        let result = synthesize(&zoo::alexnet_cifar(10), 8.0);
        let text = to_pimsim_config(&result);
        let config = PimsimConfig::parse(&text).expect("valid document");
        assert_eq!(config.model_name, "alexnet-cifar");
        assert_eq!(config.network.len(), result.model.weight_layer_count());
        assert_eq!(config.mapping.len(), config.network.len());
        assert_eq!(config.crossbar_count, result.architecture.crossbar_count());
        assert_eq!(config.macro_count, result.architecture.macro_count());
        // The serialized text is a fixed point: parse -> re-serialize is
        // byte-identical (f64 Display round-trips exactly).
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn new_op_model_round_trips() {
        let result = synthesize(&zoo::transformer_tiny(), 6.0);
        let text = to_pimsim_config(&result);
        let config = PimsimConfig::parse(&text).expect("valid document");
        assert_eq!(config.model_name, "transformer-tiny");
        let matmuls = config.network.iter().filter(|l| l.op == "matmul").count();
        assert_eq!(matmuls, 13, "embed + 2 x 6 projections");
        // Dynamic attention products surface as fused eltwise work.
        let q = config.network.iter().find(|l| l.name == "enc1_q").unwrap();
        assert!(q.eltwise);
        config.validate().unwrap();
    }

    #[test]
    fn grouped_layers_survive_export() {
        // Depthwise layers map block-diagonally (each group gets its own
        // tile), so MobileNet needs a generous crossbar budget.
        let result = synthesize(&zoo::mobilenet(), 120.0);
        let config = PimsimConfig::parse(&to_pimsim_config(&result)).unwrap();
        let dw = config
            .network
            .iter()
            .find(|l| l.name == "b1_dw")
            .expect("depthwise layer exported");
        assert_eq!(dw.groups, 32);
        assert_eq!(dw.in_channels, 32);
        // Block-diagonal sizing: the mapping's crossbar_set must match
        // Eq. (1) extended with the group factor.
        let entry = &config.mapping[config
            .network
            .iter()
            .position(|l| l.name == "b1_dw")
            .unwrap()];
        let wl = result
            .model
            .weight_layers()
            .find(|w| w.name == "b1_dw")
            .unwrap();
        let set = result
            .architecture
            .crossbar
            .crossbar_set(wl, result.model.precision().weight_bits());
        assert_eq!(entry.crossbar_set, set);
    }

    #[test]
    fn pretty_form_parses_to_the_same_value() {
        let result = synthesize(&zoo::alexnet_cifar(10), 8.0);
        let compact = to_pimsim_config(&result);
        let pretty = to_pimsim_config_pretty(&result);
        assert!(pretty.contains("\n  \"sim_config\""));
        let a = JsonValue::parse(&compact).unwrap();
        let b = JsonValue::parse(&pretty).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            PimsimConfig::parse(&compact).unwrap(),
            PimsimConfig::parse(&pretty).unwrap()
        );
    }

    #[test]
    fn validation_rejects_corrupted_documents() {
        let result = synthesize(&zoo::alexnet_cifar(10), 8.0);
        let text = to_pimsim_config(&result);

        let err = PimsimConfig::parse("{").unwrap_err();
        assert!(matches!(err, ExportError::Json { .. }), "{err}");

        let err = PimsimConfig::parse("{}").unwrap_err();
        assert!(matches!(err, ExportError::Field { .. }), "{err}");

        let wrong_format = text.replace("\"pimsim-nn\"", "\"onnx\"");
        let err = PimsimConfig::parse(&wrong_format).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");

        let wrong_version = text.replace("\"version\":1", "\"version\":99");
        let err = PimsimConfig::parse(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Break the crossbar-total invariant.
        let mut config = PimsimConfig::parse(&text).unwrap();
        config.crossbar_count += 1;
        let err = config.validate().unwrap_err();
        assert!(err.to_string().contains("crossbar_count"), "{err}");

        // Break the per-layer product invariant.
        let mut config = PimsimConfig::parse(&text).unwrap();
        config.mapping[0].crossbars += 1;
        let err = config.validate().unwrap_err();
        assert!(err.to_string().contains("wt_dup"), "{err}");
    }
}
