//! Property tests for shape inference and weight-layer extraction.

use pimsyn_model::{ModelBuilder, TensorShape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conv output extents always satisfy the textbook formula and MAC/weight
    /// counts stay mutually consistent.
    #[test]
    fn conv_shape_formula_holds(
        ci in 1usize..8,
        extent in 4usize..32,
        co in 1usize..32,
        kernel in 1usize..5,
        stride in 1usize..3,
        padding in 0usize..3,
    ) {
        prop_assume!(kernel <= extent + 2 * padding);
        let mut b = ModelBuilder::new("t", TensorShape::new(ci, extent, extent));
        b.conv("c", None, co, kernel, stride, padding);
        let m = b.build().expect("valid conv");
        let wl = m.weight_layer(0);
        let expect = (extent + 2 * padding - kernel) / stride + 1;
        prop_assert_eq!(wl.out_height, expect);
        prop_assert_eq!(wl.out_width, expect);
        prop_assert_eq!(wl.weights, (co * kernel * kernel * ci) as u64);
        prop_assert_eq!(
            wl.macs,
            wl.weights * (wl.out_height * wl.out_width) as u64
        );
        prop_assert_eq!(wl.filter_rows(), kernel * kernel * ci);
    }

    /// Pooling never enlarges the tensor and preserves channels.
    #[test]
    fn pooling_contracts(
        extent in 4usize..32,
        ch in 1usize..16,
        window in 2usize..4,
        stride in 1usize..4,
    ) {
        prop_assume!(window <= extent);
        let mut b = ModelBuilder::new("t", TensorShape::new(ch, extent, extent));
        let c = b.conv("c", None, ch, 1, 1, 0);
        b.max_pool("p", c, window, stride);
        let m = b.build().expect("valid");
        let out = m.output_shape(m.layer_by_name("p").expect("pool exists"));
        prop_assert_eq!(out.channels, ch);
        prop_assert!(out.height <= extent);
        prop_assert!(out.width <= extent);
        prop_assert!(out.height >= 1);
    }

    /// Stacking convs: every layer's in_channels equals its producer's
    /// out_channels, and producers/consumers are mutually consistent.
    #[test]
    fn producer_consumer_duality(widths in prop::collection::vec(1usize..16, 2..6)) {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 16, 16));
        let mut cur = None;
        for (i, &w) in widths.iter().enumerate() {
            let c = b.conv(format!("c{i}"), cur, w, 3, 1, 1);
            cur = Some(b.relu(format!("r{i}"), c));
        }
        let m = b.build().expect("valid");
        for wl in m.weight_layers() {
            for &p in &wl.producers {
                prop_assert_eq!(wl.in_channels, m.weight_layer(p).out_channels);
                prop_assert!(
                    m.weight_layer(p).consumers.contains(&wl.index),
                    "consumer back-reference missing"
                );
            }
        }
    }

    /// Access volume (Eq. (4)) is linear in the duplication factor.
    #[test]
    fn access_volume_linear(dup in 1usize..64, co in 1usize..64) {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        b.conv("c", None, co, 3, 1, 1);
        let m = b.build().expect("valid");
        let wl = m.weight_layer(0);
        prop_assert_eq!(wl.access_volume(dup), dup as u64 * wl.access_volume(1));
    }
}
