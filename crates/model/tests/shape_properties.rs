//! Property tests for shape inference and weight-layer extraction.
//!
//! Cases are drawn from a seeded RNG (no external property-test framework
//! is available offline), so every run exercises the same deterministic
//! sample of the input space; failures reproduce exactly.

use pimsyn_model::{ModelBuilder, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 128;

/// Conv output extents always satisfy the textbook formula and MAC/weight
/// counts stay mutually consistent.
#[test]
fn conv_shape_formula_holds() {
    let mut rng = StdRng::seed_from_u64(0x5AFE_0001);
    let mut checked = 0usize;
    while checked < CASES {
        let ci = rng.gen_range(1usize..8);
        let extent = rng.gen_range(4usize..32);
        let co = rng.gen_range(1usize..32);
        let kernel = rng.gen_range(1usize..5);
        let stride = rng.gen_range(1usize..3);
        let padding = rng.gen_range(0usize..3);
        if kernel > extent + 2 * padding {
            continue;
        }
        checked += 1;
        let mut b = ModelBuilder::new("t", TensorShape::new(ci, extent, extent));
        b.conv("c", None, co, kernel, stride, padding);
        let m = b.build().expect("valid conv");
        let wl = m.weight_layer(0);
        let expect = (extent + 2 * padding - kernel) / stride + 1;
        assert_eq!(wl.out_height, expect);
        assert_eq!(wl.out_width, expect);
        assert_eq!(wl.weights, (co * kernel * kernel * ci) as u64);
        assert_eq!(wl.macs, wl.weights * (wl.out_height * wl.out_width) as u64);
        assert_eq!(wl.filter_rows(), kernel * kernel * ci);
    }
}

/// Pooling never enlarges the tensor and preserves channels.
#[test]
fn pooling_contracts() {
    let mut rng = StdRng::seed_from_u64(0x5AFE_0002);
    let mut checked = 0usize;
    while checked < CASES {
        let extent = rng.gen_range(4usize..32);
        let ch = rng.gen_range(1usize..16);
        let window = rng.gen_range(2usize..4);
        let stride = rng.gen_range(1usize..4);
        if window > extent {
            continue;
        }
        checked += 1;
        let mut b = ModelBuilder::new("t", TensorShape::new(ch, extent, extent));
        let c = b.conv("c", None, ch, 1, 1, 0);
        b.max_pool("p", c, window, stride);
        let m = b.build().expect("valid");
        let out = m.output_shape(m.layer_by_name("p").expect("pool exists"));
        assert_eq!(out.channels, ch);
        assert!(out.height <= extent);
        assert!(out.width <= extent);
        assert!(out.height >= 1);
    }
}

/// Stacking convs: every layer's in_channels equals its producer's
/// out_channels, and producers/consumers are mutually consistent.
#[test]
fn producer_consumer_duality() {
    let mut rng = StdRng::seed_from_u64(0x5AFE_0003);
    for _ in 0..CASES {
        let widths: Vec<usize> = (0..rng.gen_range(2usize..6))
            .map(|_| rng.gen_range(1usize..16))
            .collect();
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 16, 16));
        let mut cur = None;
        for (i, &w) in widths.iter().enumerate() {
            let c = b.conv(format!("c{i}"), cur, w, 3, 1, 1);
            cur = Some(b.relu(format!("r{i}"), c));
        }
        let m = b.build().expect("valid");
        for wl in m.weight_layers() {
            for &p in &wl.producers {
                assert_eq!(wl.in_channels, m.weight_layer(p).out_channels);
                assert!(
                    m.weight_layer(p).consumers.contains(&wl.index),
                    "consumer back-reference missing"
                );
            }
        }
    }
}

/// Access volume (Eq. (4)) is linear in the duplication factor.
#[test]
fn access_volume_linear() {
    let mut rng = StdRng::seed_from_u64(0x5AFE_0004);
    for _ in 0..CASES {
        let dup = rng.gen_range(1usize..64);
        let co = rng.gen_range(1usize..64);
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 8, 8));
        b.conv("c", None, co, 3, 1, 1);
        let m = b.build().expect("valid");
        let wl = m.weight_layer(0);
        assert_eq!(wl.access_volume(dup), dup as u64 * wl.access_volume(1));
    }
}
