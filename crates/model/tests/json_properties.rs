//! Property tests for the from-scratch JSON parser: arbitrary documents
//! must round-trip through `Display` -> `parse`, and the parser must never
//! panic on arbitrary input bytes.
//!
//! Cases are drawn from a seeded RNG (no external property-test framework
//! is available offline), so every run exercises the same deterministic
//! sample of the input space; failures reproduce exactly.

use pimsyn_model::json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

/// Characters exercising escapes, unicode, and whitespace in strings.
const STRING_POOL: &[char] = &[
    'a', 'Z', '0', '9', ' ', '_', '-', '.', '\n', '\t', '"', '\\', 'é', 'ß', '😀',
];

fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0usize..=max_len);
    (0..len)
        .map(|_| STRING_POOL[rng.gen_range(0usize..STRING_POOL.len())])
        .collect()
}

fn arb_key(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..=8);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0u32..26) as u8) as char)
        .collect()
}

/// Arbitrary JSON value of bounded depth. Finite numbers only: JSON has no
/// NaN/inf.
fn arb_json(rng: &mut StdRng, depth: usize) -> JsonValue {
    let leaf_only = depth == 0;
    match rng.gen_range(0usize..if leaf_only { 4 } else { 6 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.gen_bool(0.5)),
        2 => JsonValue::Number(rng.gen_range(-1e15f64..1e15)),
        3 => JsonValue::String(arb_string(rng, 24)),
        4 => {
            let n = rng.gen_range(0usize..6);
            JsonValue::Array((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..6);
            JsonValue::Object(
                (0..n)
                    .map(|_| (arb_key(rng), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn display_parse_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x150_0001);
    for _ in 0..CASES {
        let v = arb_json(&mut rng, 3);
        let text = v.to_string();
        let back =
            JsonValue::parse(&text).unwrap_or_else(|e| panic!("reparse failed for {text:?}: {e}"));
        assert!(json_eq(&v, &back), "{v:?} != {back:?} via {text:?}");
    }
}

#[test]
fn parser_never_panics_on_arbitrary_text() {
    let mut rng = StdRng::seed_from_u64(0x150_0002);
    for _ in 0..CASES {
        // Arbitrary printable-ish unicode, including multi-byte chars.
        let len = rng.gen_range(0usize..64);
        let s: String = (0..len)
            .map(|_| char::from_u32(rng.gen_range(1u32..0xD7FF)).unwrap_or('x'))
            .collect();
        let _ = JsonValue::parse(&s); // may Err, must not panic
    }
}

#[test]
fn parser_never_panics_on_json_like_text() {
    const POOL: &[u8] = b"{}[]\",:0123456789abcxyz\\ .eE+-";
    let mut rng = StdRng::seed_from_u64(0x150_0003);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..48);
        let s: String = (0..len)
            .map(|_| POOL[rng.gen_range(0usize..POOL.len())] as char)
            .collect();
        let _ = JsonValue::parse(&s);
    }
}

#[test]
fn numbers_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x150_0004);
    for _ in 0..CASES {
        let n = rng.gen_range(-1e15f64..1e15);
        let v = JsonValue::Number(n);
        let back = JsonValue::parse(&v.to_string()).expect("number reparses");
        match back {
            JsonValue::Number(m) => {
                assert!((m - n).abs() <= n.abs() * 1e-12 + 1e-12, "{n} -> {m}")
            }
            other => panic!("not a number: {other:?}"),
        }
    }
}

/// Structural equality with float tolerance (Display may shorten floats).
fn json_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Null, JsonValue::Null) => true,
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x == y,
        (JsonValue::Number(x), JsonValue::Number(y)) => (x - y).abs() <= x.abs() * 1e-12 + 1e-12,
        (JsonValue::String(x), JsonValue::String(y)) => x == y,
        (JsonValue::Array(x), JsonValue::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| json_eq(a, b))
        }
        (JsonValue::Object(x), JsonValue::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        _ => false,
    }
}
