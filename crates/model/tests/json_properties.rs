//! Property tests for the from-scratch JSON parser: arbitrary documents
//! must round-trip through `Display` -> `parse`, and the parser must never
//! panic on arbitrary input bytes.

use pimsyn_model::json::JsonValue;
use proptest::prelude::*;

/// Strategy for arbitrary JSON values of bounded depth/size.
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        // Finite numbers only: JSON has no NaN/inf.
        (-1e15f64..1e15f64).prop_map(JsonValue::Number),
        "[a-zA-Z0-9 _\\-\\.\\n\\t\"\\\\éß😀]{0,24}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|pairs| JsonValue::Object(
                    pairs.into_iter().map(|(k, v)| (k, v)).collect()
                )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(v in arb_json()) {
        let text = v.to_string();
        let back = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed for {text:?}: {e}"));
        prop_assert!(json_eq(&v, &back), "{v:?} != {back:?} via {text:?}");
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(s in "\\PC{0,64}") {
        let _ = JsonValue::parse(&s); // may Err, must not panic
    }

    #[test]
    fn parser_never_panics_on_json_like_text(
        s in "[\\{\\}\\[\\]\",:0-9a-z\\\\ \\.eE+-]{0,48}"
    ) {
        let _ = JsonValue::parse(&s);
    }

    #[test]
    fn numbers_round_trip_exactly(n in -1e15f64..1e15f64) {
        let v = JsonValue::Number(n);
        let back = JsonValue::parse(&v.to_string()).expect("number reparses");
        match back {
            JsonValue::Number(m) => prop_assert!(
                (m - n).abs() <= n.abs() * 1e-12 + 1e-12,
                "{n} -> {m}"
            ),
            other => prop_assert!(false, "not a number: {other:?}"),
        }
    }
}

/// Structural equality with float tolerance (Display may shorten floats).
fn json_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Null, JsonValue::Null) => true,
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x == y,
        (JsonValue::Number(x), JsonValue::Number(y)) => {
            (x - y).abs() <= x.abs() * 1e-12 + 1e-12
        }
        (JsonValue::String(x), JsonValue::String(y)) => x == y,
        (JsonValue::Array(x), JsonValue::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| json_eq(a, b))
        }
        (JsonValue::Object(x), JsonValue::Object(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        _ => false,
    }
}
