//! A small, dependency-free JSON parser and writer.
//!
//! This is the substrate for [`onnx`](crate::onnx) model ingestion (the
//! paper's ONNX input path; see substitution #1 in `DESIGN.md`). It supports
//! the full JSON grammar: objects, arrays, strings with escapes (including
//! `\uXXXX` and surrogate pairs), numbers, booleans and `null`.
//!
//! # Example
//!
//! ```
//! use pimsyn_model::json::JsonValue;
//!
//! # fn main() -> Result<(), pimsyn_model::ModelError> {
//! let v = JsonValue::parse(r#"{"kernel": 3, "pads": [1, 1]}"#)?;
//! assert_eq!(v.get("kernel").and_then(JsonValue::as_usize), Some(3));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::ModelError;

/// A parsed JSON document node.
///
/// Objects preserve key order (stored as a vector of pairs), which keeps
/// ingestion error messages deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (integers up to 2^53 are exact).
    Number(f64),
    /// A string with all escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] with a byte offset on any syntax error,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Self, ModelError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exactly integral.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    /// Serializes back to compact JSON (round-trips through [`parse`]).
    ///
    /// [`parse`]: JsonValue::parse
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, detail: impl Into<String>) -> ModelError {
        ModelError::Parse {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ModelError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ModelError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ModelError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ModelError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(pairs)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ModelError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ModelError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("expected low surrogate escape"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    let len = utf8_len(b);
                    if len == 1 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        for _ in 1..len {
                            self.bump().ok_or_else(|| self.error("truncated UTF-8"))?;
                        }
                        let slice = &self.bytes[start..self.pos];
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| self.error("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ModelError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated unicode escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, ModelError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| self.error(format!("unparseable number: {e}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-3.5e2").unwrap(),
            JsonValue::Number(-350.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_usize(), Some(1));
        assert_eq!(a[1].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes() {
        let v = JsonValue::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn surrogate_pair() {
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn utf8_passthrough() {
        let v = JsonValue::parse("\"héllo 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo 世界"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{} x").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            "\"abc",
            "01",
            "1.",
            "1e",
            "tru",
            "{\"a\" 1}",
            "",
            "+1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        match JsonValue::parse("[1, x]") {
            Err(ModelError::Parse { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"name":"net","vals":[1,2.5,null,true],"nested":{"s":"a\"b"}}"#;
        let v = JsonValue::parse(src).unwrap();
        let reparsed = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(JsonValue::parse(" [ ] ").unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = JsonValue::parse("3.5").unwrap();
        assert_eq!(v.as_usize(), None); // not integral
        assert_eq!(v.as_str(), None);
        assert_eq!(JsonValue::Null.as_f64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_usize(), None); // negative
    }
}
