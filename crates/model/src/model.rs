use std::collections::HashMap;
use std::fmt;

use crate::error::ModelError;
use crate::layer::{Layer, LayerId, LayerKind, PoolKind};
use crate::tensor::TensorShape;

/// Quantization metadata of a trained network.
///
/// PIMSYN's input is a *quantified* CNN; synthesis never changes accuracy, it
/// only sizes hardware (e.g. minimum ADC resolution) to match these widths.
/// The paper's evaluation uses 16-bit quantification throughout.
///
/// # Example
///
/// ```
/// use pimsyn_model::Precision;
///
/// let p = Precision::int16();
/// assert_eq!(p.weight_bits(), 16);
/// assert_eq!(p.activation_bits(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    weight_bits: u32,
    activation_bits: u32,
}

impl Precision {
    /// Creates a precision descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPrecision`] if either width is zero or
    /// exceeds 32 bits.
    pub fn new(weight_bits: u32, activation_bits: u32) -> Result<Self, ModelError> {
        for bits in [weight_bits, activation_bits] {
            if bits == 0 || bits > 32 {
                return Err(ModelError::InvalidPrecision { bits });
            }
        }
        Ok(Self {
            weight_bits,
            activation_bits,
        })
    }

    /// The paper's default: 16-bit weights and activations.
    pub fn int16() -> Self {
        Self {
            weight_bits: 16,
            activation_bits: 16,
        }
    }

    /// 8-bit weights and activations (PRIME's native quantification).
    pub fn int8() -> Self {
        Self {
            weight_bits: 8,
            activation_bits: 8,
        }
    }

    /// Weight bit width (`PrecWt` in the paper's Eq. (1)).
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Activation bit width (drives the number of DAC bit-iterations).
    pub fn activation_bits(&self) -> u32 {
        self.activation_bits
    }
}

impl Default for Precision {
    fn default() -> Self {
        Self::int16()
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}a{}", self.weight_bits, self.activation_bits)
    }
}

/// Flattened view of one weight-bearing layer — the unit of PIMSYN's
/// synthesis (the paper's "layer `i`", `i = 1..L`).
///
/// All quantities the four synthesis stages consume are precomputed here:
/// kernel extent `WK`, channel counts `CI`/`CO`, output extents `HO`/`WO`,
/// MAC and weight counts, fused post-ops, and the producer/consumer relation
/// among weight layers (through any interleaved activation/pool/add nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightLayer {
    /// Graph-level id of the conv/linear layer.
    pub id: LayerId,
    /// Name copied from the graph layer.
    pub name: String,
    /// Dense index among weight layers, `0..L`.
    pub index: usize,
    /// Kernel extent `WK` (1 for fully-connected layers).
    pub kernel: usize,
    /// Convolution stride (1 for fully-connected layers).
    pub stride: usize,
    /// Input channels `CI` (input features for fully-connected layers).
    pub in_channels: usize,
    /// Output channels `CO`.
    pub out_channels: usize,
    /// Channel groups (1 for dense conv/linear/matmul; `CI` for depthwise).
    /// Each filter spans only `CI / groups` input channels.
    pub groups: usize,
    /// Input spatial height `HI`.
    pub in_height: usize,
    /// Input spatial width `WI`.
    pub in_width: usize,
    /// Output spatial height `HO`.
    pub out_height: usize,
    /// Output spatial width `WO`.
    pub out_width: usize,
    /// Multiply-accumulate operations for one inference.
    pub macs: u64,
    /// Number of weight parameters.
    pub weights: u64,
    /// Whether an activation (ReLU/PReLU/sigmoid/softmax — one ALU cost
    /// class) is fused after this layer.
    pub relu: bool,
    /// Pooling fused after this layer, `(kind, window)` — e.g. `(Max, 2)`.
    pub pool: Option<(PoolKind, usize)>,
    /// Whether an elementwise `Add`/`Mul` consumes this layer's output.
    pub feeds_add: bool,
    /// Indices (into the weight-layer list) of weight layers producing this
    /// one's inputs. Empty for layers fed by the model input.
    pub producers: Vec<usize>,
    /// Indices of weight layers consuming this one's outputs.
    pub consumers: Vec<usize>,
}

impl WeightLayer {
    /// Crossbar row demand of one filter: `WK * WK * CI / groups` (the
    /// paper's Fig. 1 and Eq. (1); for grouped/depthwise convolution a filter
    /// spans only its group's input channels, so the block-diagonal weight
    /// matrix needs correspondingly fewer rows per crossbar column).
    pub fn filter_rows(&self) -> usize {
        self.kernel * self.kernel * self.in_channels / self.groups
    }

    /// Input elements consumed per output position: `WK * WK * CI`,
    /// independent of grouping (every input channel is loaded exactly once
    /// per position across all groups). Equals [`filter_rows`] for dense
    /// layers.
    ///
    /// [`filter_rows`]: WeightLayer::filter_rows
    pub fn input_window(&self) -> usize {
        self.kernel * self.kernel * self.in_channels
    }

    /// Output positions per image: `HO * WO` — the paper's `WO x HO`, which
    /// together with the duplication factor determines the number of
    /// computation-block steps, `ceil(HO*WO / WtDup)`.
    pub fn output_positions(&self) -> usize {
        self.out_height * self.out_width
    }

    /// The paper's per-layer data-access volume term used in the SA energy
    /// function (Eq. (4)) for duplication factor `wt_dup`:
    /// `WtDup * (WK*WK*CI + CO)`.
    pub fn access_volume(&self, wt_dup: usize) -> u64 {
        wt_dup as u64 * (self.input_window() as u64 + self.out_channels as u64)
    }
}

/// Aggregate statistics of a model, computed by [`Model::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// Total weight-bearing layers (`L`).
    pub weight_layer_count: usize,
    /// Total graph layers of any kind.
    pub layer_count: usize,
    /// Sum of MACs over all weight layers (one inference).
    pub total_macs: u64,
    /// Sum of weight parameters.
    pub total_weights: u64,
    /// Largest activation tensor (elements) — sizing pressure on scratchpads.
    pub peak_activation: usize,
    /// Total activation elements produced across the graph.
    pub total_activations: u64,
}

/// A validated CNN: a DAG of layers with inferred shapes.
///
/// Construct with [`ModelBuilder`], from [`zoo`](crate::zoo) constructors, or
/// by ingesting an ONNX-style JSON graph via [`onnx`](crate::onnx).
///
/// # Example
///
/// ```
/// use pimsyn_model::{ModelBuilder, TensorShape};
///
/// # fn main() -> Result<(), pimsyn_model::ModelError> {
/// let mut b = ModelBuilder::new("tiny", TensorShape::new(3, 8, 8));
/// let c = b.conv("conv1", None, 16, 3, 1, 1);
/// let r = b.relu("relu1", c);
/// b.max_pool("pool1", r, 2, 2);
/// let model = b.build()?;
/// assert_eq!(model.weight_layers().count(), 1);
/// let wl = model.weight_layers().next().expect("one weight layer");
/// assert_eq!((wl.out_height, wl.out_width), (8, 8));
/// assert!(wl.relu);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
    shapes: Vec<TensorShape>,
    weight_layers: Vec<WeightLayer>,
    precision: Precision,
}

impl Model {
    /// Model name (e.g. `"vgg16"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the model input tensor.
    pub fn input_shape(&self) -> TensorShape {
        self.input
    }

    /// Quantization of the trained network.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Returns a copy of this model with different quantization metadata.
    pub fn with_precision(&self, precision: Precision) -> Self {
        let mut m = self.clone();
        m.precision = precision;
        m
    }

    /// All graph layers in topological (insertion) order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Looks up a layer by id.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// Inferred output shape of a layer.
    pub fn output_shape(&self, id: LayerId) -> TensorShape {
        self.shapes[id.0]
    }

    /// Iterates over the weight-bearing layers in execution order — the
    /// paper's `i = 1..L`.
    pub fn weight_layers(&self) -> std::slice::Iter<'_, WeightLayer> {
        self.weight_layers.iter()
    }

    /// Number of weight-bearing layers (`L`).
    pub fn weight_layer_count(&self) -> usize {
        self.weight_layers.len()
    }

    /// The `index`-th weight layer.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.weight_layer_count()`.
    pub fn weight_layer(&self, index: usize) -> &WeightLayer {
        &self.weight_layers[index]
    }

    /// Finds a layer id by name.
    pub fn layer_by_name(&self, name: &str) -> Option<LayerId> {
        self.layers.iter().position(|l| l.name == name).map(LayerId)
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> ModelStats {
        let mut s = ModelStats {
            weight_layer_count: self.weight_layers.len(),
            layer_count: self.layers.len(),
            ..ModelStats::default()
        };
        for wl in &self.weight_layers {
            s.total_macs += wl.macs;
            s.total_weights += wl.weights;
        }
        for shape in &self.shapes {
            s.peak_activation = s.peak_activation.max(shape.elements());
            s.total_activations += shape.elements() as u64;
        }
        s
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        write!(
            f,
            "{} ({} layers, {} weighted, {:.2} GMACs, {:.1} M weights, {})",
            self.name,
            st.layer_count,
            st.weight_layer_count,
            st.total_macs as f64 / 1e9,
            st.total_weights as f64 / 1e6,
            self.precision
        )
    }
}

/// Incremental constructor for [`Model`].
///
/// Layers may only reference previously-added layers, so the graph is acyclic
/// by construction and insertion order is a valid topological order.
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
    precision: Precision,
}

impl ModelBuilder {
    /// Starts a model with the given name and input tensor shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self {
            name: name.into(),
            input,
            layers: Vec::new(),
            precision: Precision::int16(),
        }
    }

    /// Sets the quantization metadata (defaults to 16-bit).
    pub fn precision(&mut self, precision: Precision) -> &mut Self {
        self.precision = precision;
        self
    }

    /// Adds an arbitrary layer. `inputs` must reference already-added layers;
    /// an empty list connects the layer to the model input.
    pub fn layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: Vec<LayerId>,
    ) -> LayerId {
        let id = LayerId(self.layers.len());
        self.layers.push(Layer {
            name: name.into(),
            kind,
            inputs,
        });
        id
    }

    /// Adds a conv layer. `input == None` connects to the model input.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        input: Option<LayerId>,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> LayerId {
        self.layer(
            name,
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups: 1,
            },
            input.into_iter().collect(),
        )
    }

    /// Adds a grouped conv layer (`groups` must divide both the input and
    /// output channel counts; validated by [`build`](ModelBuilder::build)).
    #[allow(clippy::too_many_arguments)]
    pub fn grouped_conv(
        &mut self,
        name: impl Into<String>,
        input: Option<LayerId>,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> LayerId {
        self.layer(
            name,
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            },
            input.into_iter().collect(),
        )
    }

    /// Adds a depthwise conv layer: one filter per channel
    /// (`groups == in_channels == out_channels`).
    pub fn depthwise_conv(
        &mut self,
        name: impl Into<String>,
        input: LayerId,
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> LayerId {
        self.grouped_conv(
            name,
            Some(input),
            channels,
            kernel,
            stride,
            padding,
            channels,
        )
    }

    /// Adds a fully-connected layer.
    pub fn linear(
        &mut self,
        name: impl Into<String>,
        input: LayerId,
        out_features: usize,
    ) -> LayerId {
        self.layer(name, LayerKind::Linear { out_features }, vec![input])
    }

    /// Adds a position-wise matmul projection (attention-style q/k/v/o).
    pub fn matmul(
        &mut self,
        name: impl Into<String>,
        input: LayerId,
        out_features: usize,
    ) -> LayerId {
        self.layer(name, LayerKind::MatMul { out_features }, vec![input])
    }

    /// Adds a ReLU activation.
    pub fn relu(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::Relu, vec![input])
    }

    /// Adds a batch-norm layer (folded at inference time).
    pub fn batch_norm(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::BatchNorm, vec![input])
    }

    /// Adds a max-pooling layer.
    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        input: LayerId,
        kernel: usize,
        stride: usize,
    ) -> LayerId {
        self.layer(
            name,
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel,
                stride,
            },
            vec![input],
        )
    }

    /// Adds an average-pooling layer.
    pub fn avg_pool(
        &mut self,
        name: impl Into<String>,
        input: LayerId,
        kernel: usize,
        stride: usize,
    ) -> LayerId {
        self.layer(
            name,
            LayerKind::Pool {
                kind: PoolKind::Avg,
                kernel,
                stride,
            },
            vec![input],
        )
    }

    /// Adds a global-average-pooling layer.
    pub fn global_avg_pool(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::GlobalAvgPool, vec![input])
    }

    /// Adds a residual addition of two producers.
    pub fn add(&mut self, name: impl Into<String>, lhs: LayerId, rhs: LayerId) -> LayerId {
        self.layer(name, LayerKind::Add, vec![lhs, rhs])
    }

    /// Adds an elementwise multiplication of two producers (equal shapes, or
    /// a `Cx1x1` gate broadcast over a `CxHxW` tensor).
    pub fn mul(&mut self, name: impl Into<String>, lhs: LayerId, rhs: LayerId) -> LayerId {
        self.layer(name, LayerKind::Mul, vec![lhs, rhs])
    }

    /// Adds a sigmoid activation (squeeze-excite gate).
    pub fn sigmoid(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::Sigmoid, vec![input])
    }

    /// Adds a channel-wise softmax (attention-score normalization).
    pub fn softmax(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::Softmax, vec![input])
    }

    /// Adds a flatten (reshape) layer.
    pub fn flatten(&mut self, name: impl Into<String>, input: LayerId) -> LayerId {
        self.layer(name, LayerKind::Flatten, vec![input])
    }

    /// Validates the graph, infers shapes, and produces the final [`Model`].
    ///
    /// # Errors
    ///
    /// - [`ModelError::EmptyModel`] if no layers were added.
    /// - [`ModelError::UnknownLayer`] if a layer references an id that was
    ///   never created (impossible through the typed API, guarded anyway).
    /// - [`ModelError::ShapeMismatch`] if a kernel exceeds its padded input.
    /// - [`ModelError::AddShapeMismatch`] if a residual add combines tensors
    ///   of different shapes.
    pub fn build(self) -> Result<Model, ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        let mut names: HashMap<&str, usize> = HashMap::new();
        for (i, l) in self.layers.iter().enumerate() {
            if let Some(prev) = names.insert(l.name.as_str(), i) {
                return Err(ModelError::Ingest {
                    detail: format!("duplicate layer name `{}` (layers {prev} and {i})", l.name),
                });
            }
        }
        let shapes = infer_shapes(&self.layers, self.input)?;
        let weight_layers = extract_weight_layers(&self.layers, &shapes, self.input);
        Ok(Model {
            name: self.name,
            input: self.input,
            layers: self.layers,
            shapes,
            weight_layers,
            precision: self.precision,
        })
    }
}

/// Output shape of an elementwise [`LayerKind::Mul`]: equal shapes multiply
/// pointwise; a per-channel `Cx1x1` gate broadcasts over a `CxHxW` operand
/// (either order). `None` when neither rule applies.
fn mul_output_shape(lhs: TensorShape, rhs: TensorShape) -> Option<TensorShape> {
    if lhs == rhs {
        return Some(lhs);
    }
    if lhs.channels != rhs.channels {
        return None;
    }
    if lhs.height == 1 && lhs.width == 1 {
        return Some(rhs);
    }
    if rhs.height == 1 && rhs.width == 1 {
        return Some(lhs);
    }
    None
}

fn pooled_extent(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if kernel == 0 || stride == 0 || kernel > padded {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

fn infer_shapes(layers: &[Layer], input: TensorShape) -> Result<Vec<TensorShape>, ModelError> {
    let mut shapes: Vec<TensorShape> = Vec::with_capacity(layers.len());
    for (i, layer) in layers.iter().enumerate() {
        for &LayerId(p) in &layer.inputs {
            if p >= i {
                return Err(ModelError::UnknownLayer {
                    reference: format!("L{p}"),
                });
            }
        }
        let in_shape = match layer.inputs.first() {
            Some(&LayerId(p)) => shapes[p],
            None => input,
        };
        let out = match layer.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                if groups == 0 {
                    return Err(ModelError::ShapeMismatch {
                        layer: layer.name.clone(),
                        detail: "conv groups must be at least 1".to_string(),
                    });
                }
                if in_shape.channels % groups != 0 || out_channels % groups != 0 {
                    return Err(ModelError::ShapeMismatch {
                        layer: layer.name.clone(),
                        detail: format!(
                            "groups {groups} must divide input channels {} and \
                             output channels {out_channels}",
                            in_shape.channels
                        ),
                    });
                }
                let h = pooled_extent(in_shape.height, kernel, stride, padding);
                let w = pooled_extent(in_shape.width, kernel, stride, padding);
                match (h, w) {
                    (Some(h), Some(w)) => TensorShape::new(out_channels, h, w),
                    _ => {
                        return Err(ModelError::ShapeMismatch {
                            layer: layer.name.clone(),
                            detail: format!(
                                "kernel {kernel} stride {stride} padding {padding} \
                                 does not fit input {in_shape}"
                            ),
                        })
                    }
                }
            }
            LayerKind::Linear { out_features } => TensorShape::flat(out_features),
            LayerKind::MatMul { out_features } => {
                TensorShape::new(out_features, in_shape.height, in_shape.width)
            }
            LayerKind::Pool { kernel, stride, .. } => {
                let h = pooled_extent(in_shape.height, kernel, stride, 0);
                let w = pooled_extent(in_shape.width, kernel, stride, 0);
                match (h, w) {
                    (Some(h), Some(w)) => TensorShape::new(in_shape.channels, h, w),
                    _ => {
                        return Err(ModelError::ShapeMismatch {
                            layer: layer.name.clone(),
                            detail: format!(
                                "pool window {kernel} stride {stride} does not fit \
                                 input {in_shape}"
                            ),
                        })
                    }
                }
            }
            LayerKind::GlobalAvgPool => TensorShape::new(in_shape.channels, 1, 1),
            LayerKind::Relu | LayerKind::BatchNorm | LayerKind::Sigmoid | LayerKind::Softmax => {
                in_shape
            }
            LayerKind::Mul => {
                if layer.inputs.len() != 2 {
                    return Err(ModelError::Ingest {
                        detail: format!(
                            "mul layer `{}` needs exactly 2 inputs, got {}",
                            layer.name,
                            layer.inputs.len()
                        ),
                    });
                }
                let rhs = shapes[layer.inputs[1].0];
                mul_output_shape(in_shape, rhs).ok_or_else(|| ModelError::ShapeMismatch {
                    layer: layer.name.clone(),
                    detail: format!(
                        "mul operands {in_shape} and {rhs} are neither equal nor a \
                         Cx1x1 gate over a CxHxW tensor"
                    ),
                })?
            }
            LayerKind::Add => {
                if layer.inputs.len() != 2 {
                    return Err(ModelError::Ingest {
                        detail: format!(
                            "add layer `{}` needs exactly 2 inputs, got {}",
                            layer.name,
                            layer.inputs.len()
                        ),
                    });
                }
                let rhs = shapes[layer.inputs[1].0];
                if in_shape != rhs {
                    return Err(ModelError::AddShapeMismatch {
                        layer: layer.name.clone(),
                        lhs: in_shape.as_tuple(),
                        rhs: rhs.as_tuple(),
                    });
                }
                in_shape
            }
            LayerKind::Flatten => TensorShape::flat(in_shape.elements()),
        };
        shapes.push(out);
    }
    Ok(shapes)
}

fn extract_weight_layers(
    layers: &[Layer],
    shapes: &[TensorShape],
    input: TensorShape,
) -> Vec<WeightLayer> {
    // Dense index of each weight-bearing graph layer.
    let mut windex: HashMap<usize, usize> = HashMap::new();
    let mut out: Vec<WeightLayer> = Vec::new();

    for (i, layer) in layers.iter().enumerate() {
        let in_shape = match layer.inputs.first() {
            Some(&LayerId(p)) => shapes[p],
            None => input,
        };
        let (kernel, stride, in_channels, out_channels, groups) = match layer.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                groups,
                ..
            } => (kernel, stride, in_shape.channels, out_channels, groups),
            LayerKind::Linear { out_features } => (1, 1, in_shape.elements(), out_features, 1),
            LayerKind::MatMul { out_features } => (1, 1, in_shape.channels, out_features, 1),
            _ => continue,
        };
        let out_shape = shapes[i];
        // Each filter spans CI/groups input channels, so MACs and weights
        // shrink by the group count (the depthwise saving).
        let macs = out_shape.spatial() as u64
            * out_channels as u64
            * (kernel * kernel) as u64
            * (in_channels / groups) as u64;
        let weights =
            out_channels as u64 * (kernel * kernel) as u64 * (in_channels / groups) as u64;
        let index = out.len();
        windex.insert(i, index);
        let (in_height, in_width) = if matches!(layer.kind, LayerKind::Linear { .. }) {
            (1, 1)
        } else {
            (in_shape.height, in_shape.width)
        };
        out.push(WeightLayer {
            id: LayerId(i),
            name: layer.name.clone(),
            index,
            kernel,
            stride,
            in_channels,
            out_channels,
            groups,
            in_height,
            in_width,
            out_height: out_shape.height,
            out_width: out_shape.width,
            macs,
            weights,
            relu: false,
            pool: None,
            feeds_add: false,
            producers: Vec::new(),
            consumers: Vec::new(),
        });
    }

    // Walk the graph to fuse post-ops and build the weight-layer-to-weight-
    // layer producer/consumer relation (skipping through relu/pool/bn/add/
    // flatten nodes).
    //
    // `origin[i]` = set of weight-layer indices whose value flows into graph
    // layer i's output without passing another weight layer.
    let mut origin: Vec<Vec<usize>> = vec![Vec::new(); layers.len()];
    for (i, layer) in layers.iter().enumerate() {
        if let Some(&w) = windex.get(&i) {
            // A weight layer's producers are the origins of its inputs.
            let mut prods: Vec<usize> = Vec::new();
            for &LayerId(p) in &layer.inputs {
                for &o in &origin[p] {
                    if !prods.contains(&o) {
                        prods.push(o);
                    }
                }
            }
            for &p in &prods {
                if !out[p].consumers.contains(&w) {
                    out[p].consumers.push(w);
                }
            }
            out[w].producers = prods;
            origin[i] = vec![w];
        } else {
            let mut combined: Vec<usize> = Vec::new();
            for &LayerId(p) in &layer.inputs {
                for &o in &origin[p] {
                    if !combined.contains(&o) {
                        combined.push(o);
                    }
                }
            }
            match layer.kind {
                // Sigmoid/softmax share ReLU's ALU scheduling and cost class,
                // so they fuse into the same activation slot.
                LayerKind::Relu | LayerKind::Sigmoid | LayerKind::Softmax => {
                    for &o in &combined {
                        out[o].relu = true;
                    }
                }
                LayerKind::Pool { kind, kernel, .. } => {
                    for &o in &combined {
                        out[o].pool = Some((kind, kernel));
                    }
                }
                LayerKind::GlobalAvgPool => {
                    for &o in &combined {
                        let window = shapes[layer.inputs[0].0].height;
                        out[o].pool = Some((PoolKind::Avg, window));
                    }
                }
                // Mul shares Add's eltwise ALU cost class (one vector op per
                // output element), so it reuses the same scheduling flag.
                LayerKind::Add | LayerKind::Mul => {
                    for &o in &combined {
                        out[o].feeds_add = true;
                    }
                }
                _ => {}
            }
            origin[i] = combined;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelBuilder {
        ModelBuilder::new("t", TensorShape::new(3, 32, 32))
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(tiny().build().unwrap_err(), ModelError::EmptyModel);
    }

    #[test]
    fn conv_shape_inference() {
        let mut b = tiny();
        b.conv("c", None, 16, 3, 1, 1);
        let m = b.build().unwrap();
        assert_eq!(m.output_shape(LayerId(0)), TensorShape::new(16, 32, 32));
    }

    #[test]
    fn strided_conv_shape() {
        let mut b = ModelBuilder::new("t", TensorShape::new(3, 224, 224));
        b.conv("c", None, 96, 11, 4, 2);
        let m = b.build().unwrap();
        // AlexNet conv1: (224 + 4 - 11)/4 + 1 = 55.
        assert_eq!(m.output_shape(LayerId(0)), TensorShape::new(96, 55, 55));
    }

    #[test]
    fn oversized_kernel_rejected() {
        let mut b = tiny();
        b.conv("c", None, 16, 64, 1, 0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn pool_shape() {
        let mut b = tiny();
        let c = b.conv("c", None, 8, 3, 1, 1);
        b.max_pool("p", c, 2, 2);
        let m = b.build().unwrap();
        assert_eq!(m.output_shape(LayerId(1)), TensorShape::new(8, 16, 16));
    }

    #[test]
    fn linear_flattens_input() {
        let mut b = tiny();
        let c = b.conv("c", None, 8, 3, 1, 1);
        let f = b.flatten("f", c);
        b.linear("fc", f, 10);
        let m = b.build().unwrap();
        let wl = m.weight_layer(1);
        assert_eq!(wl.in_channels, 8 * 32 * 32);
        assert_eq!(wl.out_channels, 10);
        assert_eq!(wl.kernel, 1);
        assert_eq!(wl.output_positions(), 1);
    }

    #[test]
    fn add_shape_mismatch_detected() {
        let mut b = tiny();
        let a = b.conv("a", None, 8, 3, 1, 1);
        let c = b.conv("b", None, 16, 3, 1, 1);
        b.add("add", a, c);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::AddShapeMismatch { .. }
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = tiny();
        let c = b.conv("x", None, 8, 3, 1, 1);
        b.relu("x", c);
        assert!(matches!(b.build().unwrap_err(), ModelError::Ingest { .. }));
    }

    #[test]
    fn relu_and_pool_fusion() {
        let mut b = tiny();
        let c = b.conv("c", None, 8, 3, 1, 1);
        let r = b.relu("r", c);
        b.max_pool("p", r, 2, 2);
        let m = b.build().unwrap();
        let wl = m.weight_layer(0);
        assert!(wl.relu);
        assert_eq!(wl.pool, Some((PoolKind::Max, 2)));
    }

    #[test]
    fn producer_consumer_relation_through_post_ops() {
        let mut b = tiny();
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        let c2 = b.conv("c2", Some(p1), 16, 3, 1, 1);
        let f = b.flatten("f", c2);
        b.linear("fc", f, 10);
        let m = b.build().unwrap();
        assert_eq!(m.weight_layer(0).producers, Vec::<usize>::new());
        assert_eq!(m.weight_layer(0).consumers, vec![1]);
        assert_eq!(m.weight_layer(1).producers, vec![0]);
        assert_eq!(m.weight_layer(2).producers, vec![1]);
    }

    #[test]
    fn residual_block_relation() {
        // c1 -> c2 -> add(c1_path, c2) pattern like ResNet.
        let mut b = tiny();
        let c1 = b.conv("c1", None, 8, 3, 1, 1);
        let c2 = b.conv("c2", Some(c1), 8, 3, 1, 1);
        let add = b.add("add", c1, c2);
        let r = b.relu("r", add);
        b.conv("c3", Some(r), 8, 3, 1, 1);
        let m = b.build().unwrap();
        assert!(m.weight_layer(0).feeds_add);
        assert!(m.weight_layer(1).feeds_add);
        // c3 sees both c1 and c2 as producers (through the add).
        let mut prods = m.weight_layer(2).producers.clone();
        prods.sort_unstable();
        assert_eq!(prods, vec![0, 1]);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = tiny();
        let c = b.conv("c", None, 8, 3, 1, 1); // 32*32*8*3*3*3 macs
        let f = b.flatten("f", c);
        b.linear("fc", f, 10);
        let m = b.build().unwrap();
        let st = m.stats();
        assert_eq!(st.weight_layer_count, 2);
        let conv_macs = 32 * 32 * 8 * 9 * 3;
        let fc_macs = 8 * 32 * 32 * 10;
        assert_eq!(st.total_macs, (conv_macs + fc_macs) as u64);
    }

    #[test]
    fn access_volume_matches_eq4() {
        let mut b = tiny();
        b.conv("c", None, 8, 3, 1, 1);
        let m = b.build().unwrap();
        let wl = m.weight_layer(0);
        // WtDup * (WK*WK*CI + CO) = 4 * (27 + 8)
        assert_eq!(wl.access_volume(4), 4 * (27 + 8));
    }

    #[test]
    fn depthwise_conv_semantics() {
        let mut b = tiny();
        let c = b.conv("c", None, 32, 3, 1, 1);
        b.depthwise_conv("dw", c, 32, 3, 1, 1);
        let m = b.build().unwrap();
        let wl = m.weight_layer(1);
        assert_eq!(wl.groups, 32);
        // One 3x3 filter per channel: 9 rows per crossbar column.
        assert_eq!(wl.filter_rows(), 9);
        assert_eq!(wl.input_window(), 9 * 32);
        assert_eq!(wl.weights, 32 * 9);
        assert_eq!(wl.macs, (32 * 32 * 32 * 9) as u64);
    }

    #[test]
    fn grouped_conv_divisibility_enforced() {
        let mut b = tiny();
        let c = b.conv("c", None, 32, 3, 1, 1);
        b.grouped_conv("g", Some(c), 48, 3, 1, 1, 5);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn matmul_preserves_spatial_extent() {
        let mut b = ModelBuilder::new("t", TensorShape::new(64, 16, 1));
        let emb = b.layer("emb", LayerKind::MatMul { out_features: 64 }, vec![]);
        b.matmul("q", emb, 32);
        let m = b.build().unwrap();
        assert_eq!(m.output_shape(LayerId(1)), TensorShape::new(32, 16, 1));
        let wl = m.weight_layer(1);
        assert_eq!(wl.in_channels, 64);
        assert_eq!(wl.out_channels, 32);
        assert_eq!(wl.output_positions(), 16);
        assert_eq!(wl.weights, 64 * 32);
    }

    #[test]
    fn mul_broadcast_and_fusion() {
        // Squeeze-excite shape: trunk CxHxW gated by a Cx1x1 sigmoid path.
        let mut b = tiny();
        let trunk = b.conv("trunk", None, 16, 3, 1, 1);
        let gap = b.global_avg_pool("gap", trunk);
        let fc = b.matmul("fc", gap, 16);
        let sig = b.sigmoid("sig", fc);
        b.mul("scale", trunk, sig);
        let m = b.build().unwrap();
        assert_eq!(
            m.output_shape(m.layer_by_name("scale").unwrap()),
            TensorShape::new(16, 32, 32)
        );
        // The gate matmul gets the fused sigmoid; both producers feed the mul.
        assert!(m.weight_layer(1).relu);
        assert!(m.weight_layer(0).feeds_add);
        assert!(m.weight_layer(1).feeds_add);
    }

    #[test]
    fn mul_rejects_incompatible_shapes() {
        let mut b = tiny();
        let a = b.conv("a", None, 8, 3, 1, 1);
        let c = b.conv("b", None, 8, 3, 2, 1);
        b.mul("m", a, c);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn precision_validation() {
        assert!(Precision::new(0, 8).is_err());
        assert!(Precision::new(8, 33).is_err());
        assert_eq!(Precision::new(16, 16).unwrap(), Precision::int16());
    }

    #[test]
    fn model_display_mentions_name() {
        let mut b = tiny();
        b.conv("c", None, 8, 3, 1, 1);
        let m = b.build().unwrap();
        assert!(m.to_string().contains('t'));
    }
}
