use std::fmt;

/// Shape of an activation tensor in `C x H x W` layout (batch size is always
/// one: PIM inference accelerators in the PIMSYN template process a single
/// image through the inter-layer pipeline).
///
/// # Example
///
/// ```
/// use pimsyn_model::TensorShape;
///
/// let s = TensorShape::new(3, 224, 224);
/// assert_eq!(s.elements(), 3 * 224 * 224);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Number of channels (`C`).
    pub channels: usize,
    /// Spatial height (`H`).
    pub height: usize,
    /// Spatial width (`W`).
    pub width: usize,
}

impl TensorShape {
    /// Creates a shape from channel count and spatial extents.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates a flat (vector) shape as produced by `Flatten` or `Linear`
    /// layers: `C x 1 x 1`.
    pub fn flat(elements: usize) -> Self {
        Self {
            channels: elements,
            height: 1,
            width: 1,
        }
    }

    /// Total number of scalar elements in the tensor.
    pub fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of spatial positions (`H x W`).
    pub fn spatial(&self) -> usize {
        self.height * self.width
    }

    /// Whether this is a flat vector shape (`H == W == 1`).
    pub fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Shape as a `(channels, height, width)` tuple, convenient for error
    /// reporting and comparisons.
    pub fn as_tuple(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

impl From<(usize, usize, usize)> for TensorShape {
    fn from((channels, height, width): (usize, usize, usize)) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_multiplies_dimensions() {
        assert_eq!(TensorShape::new(3, 224, 224).elements(), 150_528);
        assert_eq!(TensorShape::new(512, 7, 7).elements(), 25_088);
    }

    #[test]
    fn flat_shapes() {
        let s = TensorShape::flat(4096);
        assert!(s.is_flat());
        assert_eq!(s.elements(), 4096);
        assert_eq!(s.spatial(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(TensorShape::new(64, 56, 56).to_string(), "64x56x56");
    }

    #[test]
    fn tuple_round_trip() {
        let s = TensorShape::from((16, 8, 4));
        assert_eq!(s.as_tuple(), (16, 8, 4));
    }
}
