use crate::{LayerId, Model, ModelBuilder, TensorShape};

/// Appends `count` 3x3 conv+relu pairs of width `channels`, then a 2x2/2
/// max-pool, returning the pool's id.
fn vgg_stage(
    b: &mut ModelBuilder,
    stage: usize,
    input: Option<LayerId>,
    channels: usize,
    count: usize,
) -> LayerId {
    let mut cur = input;
    for i in 1..=count {
        let c = b.conv(format!("conv{stage}_{i}"), cur, channels, 3, 1, 1);
        let r = b.relu(format!("relu{stage}_{i}"), c);
        cur = Some(r);
    }
    b.max_pool(
        format!("pool{stage}"),
        cur.expect("stage has at least one conv"),
        2,
        2,
    )
}

fn vgg_classifier(b: &mut ModelBuilder, input: LayerId, hidden: usize, classes: usize) {
    let f = b.flatten("flatten", input);
    let fc1 = b.linear("fc1", f, hidden);
    let r1 = b.relu("relu_fc1", fc1);
    let fc2 = b.linear("fc2", r1, hidden);
    let r2 = b.relu("relu_fc2", fc2);
    b.linear("fc3", r2, classes);
}

/// VGG13 for 3x224x224 ImageNet inputs (13 weight layers: 10 conv + 3 fc).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::vgg13();
/// assert_eq!(m.weight_layers().count(), 13);
/// ```
pub fn vgg13() -> Model {
    let mut b = ModelBuilder::new("vgg13", TensorShape::new(3, 224, 224));
    let p1 = vgg_stage(&mut b, 1, None, 64, 2);
    let p2 = vgg_stage(&mut b, 2, Some(p1), 128, 2);
    let p3 = vgg_stage(&mut b, 3, Some(p2), 256, 2);
    let p4 = vgg_stage(&mut b, 4, Some(p3), 512, 2);
    let p5 = vgg_stage(&mut b, 5, Some(p4), 512, 2);
    vgg_classifier(&mut b, p5, 4096, 1000);
    b.build().expect("static vgg13 definition is valid")
}

/// VGG16 for 3x224x224 ImageNet inputs (16 weight layers: 13 conv + 3 fc).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::vgg16();
/// assert_eq!(m.weight_layers().count(), 16);
/// ```
pub fn vgg16() -> Model {
    let mut b = ModelBuilder::new("vgg16", TensorShape::new(3, 224, 224));
    let p1 = vgg_stage(&mut b, 1, None, 64, 2);
    let p2 = vgg_stage(&mut b, 2, Some(p1), 128, 2);
    let p3 = vgg_stage(&mut b, 3, Some(p2), 256, 3);
    let p4 = vgg_stage(&mut b, 4, Some(p3), 512, 3);
    let p5 = vgg_stage(&mut b, 5, Some(p4), 512, 3);
    vgg_classifier(&mut b, p5, 4096, 1000);
    b.build().expect("static vgg16 definition is valid")
}

/// CIFAR-adapted VGG16 for 3x32x32 inputs (16 weight layers, 512-wide
/// classifier), used in the Table V comparison against Gibbon.
pub fn vgg16_cifar(classes: usize) -> Model {
    let mut b = ModelBuilder::new("vgg16-cifar", TensorShape::new(3, 32, 32));
    let p1 = vgg_stage(&mut b, 1, None, 64, 2); // 32 -> 16
    let p2 = vgg_stage(&mut b, 2, Some(p1), 128, 2); // 16 -> 8
    let p3 = vgg_stage(&mut b, 3, Some(p2), 256, 3); // 8 -> 4
    let p4 = vgg_stage(&mut b, 4, Some(p3), 512, 3); // 4 -> 2
    let p5 = vgg_stage(&mut b, 5, Some(p4), 512, 3); // 2 -> 1
    vgg_classifier(&mut b, p5, 512, classes);
    b.build().expect("static vgg16-cifar definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_stage_shapes() {
        let m = vgg16();
        // conv3_1 input is 128x56x56; conv5_3 output is 512x14x14.
        let c31 = m.weight_layers().find(|w| w.name == "conv3_1").unwrap();
        assert_eq!((c31.in_channels, c31.in_height), (128, 56));
        let c53 = m.weight_layers().find(|w| w.name == "conv5_3").unwrap();
        assert_eq!((c53.out_channels, c53.out_height), (512, 14));
        let fc1 = m.weight_layers().find(|w| w.name == "fc1").unwrap();
        assert_eq!(fc1.in_channels, 512 * 7 * 7);
    }

    #[test]
    fn vgg13_has_two_convs_per_stage() {
        let m = vgg13();
        let convs = m.weight_layers().filter(|w| w.kernel == 3).count();
        assert_eq!(convs, 10);
    }

    #[test]
    fn cifar_vgg_spatial_collapse() {
        let m = vgg16_cifar(10);
        let fc1 = m.weight_layers().find(|w| w.name == "fc1").unwrap();
        assert_eq!(fc1.in_channels, 512); // 512 x 1 x 1 after five pools
    }

    #[test]
    fn conv_weight_layers_all_relu_fused() {
        for wl in vgg16().weight_layers().filter(|w| w.kernel == 3) {
            assert!(wl.relu, "{}", wl.name);
        }
    }
}
