use crate::{LayerId, Model, ModelBuilder, TensorShape};

/// Appends one ResNet basic block (two 3x3 convs with batch-norm and a
/// residual connection). When `stride > 1` or the width changes, the skip
/// path gets a 1x1 projection conv, as in the canonical network.
fn basic_block(
    b: &mut ModelBuilder,
    name: &str,
    input: LayerId,
    in_channels: usize,
    channels: usize,
    stride: usize,
) -> LayerId {
    let c1 = b.conv(format!("{name}_conv1"), Some(input), channels, 3, stride, 1);
    let n1 = b.batch_norm(format!("{name}_bn1"), c1);
    let r1 = b.relu(format!("{name}_relu1"), n1);
    let c2 = b.conv(format!("{name}_conv2"), Some(r1), channels, 3, 1, 1);
    let n2 = b.batch_norm(format!("{name}_bn2"), c2);

    let skip = if stride != 1 || in_channels != channels {
        let ds = b.conv(format!("{name}_down"), Some(input), channels, 1, stride, 0);
        b.batch_norm(format!("{name}_bn_down"), ds)
    } else {
        input
    };
    let add = b.add(format!("{name}_add"), n2, skip);
    b.relu(format!("{name}_relu2"), add)
}

/// ResNet18 for 3x224x224 ImageNet inputs: 21 weight layers (17 stage convs,
/// 3 downsample projections, 1 fc... counted as 20 convs + 1 fc).
///
/// The stem max-pool is 2x2/2 (the canonical padded 3x3/2 yields the same
/// 112 -> 56 halving; the layer set intentionally omits pool padding).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::resnet18();
/// assert_eq!(m.weight_layers().count(), 21);
/// ```
pub fn resnet18() -> Model {
    let mut b = ModelBuilder::new("resnet18", TensorShape::new(3, 224, 224));

    let c1 = b.conv("conv1", None, 64, 7, 2, 3); // 224 -> 112
    let n1 = b.batch_norm("bn1", c1);
    let r1 = b.relu("relu1", n1);
    let p1 = b.max_pool("pool1", r1, 2, 2); // 112 -> 56

    let mut cur = p1;
    let mut width = 64;
    for (stage, channels) in [(1usize, 64usize), (2, 128), (3, 256), (4, 512)] {
        for block in 1..=2usize {
            let stride = if stage > 1 && block == 1 { 2 } else { 1 };
            cur = basic_block(
                &mut b,
                &format!("s{stage}b{block}"),
                cur,
                width,
                channels,
                stride,
            );
            width = channels;
        }
    }

    let gap = b.global_avg_pool("gap", cur);
    let f = b.flatten("flatten", gap);
    b.linear("fc", f, 1000);

    b.build().expect("static resnet18 definition is valid")
}

/// CIFAR-adapted ResNet18 for 3x32x32 inputs: 3x3/1 stem without pooling,
/// stages at 32/16/8/4 spatial extents, `classes`-wide classifier.
pub fn resnet18_cifar(classes: usize) -> Model {
    let mut b = ModelBuilder::new("resnet18-cifar", TensorShape::new(3, 32, 32));

    let c1 = b.conv("conv1", None, 64, 3, 1, 1); // 32 -> 32
    let n1 = b.batch_norm("bn1", c1);
    let r1 = b.relu("relu1", n1);

    let mut cur = r1;
    let mut width = 64;
    for (stage, channels) in [(1usize, 64usize), (2, 128), (3, 256), (4, 512)] {
        for block in 1..=2usize {
            let stride = if stage > 1 && block == 1 { 2 } else { 1 };
            cur = basic_block(
                &mut b,
                &format!("s{stage}b{block}"),
                cur,
                width,
                channels,
                stride,
            );
            width = channels;
        }
    }

    let gap = b.global_avg_pool("gap", cur);
    let f = b.flatten("flatten", gap);
    b.linear("fc", f, classes);

    b.build()
        .expect("static resnet18-cifar definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_resolutions() {
        let m = resnet18();
        let s1 = m.weight_layers().find(|w| w.name == "s1b1_conv1").unwrap();
        assert_eq!(s1.out_height, 56);
        let s4 = m.weight_layers().find(|w| w.name == "s4b2_conv2").unwrap();
        assert_eq!(s4.out_height, 7);
    }

    #[test]
    fn downsample_projections_exist() {
        let m = resnet18();
        let downs: Vec<_> = m
            .weight_layers()
            .filter(|w| w.name.ends_with("_down"))
            .map(|w| w.kernel)
            .collect();
        assert_eq!(downs, vec![1, 1, 1]);
    }

    #[test]
    fn residual_convs_feed_adds() {
        let m = resnet18();
        let c2 = m.weight_layers().find(|w| w.name == "s1b1_conv2").unwrap();
        assert!(c2.feeds_add);
    }

    #[test]
    fn fc_follows_gap() {
        let m = resnet18();
        let fc = m.weight_layers().find(|w| w.name == "fc").unwrap();
        assert_eq!(fc.in_channels, 512);
    }

    #[test]
    fn cifar_keeps_full_resolution_in_stage1() {
        let m = resnet18_cifar(10);
        let s1 = m.weight_layers().find(|w| w.name == "s1b1_conv1").unwrap();
        assert_eq!(s1.out_height, 32);
        let s4 = m.weight_layers().find(|w| w.name == "s4b2_conv2").unwrap();
        assert_eq!(s4.out_height, 4);
    }

    #[test]
    fn residual_producers_cross_blocks() {
        // s1b2's first conv must see s1b1's two branch convs as producers.
        let m = resnet18();
        let c = m.weight_layers().find(|w| w.name == "s1b2_conv1").unwrap();
        assert!(c.producers.len() >= 2, "producers: {:?}", c.producers);
    }
}
