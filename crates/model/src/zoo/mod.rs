//! Programmatic constructors for the paper's benchmark networks.
//!
//! The evaluation section of PIMSYN uses AlexNet, VGG13, VGG16, MSRA and
//! ResNet18 with 16-bit quantification (Sec. V), plus CIFAR-10/100-sized
//! AlexNet/VGG16/ResNet18 for the comparison against Gibbon (Table V).
//!
//! Architectural notes and deliberate approximations:
//!
//! - **AlexNet** is the single-tower variant (Krizhevsky et al., as commonly
//!   re-implemented for one device).
//! - **MSRA** follows model A of He et al., ICCV'15 ("Delving Deep into
//!   Rectifiers"): a 7x7/2 stem followed by three 5-conv stages, 19 weight
//!   layers total. PReLU is represented as ReLU (identical ALU cost class).
//! - **ResNet18** uses 2x2/2 stem pooling instead of padded 3x3/2 (the graph
//!   layer set intentionally omits pool padding); spatial sizes match the
//!   canonical network at every stage boundary.
//! - **CIFAR variants** use the community-standard 32x32 adaptations.
//!
//! # Example
//!
//! ```
//! use pimsyn_model::zoo;
//!
//! for model in zoo::imagenet_suite() {
//!     assert_eq!(model.input_shape().height, 224);
//! }
//! let r18 = zoo::by_name("resnet18").expect("registered");
//! assert_eq!(r18.weight_layers().count(), 21);
//! ```

mod alexnet;
mod msra;
mod resnet;
mod vgg;

pub use alexnet::{alexnet, alexnet_cifar};
pub use msra::msra;
pub use resnet::{resnet18, resnet18_cifar};
pub use vgg::{vgg13, vgg16, vgg16_cifar};

use crate::Model;

/// The five ImageNet-scale benchmarks of the paper's Fig. 6, in the order
/// they are reported.
pub fn imagenet_suite() -> Vec<Model> {
    vec![alexnet(), vgg13(), vgg16(), msra(), resnet18()]
}

/// The CIFAR-scale benchmarks of Table V (10-class variants; 100-class
/// variants only change the classifier width).
pub fn cifar_suite() -> Vec<Model> {
    vec![alexnet_cifar(10), vgg16_cifar(10), resnet18_cifar(10)]
}

/// Looks up a zoo model by its canonical lowercase name.
///
/// Recognized names: `alexnet`, `vgg13`, `vgg16`, `msra`, `resnet18`,
/// `alexnet-cifar`, `vgg16-cifar`, `resnet18-cifar`.
pub fn by_name(name: &str) -> Option<Model> {
    match name {
        "alexnet" => Some(alexnet()),
        "vgg13" => Some(vgg13()),
        "vgg16" => Some(vgg16()),
        "msra" => Some(msra()),
        "resnet18" => Some(resnet18()),
        "alexnet-cifar" => Some(alexnet_cifar(10)),
        "vgg16-cifar" => Some(vgg16_cifar(10)),
        "resnet18-cifar" => Some(resnet18_cifar(10)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes() {
        assert_eq!(imagenet_suite().len(), 5);
        assert_eq!(cifar_suite().len(), 3);
    }

    #[test]
    fn by_name_round_trip() {
        for name in ["alexnet", "vgg13", "vgg16", "msra", "resnet18"] {
            let m = by_name(name).expect("registered model");
            assert_eq!(m.name(), name);
        }
        assert!(by_name("lenet").is_none());
    }

    #[test]
    fn all_models_have_classifier_output() {
        for m in imagenet_suite() {
            let last = m.weight_layers().last().expect("weight layers");
            assert_eq!(last.out_channels, 1000, "{}", m.name());
        }
        for m in cifar_suite() {
            let last = m.weight_layers().last().expect("weight layers");
            assert_eq!(last.out_channels, 10, "{}", m.name());
        }
    }

    #[test]
    fn weight_layer_counts_match_literature() {
        assert_eq!(alexnet().weight_layer_count(), 8);
        assert_eq!(vgg13().weight_layer_count(), 13);
        assert_eq!(vgg16().weight_layer_count(), 16);
        assert_eq!(msra().weight_layer_count(), 19);
        assert_eq!(resnet18().weight_layer_count(), 21); // 20 convs + fc
    }

    #[test]
    fn vgg16_mac_count_is_canonical() {
        // VGG16 is ~15.47 GMACs on 224x224 inputs.
        let macs = vgg16().stats().total_macs;
        assert!((15.0e9..16.0e9).contains(&(macs as f64)), "got {macs}");
    }

    #[test]
    fn alexnet_weight_count_is_canonical() {
        // Single-tower AlexNet has ~61M parameters (conv+fc weights).
        let w = alexnet().stats().total_weights;
        assert!((55.0e6..65.0e6).contains(&(w as f64)), "got {w}");
    }

    #[test]
    fn resnet18_macs_are_canonical() {
        // ResNet18 is ~1.8 GMACs.
        let macs = resnet18().stats().total_macs;
        assert!((1.6e9..2.0e9).contains(&(macs as f64)), "got {macs}");
    }
}
