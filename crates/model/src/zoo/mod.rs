//! Programmatic constructors for the paper's benchmark networks.
//!
//! The evaluation section of PIMSYN uses AlexNet, VGG13, VGG16, MSRA and
//! ResNet18 with 16-bit quantification (Sec. V), plus CIFAR-10/100-sized
//! AlexNet/VGG16/ResNet18 for the comparison against Gibbon (Table V).
//!
//! Architectural notes and deliberate approximations:
//!
//! - **AlexNet** is the single-tower variant (Krizhevsky et al., as commonly
//!   re-implemented for one device).
//! - **MSRA** follows model A of He et al., ICCV'15 ("Delving Deep into
//!   Rectifiers"): a 7x7/2 stem followed by three 5-conv stages, 19 weight
//!   layers total. PReLU is represented as ReLU (identical ALU cost class).
//! - **ResNet18** uses 2x2/2 stem pooling instead of padded 3x3/2 (the graph
//!   layer set intentionally omits pool padding); spatial sizes match the
//!   canonical network at every stage boundary.
//! - **CIFAR variants** use the community-standard 32x32 adaptations.
//!
//! # Example
//!
//! ```
//! use pimsyn_model::zoo;
//!
//! for model in zoo::imagenet_suite() {
//!     assert_eq!(model.input_shape().height, 224);
//! }
//! let r18 = zoo::by_name("resnet18").expect("registered");
//! assert_eq!(r18.weight_layers().count(), 21);
//! ```

mod alexnet;
mod modern;
mod msra;
mod resnet;
mod vgg;

pub use alexnet::{alexnet, alexnet_cifar};
pub use modern::{mobilenet, resnet18_se, transformer_tiny};
pub use msra::msra;
pub use resnet::{resnet18, resnet18_cifar};
pub use vgg::{vgg13, vgg16, vgg16_cifar};

use crate::Model;

/// One bundled model: its canonical lookup name, a one-line description for
/// `pimsyn zoo`, and its constructor.
#[derive(Debug, Clone, Copy)]
pub struct ZooEntry {
    /// Canonical lowercase name accepted by [`by_name`].
    pub name: &'static str,
    /// One-line human-readable description.
    pub description: &'static str,
    /// Constructor for a fresh copy of the model.
    pub build: fn() -> Model,
}

/// Every bundled model, in presentation order: the paper's five ImageNet
/// benchmarks, the CIFAR variants of Table V, then the modern-op additions.
pub fn entries() -> &'static [ZooEntry] {
    const ENTRIES: &[ZooEntry] = &[
        ZooEntry {
            name: "alexnet",
            description: "AlexNet (single-tower), 3x224x224, 8 weight layers",
            build: alexnet,
        },
        ZooEntry {
            name: "vgg13",
            description: "VGG13, 3x224x224, 13 weight layers",
            build: vgg13,
        },
        ZooEntry {
            name: "vgg16",
            description: "VGG16, 3x224x224, 16 weight layers",
            build: vgg16,
        },
        ZooEntry {
            name: "msra",
            description: "MSRA model A (He et al. ICCV'15), 3x224x224, 19 weight layers",
            build: msra,
        },
        ZooEntry {
            name: "resnet18",
            description: "ResNet18 with residual adds, 3x224x224, 21 weight layers",
            build: resnet18,
        },
        ZooEntry {
            name: "alexnet-cifar",
            description: "CIFAR-10 AlexNet adaptation, 3x32x32",
            build: || alexnet_cifar(10),
        },
        ZooEntry {
            name: "vgg16-cifar",
            description: "CIFAR-10 VGG16 adaptation, 3x32x32",
            build: || vgg16_cifar(10),
        },
        ZooEntry {
            name: "resnet18-cifar",
            description: "CIFAR-10 ResNet18 adaptation, 3x32x32",
            build: || resnet18_cifar(10),
        },
        ZooEntry {
            name: "mobilenet",
            description: "MobileNet-V1 with depthwise-separable convs, 3x224x224, \
                          28 weight layers",
            build: mobilenet,
        },
        ZooEntry {
            name: "resnet18-se",
            description: "SE-ResNet18 with squeeze-excite gates (sigmoid + broadcast \
                          mul), 3x224x224, 37 weight layers",
            build: resnet18_se,
        },
        ZooEntry {
            name: "transformer-tiny",
            description: "Two-block transformer encoder (attention-style matmuls, \
                          softmax), 64-dim x 16 tokens, 14 weight layers",
            build: transformer_tiny,
        },
    ];
    ENTRIES
}

/// Canonical names of every bundled model, in presentation order.
pub fn names() -> Vec<&'static str> {
    entries().iter().map(|e| e.name).collect()
}

/// The five ImageNet-scale benchmarks of the paper's Fig. 6, in the order
/// they are reported.
pub fn imagenet_suite() -> Vec<Model> {
    vec![alexnet(), vgg13(), vgg16(), msra(), resnet18()]
}

/// The CIFAR-scale benchmarks of Table V (10-class variants; 100-class
/// variants only change the classifier width).
pub fn cifar_suite() -> Vec<Model> {
    vec![alexnet_cifar(10), vgg16_cifar(10), resnet18_cifar(10)]
}

/// Looks up a zoo model by its canonical lowercase name (see [`names`] for
/// the full list).
pub fn by_name(name: &str) -> Option<Model> {
    entries()
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes() {
        assert_eq!(imagenet_suite().len(), 5);
        assert_eq!(cifar_suite().len(), 3);
    }

    #[test]
    fn by_name_round_trip() {
        for name in names() {
            let m = by_name(name).expect("registered model");
            assert_eq!(m.name(), name, "entry name must match model name");
        }
        assert!(by_name("lenet").is_none());
    }

    #[test]
    fn registry_names_are_unique() {
        let names = names();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn all_models_have_classifier_output() {
        for m in imagenet_suite() {
            let last = m.weight_layers().last().expect("weight layers");
            assert_eq!(last.out_channels, 1000, "{}", m.name());
        }
        for m in cifar_suite() {
            let last = m.weight_layers().last().expect("weight layers");
            assert_eq!(last.out_channels, 10, "{}", m.name());
        }
    }

    #[test]
    fn weight_layer_counts_match_literature() {
        assert_eq!(alexnet().weight_layer_count(), 8);
        assert_eq!(vgg13().weight_layer_count(), 13);
        assert_eq!(vgg16().weight_layer_count(), 16);
        assert_eq!(msra().weight_layer_count(), 19);
        assert_eq!(resnet18().weight_layer_count(), 21); // 20 convs + fc
    }

    #[test]
    fn vgg16_mac_count_is_canonical() {
        // VGG16 is ~15.47 GMACs on 224x224 inputs.
        let macs = vgg16().stats().total_macs;
        assert!((15.0e9..16.0e9).contains(&(macs as f64)), "got {macs}");
    }

    #[test]
    fn alexnet_weight_count_is_canonical() {
        // Single-tower AlexNet has ~61M parameters (conv+fc weights).
        let w = alexnet().stats().total_weights;
        assert!((55.0e6..65.0e6).contains(&(w as f64)), "got {w}");
    }

    #[test]
    fn resnet18_macs_are_canonical() {
        // ResNet18 is ~1.8 GMACs.
        let macs = resnet18().stats().total_macs;
        assert!((1.6e9..2.0e9).contains(&(macs as f64)), "got {macs}");
    }
}
