use crate::{Model, ModelBuilder, TensorShape};

/// Single-tower AlexNet for 3x224x224 ImageNet inputs (8 weight layers).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::alexnet();
/// assert_eq!(m.weight_layers().count(), 8);
/// ```
pub fn alexnet() -> Model {
    let mut b = ModelBuilder::new("alexnet", TensorShape::new(3, 224, 224));

    let c1 = b.conv("conv1", None, 96, 11, 4, 2);
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool("pool1", r1, 3, 2); // 55 -> 27

    let c2 = b.conv("conv2", Some(p1), 256, 5, 1, 2);
    let r2 = b.relu("relu2", c2);
    let p2 = b.max_pool("pool2", r2, 3, 2); // 27 -> 13

    let c3 = b.conv("conv3", Some(p2), 384, 3, 1, 1);
    let r3 = b.relu("relu3", c3);
    let c4 = b.conv("conv4", Some(r3), 384, 3, 1, 1);
    let r4 = b.relu("relu4", c4);
    let c5 = b.conv("conv5", Some(r4), 256, 3, 1, 1);
    let r5 = b.relu("relu5", c5);
    let p5 = b.max_pool("pool5", r5, 3, 2); // 13 -> 6

    let f = b.flatten("flatten", p5);
    let fc6 = b.linear("fc6", f, 4096);
    let r6 = b.relu("relu6", fc6);
    let fc7 = b.linear("fc7", r6, 4096);
    let r7 = b.relu("relu7", fc7);
    b.linear("fc8", r7, 1000);

    b.build().expect("static alexnet definition is valid")
}

/// CIFAR-adapted AlexNet for 3x32x32 inputs (8 weight layers).
///
/// `classes` selects the classifier width (10 for CIFAR-10, 100 for
/// CIFAR-100), matching the Table V comparison against Gibbon.
pub fn alexnet_cifar(classes: usize) -> Model {
    let mut b = ModelBuilder::new("alexnet-cifar", TensorShape::new(3, 32, 32));

    let c1 = b.conv("conv1", None, 64, 3, 1, 1);
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool("pool1", r1, 2, 2); // 32 -> 16

    let c2 = b.conv("conv2", Some(p1), 192, 3, 1, 1);
    let r2 = b.relu("relu2", c2);
    let p2 = b.max_pool("pool2", r2, 2, 2); // 16 -> 8

    let c3 = b.conv("conv3", Some(p2), 384, 3, 1, 1);
    let r3 = b.relu("relu3", c3);
    let c4 = b.conv("conv4", Some(r3), 256, 3, 1, 1);
    let r4 = b.relu("relu4", c4);
    let c5 = b.conv("conv5", Some(r4), 256, 3, 1, 1);
    let r5 = b.relu("relu5", c5);
    let p5 = b.max_pool("pool5", r5, 2, 2); // 8 -> 4

    let f = b.flatten("flatten", p5);
    let fc6 = b.linear("fc6", f, 1024);
    let r6 = b.relu("relu6", fc6);
    let fc7 = b.linear("fc7", r6, 512);
    let r7 = b.relu("relu7", fc7);
    b.linear("fc8", r7, classes);

    b.build().expect("static alexnet-cifar definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_spatial_pipeline() {
        let m = alexnet();
        let conv1 = m.weight_layer(0);
        assert_eq!((conv1.out_height, conv1.out_width), (55, 55));
        let conv2 = m.weight_layer(1);
        assert_eq!(conv2.in_height, 27);
        let conv5 = m.weight_layer(4);
        assert_eq!(conv5.out_height, 13);
        let fc6 = m.weight_layer(5);
        assert_eq!(fc6.in_channels, 256 * 6 * 6);
    }

    #[test]
    fn cifar_classifier_width_follows_classes() {
        assert_eq!(
            alexnet_cifar(100)
                .weight_layers()
                .last()
                .unwrap()
                .out_channels,
            100
        );
    }

    #[test]
    fn all_convs_have_relu() {
        for wl in alexnet().weight_layers().take(7) {
            assert!(wl.relu, "{} should be followed by relu", wl.name);
        }
    }
}
