use crate::{Model, ModelBuilder, TensorShape};

/// The "MSRA" network: model A of He et al., ICCV'15 (*Delving Deep into
/// Rectifiers*), 19 weight layers for 3x224x224 inputs.
///
/// Structure: 7x7/2 96-wide stem, then three stages of five 3x3 convs
/// (256/512/512 channels) each followed by 2x2/2 max-pooling, then the
/// standard 4096-4096-1000 classifier. PReLU activations are represented as
/// ReLU — for synthesis purposes both are single-pass vector ALU ops of the
/// same cost class.
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::msra();
/// assert_eq!(m.weight_layers().count(), 19);
/// ```
pub fn msra() -> Model {
    let mut b = ModelBuilder::new("msra", TensorShape::new(3, 224, 224));

    let c1 = b.conv("conv1", None, 96, 7, 2, 3); // 224 -> 112
    let r1 = b.relu("prelu1", c1);
    let p1 = b.max_pool("pool1", r1, 2, 2); // 112 -> 56

    let mut cur = p1;
    for (stage, channels) in [(2usize, 256usize), (3, 512), (4, 512)] {
        for i in 1..=5usize {
            let c = b.conv(format!("conv{stage}_{i}"), Some(cur), channels, 3, 1, 1);
            cur = b.relu(format!("prelu{stage}_{i}"), c);
        }
        cur = b.max_pool(format!("pool{stage}"), cur, 2, 2);
    }

    // Spatial extent: 56 -> 28 -> 14 -> 7.
    let f = b.flatten("flatten", cur);
    let fc1 = b.linear("fc1", f, 4096);
    let rf1 = b.relu("relu_fc1", fc1);
    let fc2 = b.linear("fc2", rf1, 4096);
    let rf2 = b.relu("relu_fc2", fc2);
    b.linear("fc3", rf2, 1000);

    b.build().expect("static msra definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_weight_layers() {
        assert_eq!(msra().weight_layer_count(), 19);
    }

    #[test]
    fn stem_halves_resolution() {
        let m = msra();
        let c1 = m.weight_layer(0);
        assert_eq!((c1.out_height, c1.out_width), (112, 112));
        assert_eq!(c1.kernel, 7);
    }

    #[test]
    fn classifier_input_is_512x7x7() {
        let m = msra();
        let fc1 = m.weight_layers().find(|w| w.name == "fc1").unwrap();
        assert_eq!(fc1.in_channels, 512 * 7 * 7);
    }

    #[test]
    fn macs_exceed_vgg16() {
        // MSRA model A is notably heavier than VGG16 (~19 vs ~15.5 GMACs).
        let msra_macs = msra().stats().total_macs;
        let vgg16_macs = super::super::vgg16().stats().total_macs;
        assert!(
            msra_macs > vgg16_macs,
            "msra {msra_macs} vs vgg16 {vgg16_macs}"
        );
    }
}
