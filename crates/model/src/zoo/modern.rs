//! Post-VGG-era networks exercising the modern op set: depthwise separable
//! convolutions (MobileNet-V1), squeeze-excite gating (ResNet18-SE) and
//! attention-style position-wise projections (a tiny transformer encoder).
//!
//! These are the workloads EPIM (see `PAPERS.md`) targets on the same
//! crossbar substrate; they stress exactly the mapping rules classic CNNs
//! never touch — block-diagonal grouped weights, `Cx1x1` broadcast gates and
//! activation-dynamic products that must run on macro ALUs rather than
//! crossbars.

use crate::{LayerId, Model, ModelBuilder, TensorShape};

/// Appends one depthwise-separable block: 3x3 depthwise conv (stride
/// `stride`) followed by a 1x1 pointwise conv to `out_channels`, each with
/// batch-norm + ReLU.
fn separable_block(
    b: &mut ModelBuilder,
    name: &str,
    input: LayerId,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
) -> LayerId {
    let dw = b.depthwise_conv(format!("{name}_dw"), input, in_channels, 3, stride, 1);
    let n1 = b.batch_norm(format!("{name}_dw_bn"), dw);
    let r1 = b.relu(format!("{name}_dw_relu"), n1);
    let pw = b.conv(format!("{name}_pw"), Some(r1), out_channels, 1, 1, 0);
    let n2 = b.batch_norm(format!("{name}_pw_bn"), pw);
    b.relu(format!("{name}_pw_relu"), n2)
}

/// MobileNet-V1 for 3x224x224 ImageNet inputs: a 3x3/2 stem conv to 32
/// channels, 13 depthwise-separable blocks with the canonical width/stride
/// schedule, global average pooling and a 1000-way classifier — 28 weight
/// layers (1 stem + 13x2 separable + 1 fc), ~0.57 GMACs, ~4.2 M weights.
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::mobilenet();
/// assert_eq!(m.weight_layers().count(), 28);
/// ```
pub fn mobilenet() -> Model {
    let mut b = ModelBuilder::new("mobilenet", TensorShape::new(3, 224, 224));

    let c1 = b.conv("conv1", None, 32, 3, 2, 1); // 224 -> 112
    let n1 = b.batch_norm("bn1", c1);
    let mut cur = b.relu("relu1", n1);

    // (out_channels, stride) of the 13 canonical separable blocks.
    let schedule: [(usize, usize); 13] = [
        (64, 1),
        (128, 2), // 112 -> 56
        (128, 1),
        (256, 2), // 56 -> 28
        (256, 1),
        (512, 2), // 28 -> 14
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2), // 14 -> 7
        (1024, 1),
    ];
    let mut width = 32;
    for (i, (channels, stride)) in schedule.into_iter().enumerate() {
        cur = separable_block(&mut b, &format!("b{}", i + 1), cur, width, channels, stride);
        width = channels;
    }

    let gap = b.global_avg_pool("gap", cur);
    let f = b.flatten("flatten", gap);
    b.linear("fc", f, 1000);

    b.build().expect("static mobilenet definition is valid")
}

/// Appends a squeeze-excite gate over `trunk` (shape `channels x H x W`):
/// global average pool, a `channels/16` bottleneck projection with ReLU, an
/// expansion back to `channels` with sigmoid, and a broadcast multiply.
fn squeeze_excite(b: &mut ModelBuilder, name: &str, trunk: LayerId, channels: usize) -> LayerId {
    let squeeze = b.global_avg_pool(format!("{name}_gap"), trunk);
    let reduce = b.matmul(format!("{name}_fc1"), squeeze, (channels / 16).max(1));
    let act = b.relu(format!("{name}_relu"), reduce);
    let expand = b.matmul(format!("{name}_fc2"), act, channels);
    let gate = b.sigmoid(format!("{name}_sigmoid"), expand);
    b.mul(format!("{name}_scale"), trunk, gate)
}

/// Appends one SE-ResNet basic block: the standard two 3x3 convs with an SE
/// gate on the residual branch before the add (Hu et al.'s SE-ResNet
/// placement).
fn se_basic_block(
    b: &mut ModelBuilder,
    name: &str,
    input: LayerId,
    in_channels: usize,
    channels: usize,
    stride: usize,
) -> LayerId {
    let c1 = b.conv(format!("{name}_conv1"), Some(input), channels, 3, stride, 1);
    let n1 = b.batch_norm(format!("{name}_bn1"), c1);
    let r1 = b.relu(format!("{name}_relu1"), n1);
    let c2 = b.conv(format!("{name}_conv2"), Some(r1), channels, 3, 1, 1);
    let n2 = b.batch_norm(format!("{name}_bn2"), c2);
    let scaled = squeeze_excite(b, name, n2, channels);

    let skip = if stride != 1 || in_channels != channels {
        let ds = b.conv(format!("{name}_down"), Some(input), channels, 1, stride, 0);
        b.batch_norm(format!("{name}_bn_down"), ds)
    } else {
        input
    };
    let add = b.add(format!("{name}_add"), scaled, skip);
    b.relu(format!("{name}_relu2"), add)
}

/// SE-ResNet18 for 3x224x224 inputs: ResNet18 with a squeeze-excite gate in
/// every basic block — 37 weight layers (20 convs + 8x2 SE projections + fc).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::resnet18_se();
/// assert_eq!(m.weight_layers().count(), 37);
/// ```
pub fn resnet18_se() -> Model {
    let mut b = ModelBuilder::new("resnet18-se", TensorShape::new(3, 224, 224));

    let c1 = b.conv("conv1", None, 64, 7, 2, 3); // 224 -> 112
    let n1 = b.batch_norm("bn1", c1);
    let r1 = b.relu("relu1", n1);
    let p1 = b.max_pool("pool1", r1, 2, 2); // 112 -> 56

    let mut cur = p1;
    let mut width = 64;
    for (stage, channels) in [(1usize, 64usize), (2, 128), (3, 256), (4, 512)] {
        for block in 1..=2usize {
            let stride = if stage > 1 && block == 1 { 2 } else { 1 };
            cur = se_basic_block(
                &mut b,
                &format!("s{stage}b{block}"),
                cur,
                width,
                channels,
                stride,
            );
            width = channels;
        }
    }

    let gap = b.global_avg_pool("gap", cur);
    let f = b.flatten("flatten", gap);
    b.linear("fc", f, 1000);

    b.build().expect("static resnet18-se definition is valid")
}

/// Appends one transformer encoder block over a `dim x seq x 1` tensor:
/// q/k/v projections (static matmuls on crossbars), an elementwise
/// query-key product + softmax + value gating (activation-dynamic, so it
/// runs on macro ALUs, following EPIM's split of static vs. dynamic
/// operands), an output projection with a residual add, and a
/// `dim -> 4*dim -> dim` feed-forward with its own residual.
fn encoder_block(b: &mut ModelBuilder, name: &str, input: LayerId, dim: usize) -> LayerId {
    let q = b.matmul(format!("{name}_q"), input, dim);
    let k = b.matmul(format!("{name}_k"), input, dim);
    let v = b.matmul(format!("{name}_v"), input, dim);
    let scores = b.mul(format!("{name}_qk"), q, k);
    let weights = b.softmax(format!("{name}_softmax"), scores);
    let attended = b.mul(format!("{name}_av"), weights, v);
    let o = b.matmul(format!("{name}_o"), attended, dim);
    let res1 = b.add(format!("{name}_add1"), o, input);

    let ff1 = b.matmul(format!("{name}_ff1"), res1, 4 * dim);
    let act = b.relu(format!("{name}_ff_relu"), ff1);
    let ff2 = b.matmul(format!("{name}_ff2"), act, dim);
    b.add(format!("{name}_add2"), ff2, res1)
}

/// A tiny two-block transformer encoder classifier over a 64-dim, 16-token
/// sequence (embedded as a `64 x 16 x 1` tensor): embedding projection, two
/// encoder blocks, mean pooling over tokens and a 10-way classifier — 14
/// weight layers (embed + 2 x 6 projections + fc).
///
/// # Example
///
/// ```
/// let m = pimsyn_model::zoo::transformer_tiny();
/// assert_eq!(m.weight_layers().count(), 14);
/// ```
pub fn transformer_tiny() -> Model {
    let dim = 64;
    let mut b = ModelBuilder::new("transformer-tiny", TensorShape::new(dim, 16, 1));

    // The embedding projection reads the model input directly (empty
    // producer list), which the typed `matmul` helper cannot express.
    let embed = b.layer(
        "embed",
        crate::LayerKind::MatMul { out_features: dim },
        vec![],
    );
    let mut cur = embed;
    for i in 1..=2usize {
        cur = encoder_block(&mut b, &format!("enc{i}"), cur, dim);
    }

    let pooled = b.global_avg_pool("pool", cur);
    let f = b.flatten("flatten", pooled);
    b.linear("fc", f, 10);

    b.build()
        .expect("static transformer-tiny definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_stats_are_canonical() {
        let m = mobilenet();
        assert_eq!(m.weight_layer_count(), 28);
        let st = m.stats();
        // MobileNet-V1 is ~569M MACs and ~4.2M weights.
        assert!((0.5e9..0.65e9).contains(&(st.total_macs as f64)), "{st:?}");
        assert!(
            (3.5e6..5.0e6).contains(&(st.total_weights as f64)),
            "{st:?}"
        );
    }

    #[test]
    fn mobilenet_depthwise_layers_are_grouped() {
        let m = mobilenet();
        let dw: Vec<_> = m
            .weight_layers()
            .filter(|w| w.name.ends_with("_dw"))
            .collect();
        assert_eq!(dw.len(), 13);
        for w in dw {
            assert_eq!(w.groups, w.in_channels, "{}", w.name);
            assert_eq!(w.filter_rows(), 9, "{}", w.name);
        }
    }

    #[test]
    fn mobilenet_final_extent_is_7() {
        let m = mobilenet();
        let last = m.weight_layers().find(|w| w.name == "b13_pw").unwrap();
        assert_eq!(last.out_height, 7);
        assert_eq!(last.out_channels, 1024);
    }

    #[test]
    fn se_blocks_gate_the_trunk() {
        let m = resnet18_se();
        assert_eq!(m.weight_layer_count(), 37);
        let fc2 = m.weight_layers().find(|w| w.name == "s1b1_fc2").unwrap();
        assert!(fc2.relu, "sigmoid fuses into the activation slot");
        assert!(fc2.feeds_add, "gate feeds the broadcast mul");
        let c2 = m.weight_layers().find(|w| w.name == "s1b1_conv2").unwrap();
        assert!(c2.feeds_add, "trunk feeds the broadcast mul");
        let fc1 = m.weight_layers().find(|w| w.name == "s1b1_fc1").unwrap();
        assert_eq!((fc1.in_channels, fc1.out_channels), (64, 4));
    }

    #[test]
    fn transformer_projections_preserve_sequence() {
        let m = transformer_tiny();
        assert_eq!(m.weight_layer_count(), 14);
        let q = m.weight_layers().find(|w| w.name == "enc1_q").unwrap();
        assert_eq!(q.output_positions(), 16);
        assert_eq!((q.in_channels, q.out_channels), (64, 64));
        assert!(q.feeds_add, "q feeds the dynamic qk product");
        let ff1 = m.weight_layers().find(|w| w.name == "enc1_ff1").unwrap();
        assert_eq!(ff1.out_channels, 256);
    }
}
