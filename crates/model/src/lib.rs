//! CNN model representation for the PIMSYN reproduction.
//!
//! PIMSYN ([Li et al., DATE 2024]) takes a *trained, quantified* CNN as input
//! and synthesizes a processing-in-memory accelerator for it. This crate
//! provides everything the synthesis stack needs to know about a network:
//!
//! - [`Model`]: a directed acyclic graph of [`Layer`]s with shape inference,
//!   validation, and MAC/weight statistics.
//! - [`zoo`]: programmatic constructors for every benchmark network used in
//!   the paper's evaluation (AlexNet, VGG13, VGG16, MSRA, ResNet18, plus
//!   CIFAR-sized variants for the Gibbon comparison).
//! - [`onnx`]: an ONNX-style JSON ingestion path built on the from-scratch
//!   [`json`] parser (the substitution for protobuf-based ONNX ingestion is
//!   documented in `DESIGN.md`).
//! - [`Precision`]: quantization metadata (the paper evaluates with 16-bit
//!   quantification).
//!
//! # Example
//!
//! ```
//! use pimsyn_model::zoo;
//!
//! let model = zoo::vgg16();
//! assert_eq!(model.weight_layers().count(), 16);
//! let stats = model.stats();
//! assert!(stats.total_macs > 15_000_000_000); // ~15.5 GMACs
//! ```
//!
//! [Li et al., DATE 2024]: https://arxiv.org/abs/2402.18114

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod json;
mod layer;
mod model;
pub mod onnx;
mod tensor;
pub mod zoo;

pub use error::ModelError;
pub use layer::{Layer, LayerId, LayerKind, PoolKind};
pub use model::{Model, ModelBuilder, ModelStats, Precision, WeightLayer};
pub use tensor::TensorShape;
