//! ONNX-style model ingestion.
//!
//! PIMSYN consumes CNNs "described in the ONNX format". This module provides
//! the equivalent ingestion path for the reproduction: an ONNX-like
//! graph-of-nodes description serialized as JSON (see `DESIGN.md`,
//! substitution #1). Node `op` names mirror ONNX operator names so that a
//! conversion script from real ONNX files is mechanical.
//!
//! # Format
//!
//! ```json
//! {
//!   "name": "tiny",
//!   "input": {"shape": [3, 32, 32]},
//!   "precision": {"weights": 16, "activations": 16},
//!   "nodes": [
//!     {"op": "Conv", "name": "conv1", "inputs": ["input"],
//!      "attrs": {"out_channels": 16, "kernel": 3, "stride": 1, "padding": 1}},
//!     {"op": "Relu", "name": "relu1", "inputs": ["conv1"]},
//!     {"op": "MaxPool", "name": "pool1", "inputs": ["relu1"],
//!      "attrs": {"kernel": 2, "stride": 2}}
//!   ]
//! }
//! ```
//!
//! Supported ops: `Conv` (with optional `groups` for grouped/depthwise),
//! `Gemm` (fully-connected), `MatMul` (position-wise projection), `MaxPool`,
//! `AveragePool`, `GlobalAveragePool`, `Relu`, `PRelu`, `Sigmoid`, `Softmax`,
//! `BatchNormalization`, `Add`, `Mul`, `Flatten`.
//!
//! # Example
//!
//! ```
//! use pimsyn_model::onnx;
//!
//! # fn main() -> Result<(), pimsyn_model::ModelError> {
//! let text = r#"{
//!   "name": "mini", "input": {"shape": [3, 8, 8]},
//!   "nodes": [
//!     {"op": "Conv", "name": "c1", "inputs": ["input"],
//!      "attrs": {"out_channels": 4, "kernel": 3, "stride": 1, "padding": 1}},
//!     {"op": "Relu", "name": "r1", "inputs": ["c1"]}
//!   ]
//! }"#;
//! let model = onnx::parse_model(text)?;
//! assert_eq!(model.weight_layers().count(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::json::JsonValue;
use crate::{Layer, LayerKind, PoolKind};
use crate::{LayerId, Model, ModelBuilder, ModelError, Precision, TensorShape};

/// Parses an ONNX-style JSON model description into a validated [`Model`].
///
/// # Errors
///
/// Returns [`ModelError::Parse`] for malformed JSON and
/// [`ModelError::Ingest`] for structurally invalid graphs (missing fields,
/// unsupported ops, dangling references), plus any validation error from
/// [`ModelBuilder::build`].
pub fn parse_model(text: &str) -> Result<Model, ModelError> {
    let doc = JsonValue::parse(text)?;
    lower_document(&doc)
}

/// Serializes a [`Model`] back into the ONNX-style JSON format accepted by
/// [`parse_model`], enabling lossless round-trips of the layer graph.
pub fn to_json(model: &Model) -> String {
    let mut nodes = Vec::new();
    for (i, layer) in model.layers().iter().enumerate() {
        let mut node = Vec::new();
        let (op, attrs) = op_and_attrs(layer);
        node.push(("op".to_string(), JsonValue::String(op.to_string())));
        node.push(("name".to_string(), JsonValue::String(layer.name.clone())));
        let inputs: Vec<JsonValue> = if layer.inputs.is_empty() {
            vec![JsonValue::String("input".to_string())]
        } else {
            layer
                .inputs
                .iter()
                .map(|&id| JsonValue::String(model.layer(id).name.clone()))
                .collect()
        };
        node.push(("inputs".to_string(), JsonValue::Array(inputs)));
        if !attrs.is_empty() {
            node.push(("attrs".to_string(), JsonValue::Object(attrs)));
        }
        nodes.push(JsonValue::Object(node));
        debug_assert!(i < model.layers().len());
    }
    let input = model.input_shape();
    let doc = JsonValue::Object(vec![
        (
            "name".to_string(),
            JsonValue::String(model.name().to_string()),
        ),
        (
            "input".to_string(),
            JsonValue::Object(vec![(
                "shape".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Number(input.channels as f64),
                    JsonValue::Number(input.height as f64),
                    JsonValue::Number(input.width as f64),
                ]),
            )]),
        ),
        (
            "precision".to_string(),
            JsonValue::Object(vec![
                (
                    "weights".to_string(),
                    JsonValue::Number(model.precision().weight_bits() as f64),
                ),
                (
                    "activations".to_string(),
                    JsonValue::Number(model.precision().activation_bits() as f64),
                ),
            ]),
        ),
        ("nodes".to_string(), JsonValue::Array(nodes)),
    ]);
    doc.to_string()
}

fn op_and_attrs(layer: &Layer) -> (&'static str, Vec<(String, JsonValue)>) {
    let num = |n: usize| JsonValue::Number(n as f64);
    match layer.kind {
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups,
        } => {
            let mut attrs = vec![
                ("out_channels".to_string(), num(out_channels)),
                ("kernel".to_string(), num(kernel)),
                ("stride".to_string(), num(stride)),
                ("padding".to_string(), num(padding)),
            ];
            if groups > 1 {
                attrs.push(("groups".to_string(), num(groups)));
            }
            ("Conv", attrs)
        }
        LayerKind::Linear { out_features } => (
            "Gemm",
            vec![("out_features".to_string(), num(out_features))],
        ),
        LayerKind::MatMul { out_features } => (
            "MatMul",
            vec![("out_features".to_string(), num(out_features))],
        ),
        LayerKind::Pool {
            kind,
            kernel,
            stride,
        } => (
            match kind {
                PoolKind::Max => "MaxPool",
                PoolKind::Avg => "AveragePool",
            },
            vec![
                ("kernel".to_string(), num(kernel)),
                ("stride".to_string(), num(stride)),
            ],
        ),
        LayerKind::GlobalAvgPool => ("GlobalAveragePool", vec![]),
        LayerKind::Relu => ("Relu", vec![]),
        LayerKind::Sigmoid => ("Sigmoid", vec![]),
        LayerKind::Softmax => ("Softmax", vec![]),
        LayerKind::BatchNorm => ("BatchNormalization", vec![]),
        LayerKind::Add => ("Add", vec![]),
        LayerKind::Mul => ("Mul", vec![]),
        LayerKind::Flatten => ("Flatten", vec![]),
    }
}

fn ingest_err(detail: impl Into<String>) -> ModelError {
    ModelError::Ingest {
        detail: detail.into(),
    }
}

fn required<'a>(obj: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue, ModelError> {
    obj.get(key)
        .ok_or_else(|| ingest_err(format!("missing `{key}` in {ctx}")))
}

fn required_usize(obj: &JsonValue, key: &str, ctx: &str) -> Result<usize, ModelError> {
    required(obj, key, ctx)?
        .as_usize()
        .ok_or_else(|| ingest_err(format!("`{key}` in {ctx} must be a non-negative integer")))
}

fn optional_usize(obj: &JsonValue, key: &str, default: usize) -> Result<usize, ModelError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| ingest_err(format!("`{key}` must be a non-negative integer"))),
    }
}

fn lower_document(doc: &JsonValue) -> Result<Model, ModelError> {
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .unwrap_or("imported");
    let input = required(doc, "input", "document")?;
    let shape = required(input, "shape", "input")?
        .as_array()
        .ok_or_else(|| ingest_err("`input.shape` must be an array"))?;
    if shape.len() != 3 {
        return Err(ingest_err(format!(
            "`input.shape` must be [channels, height, width], got {} entries",
            shape.len()
        )));
    }
    let dims: Vec<usize> = shape
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| ingest_err("input dimensions must be integers"))
        })
        .collect::<Result<_, _>>()?;
    let input_shape = TensorShape::new(dims[0], dims[1], dims[2]);

    let mut builder = ModelBuilder::new(name, input_shape);

    if let Some(p) = doc.get("precision") {
        let w = optional_usize(p, "weights", 16)? as u32;
        let a = optional_usize(p, "activations", 16)? as u32;
        builder.precision(Precision::new(w, a)?);
    }

    let nodes = required(doc, "nodes", "document")?
        .as_array()
        .ok_or_else(|| ingest_err("`nodes` must be an array"))?;

    let mut ids: HashMap<String, LayerId> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let ctx = format!("node {i}");
        let op = required(node, "op", &ctx)?
            .as_str()
            .ok_or_else(|| ingest_err(format!("`op` in {ctx} must be a string")))?;
        let node_name = required(node, "name", &ctx)?
            .as_str()
            .ok_or_else(|| ingest_err(format!("`name` in {ctx} must be a string")))?
            .to_string();
        let input_names: Vec<&str> = match node.get("inputs") {
            None => vec!["input"],
            Some(v) => v
                .as_array()
                .ok_or_else(|| ingest_err(format!("`inputs` in {ctx} must be an array")))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or_else(|| ingest_err(format!("inputs of {ctx} must be strings")))
                })
                .collect::<Result<_, _>>()?,
        };
        let mut resolved: Vec<LayerId> = Vec::new();
        for n in &input_names {
            if *n == "input" {
                continue; // model input: expressed as an empty producer list
            }
            match ids.get(*n) {
                Some(&id) => resolved.push(id),
                None => {
                    return Err(ModelError::UnknownLayer {
                        reference: (*n).to_string(),
                    })
                }
            }
        }
        let attrs = node
            .get("attrs")
            .cloned()
            .unwrap_or(JsonValue::Object(vec![]));
        let actx = format!("attrs of `{node_name}`");
        let kind = match op {
            "Conv" => LayerKind::Conv2d {
                out_channels: required_usize(&attrs, "out_channels", &actx)?,
                kernel: required_usize(&attrs, "kernel", &actx)?,
                stride: optional_usize(&attrs, "stride", 1)?,
                padding: optional_usize(&attrs, "padding", 0)?,
                groups: optional_usize(&attrs, "groups", 1)?,
            },
            "Gemm" => LayerKind::Linear {
                out_features: required_usize(&attrs, "out_features", &actx)?,
            },
            "MatMul" => LayerKind::MatMul {
                out_features: required_usize(&attrs, "out_features", &actx)?,
            },
            "MaxPool" | "AveragePool" => LayerKind::Pool {
                kind: if op == "MaxPool" {
                    PoolKind::Max
                } else {
                    PoolKind::Avg
                },
                kernel: required_usize(&attrs, "kernel", &actx)?,
                stride: optional_usize(&attrs, "stride", 1)?,
            },
            "GlobalAveragePool" => LayerKind::GlobalAvgPool,
            "Relu" | "PRelu" | "LeakyRelu" => LayerKind::Relu,
            "Sigmoid" => LayerKind::Sigmoid,
            "Softmax" => LayerKind::Softmax,
            "BatchNormalization" => LayerKind::BatchNorm,
            "Add" => LayerKind::Add,
            "Mul" => LayerKind::Mul,
            "Flatten" | "Reshape" => LayerKind::Flatten,
            other => {
                return Err(ingest_err(format!(
                    "unsupported op `{other}` at node `{node_name}`"
                )))
            }
        };
        let id = builder.layer(node_name.clone(), kind, resolved);
        ids.insert(node_name, id);
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    const MINI: &str = r#"{
      "name": "mini",
      "input": {"shape": [3, 16, 16]},
      "precision": {"weights": 8, "activations": 8},
      "nodes": [
        {"op": "Conv", "name": "c1", "inputs": ["input"],
         "attrs": {"out_channels": 8, "kernel": 3, "stride": 1, "padding": 1}},
        {"op": "Relu", "name": "r1", "inputs": ["c1"]},
        {"op": "MaxPool", "name": "p1", "inputs": ["r1"], "attrs": {"kernel": 2, "stride": 2}},
        {"op": "Flatten", "name": "f", "inputs": ["p1"]},
        {"op": "Gemm", "name": "fc", "inputs": ["f"], "attrs": {"out_features": 10}}
      ]
    }"#;

    #[test]
    fn parses_minimal_network() {
        let m = parse_model(MINI).unwrap();
        assert_eq!(m.name(), "mini");
        assert_eq!(m.weight_layer_count(), 2);
        assert_eq!(m.precision(), Precision::int8());
        let fc = m.weight_layer(1);
        assert_eq!(fc.in_channels, 8 * 8 * 8);
    }

    #[test]
    fn missing_attr_is_reported() {
        let bad = r#"{
          "input": {"shape": [3, 8, 8]},
          "nodes": [{"op": "Conv", "name": "c", "inputs": ["input"], "attrs": {"kernel": 3}}]
        }"#;
        let err = parse_model(bad).unwrap_err();
        assert!(err.to_string().contains("out_channels"), "{err}");
    }

    #[test]
    fn unknown_input_reference() {
        let bad = r#"{
          "input": {"shape": [3, 8, 8]},
          "nodes": [{"op": "Relu", "name": "r", "inputs": ["ghost"]}]
        }"#;
        assert!(matches!(
            parse_model(bad).unwrap_err(),
            ModelError::UnknownLayer { .. }
        ));
    }

    #[test]
    fn unsupported_op_is_reported() {
        let bad = r#"{
          "input": {"shape": [3, 8, 8]},
          "nodes": [{"op": "LSTM", "name": "l", "inputs": ["input"]}]
        }"#;
        let err = parse_model(bad).unwrap_err();
        assert!(err.to_string().contains("LSTM"), "{err}");
    }

    #[test]
    fn add_with_two_inputs() {
        let text = r#"{
          "input": {"shape": [3, 8, 8]},
          "nodes": [
            {"op": "Conv", "name": "a", "inputs": ["input"],
             "attrs": {"out_channels": 4, "kernel": 3, "padding": 1}},
            {"op": "Conv", "name": "b", "inputs": ["input"],
             "attrs": {"out_channels": 4, "kernel": 3, "padding": 1}},
            {"op": "Add", "name": "sum", "inputs": ["a", "b"]}
          ]
        }"#;
        let m = parse_model(text).unwrap();
        assert!(m.weight_layer(0).feeds_add);
        assert!(m.weight_layer(1).feeds_add);
    }

    #[test]
    fn parses_depthwise_and_attention_ops() {
        let text = r#"{
          "name": "modern",
          "input": {"shape": [8, 8, 8]},
          "nodes": [
            {"op": "Conv", "name": "dw", "inputs": ["input"],
             "attrs": {"out_channels": 8, "kernel": 3, "stride": 1, "padding": 1, "groups": 8}},
            {"op": "MatMul", "name": "q", "inputs": ["dw"], "attrs": {"out_features": 4}},
            {"op": "Softmax", "name": "sm", "inputs": ["q"]},
            {"op": "GlobalAveragePool", "name": "gap", "inputs": ["dw"]},
            {"op": "MatMul", "name": "gate", "inputs": ["gap"], "attrs": {"out_features": 8}},
            {"op": "Sigmoid", "name": "sig", "inputs": ["gate"]},
            {"op": "Mul", "name": "scale", "inputs": ["dw", "sig"]}
          ]
        }"#;
        let m = parse_model(text).unwrap();
        let dw = m.weight_layer(0);
        assert_eq!(dw.groups, 8);
        assert_eq!(dw.filter_rows(), 9);
        assert!(dw.feeds_add, "mul consumer marks the eltwise flag");
        let q = m.weight_layer(1);
        assert_eq!((q.in_channels, q.out_channels), (8, 4));
        assert!(q.relu, "softmax fuses into the activation slot");
    }

    #[test]
    fn zoo_models_round_trip_through_json() {
        for model in [
            zoo::alexnet(),
            zoo::vgg16(),
            zoo::resnet18(),
            zoo::alexnet_cifar(10),
            zoo::mobilenet(),
            zoo::resnet18_se(),
            zoo::transformer_tiny(),
        ] {
            let text = to_json(&model);
            let back = parse_model(&text).unwrap();
            assert_eq!(back.name(), model.name());
            assert_eq!(
                back.layers(),
                model.layers(),
                "layer graphs differ for {}",
                model.name()
            );
            assert_eq!(back.precision(), model.precision());
            assert_eq!(back.input_shape(), model.input_shape());
            assert_eq!(back.stats(), model.stats());
        }
    }

    #[test]
    fn default_precision_is_int16() {
        let text = r#"{
          "input": {"shape": [1, 4, 4]},
          "nodes": [{"op": "Conv", "name": "c", "inputs": ["input"],
                     "attrs": {"out_channels": 2, "kernel": 3, "padding": 1}}]
        }"#;
        assert_eq!(parse_model(text).unwrap().precision(), Precision::int16());
    }

    #[test]
    fn bad_shape_arity_rejected() {
        let bad = r#"{"input": {"shape": [3, 8]}, "nodes": []}"#;
        assert!(parse_model(bad).is_err());
    }
}
