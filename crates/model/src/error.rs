use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or ingesting a CNN model.
///
/// Every public fallible operation in this crate returns this type, per
/// C-GOOD-ERR: it implements [`std::error::Error`], [`Send`] and [`Sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A layer references another layer that does not exist.
    UnknownLayer {
        /// Name or index of the missing layer, as written by the referrer.
        reference: String,
    },
    /// A layer's input shape is incompatible with its parameters.
    ShapeMismatch {
        /// Layer that failed shape inference.
        layer: String,
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// The layer graph contains a cycle, so no topological order exists.
    CyclicGraph,
    /// The model has no layers.
    EmptyModel,
    /// An `Add` (residual) layer has operands of differing shapes.
    AddShapeMismatch {
        /// The add layer in question.
        layer: String,
        /// Shape of the first operand, `channels x height x width`.
        lhs: (usize, usize, usize),
        /// Shape of the second operand.
        rhs: (usize, usize, usize),
    },
    /// Failure while parsing a JSON model description.
    Parse {
        /// Byte offset at which parsing failed.
        offset: usize,
        /// Description of what went wrong.
        detail: String,
    },
    /// The ONNX-style graph is structurally valid JSON but semantically
    /// malformed (missing field, unsupported op, bad attribute, ...).
    Ingest {
        /// Description of the problem.
        detail: String,
    },
    /// A quantization precision outside the supported 1..=32 bit range.
    InvalidPrecision {
        /// The rejected bit width.
        bits: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownLayer { reference } => {
                write!(f, "reference to unknown layer `{reference}`")
            }
            ModelError::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch at layer `{layer}`: {detail}")
            }
            ModelError::CyclicGraph => write!(f, "layer graph contains a cycle"),
            ModelError::EmptyModel => write!(f, "model contains no layers"),
            ModelError::AddShapeMismatch { layer, lhs, rhs } => write!(
                f,
                "add layer `{layer}` combines mismatched shapes {}x{}x{} and {}x{}x{}",
                lhs.0, lhs.1, lhs.2, rhs.0, rhs.1, rhs.2
            ),
            ModelError::Parse { offset, detail } => {
                write!(f, "JSON parse error at byte {offset}: {detail}")
            }
            ModelError::Ingest { detail } => write!(f, "model ingestion error: {detail}"),
            ModelError::InvalidPrecision { bits } => {
                write!(
                    f,
                    "invalid quantization precision: {bits} bits (expected 1..=32)"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = ModelError::CyclicGraph;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn add_mismatch_message_contains_shapes() {
        let e = ModelError::AddShapeMismatch {
            layer: "add1".into(),
            lhs: (64, 56, 56),
            rhs: (128, 28, 28),
        };
        let s = e.to_string();
        assert!(s.contains("64x56x56"));
        assert!(s.contains("128x28x28"));
    }
}
