use std::fmt;

/// Index of a layer within its [`Model`](crate::Model).
///
/// Layer ids are assigned densely in insertion order by
/// [`ModelBuilder`](crate::ModelBuilder) and are stable for the lifetime of
/// the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub(crate) usize);

impl LayerId {
    /// Raw dense index of this layer.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Pooling flavor for [`LayerKind::Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Max => write!(f, "max"),
            PoolKind::Avg => write!(f, "avg"),
        }
    }
}

/// The operation a [`Layer`] performs.
///
/// The set covers the paper's benchmark networks (AlexNet, VGG13/16, MSRA,
/// ResNet18 and their CIFAR variants) plus the op types modern nets need:
/// depthwise/grouped convolution, squeeze-excite gating
/// ([`Sigmoid`](LayerKind::Sigmoid) + [`Mul`](LayerKind::Mul)) and
/// attention-style projections ([`MatMul`](LayerKind::MatMul),
/// [`Softmax`](LayerKind::Softmax)). Weight-bearing kinds
/// ([`Conv2d`](LayerKind::Conv2d), [`Linear`](LayerKind::Linear) and
/// [`MatMul`](LayerKind::MatMul)) are the ones mapped onto ReRAM crossbars;
/// the rest execute on macro ALUs or are folded away during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution with square kernels. `groups > 1` partitions input and
    /// output channels into that many independent groups (depthwise when
    /// `groups == in_channels == out_channels`); each filter then spans only
    /// `CI / groups` input channels.
    Conv2d {
        /// Number of output channels (`CO`).
        out_channels: usize,
        /// Kernel extent (`WK`, square).
        kernel: usize,
        /// Stride (same in both spatial dimensions).
        stride: usize,
        /// Zero padding on each border.
        padding: usize,
        /// Channel groups (1 = dense convolution).
        groups: usize,
    },
    /// Fully-connected layer; treated as a `1x1` convolution over a flat
    /// input for crossbar-mapping purposes.
    Linear {
        /// Number of output features.
        out_features: usize,
    },
    /// Position-wise projection with a static weight matrix: every spatial
    /// position's channel vector is multiplied by the same `CI x out_features`
    /// matrix (the q/k/v/o projections of a transformer block). Mapped onto
    /// crossbars as a `1x1` convolution that preserves spatial extent.
    MatMul {
        /// Number of output features per position.
        out_features: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window extent (square).
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling: collapses `HxW` to `1x1`.
    GlobalAvgPool,
    /// Rectified linear activation (also stands in for PReLU in the MSRA
    /// network: identical scheduling/ALU cost class).
    Relu,
    /// Batch normalization; folded into the preceding conv's weights at
    /// inference time, kept for graph fidelity with ingested models.
    BatchNorm,
    /// Elementwise residual addition of exactly two producer layers.
    Add,
    /// Elementwise multiplication of exactly two producer layers. Shapes must
    /// match, or one operand may be a per-channel `Cx1x1` gate broadcast over
    /// the other's `CxHxW` (squeeze-excite scaling).
    Mul,
    /// Logistic sigmoid activation (squeeze-excite gates); same ALU cost
    /// class as ReLU.
    Sigmoid,
    /// Softmax over the channel dimension at each spatial position
    /// (attention-score normalization); same ALU cost class as ReLU.
    Softmax,
    /// Reshape to a flat vector; free at the hardware level.
    Flatten,
}

impl LayerKind {
    /// Whether this layer carries weights that must be programmed into
    /// crossbars (convolution or fully-connected).
    pub fn bears_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d { .. } | LayerKind::Linear { .. } | LayerKind::MatMul { .. }
        )
    }

    /// Whether the layer is a pure shape/bookkeeping operation with no
    /// hardware cost (flatten, inference-time-folded batch norm).
    pub fn is_free(&self) -> bool {
        matches!(self, LayerKind::Flatten | LayerKind::BatchNorm)
    }

    /// Short mnemonic used in reports and IR dumps.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::Linear { .. } => "fc",
            LayerKind::MatMul { .. } => "matmul",
            LayerKind::Pool {
                kind: PoolKind::Max,
                ..
            } => "maxpool",
            LayerKind::Pool {
                kind: PoolKind::Avg,
                ..
            } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::Relu => "relu",
            LayerKind::BatchNorm => "bn",
            LayerKind::Add => "add",
            LayerKind::Mul => "mul",
            LayerKind::Sigmoid => "sigmoid",
            LayerKind::Softmax => "softmax",
            LayerKind::Flatten => "flatten",
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                write!(f, "conv {out_channels}o k{kernel} s{stride} p{padding}")?;
                if *groups > 1 {
                    write!(f, " g{groups}")?;
                }
                Ok(())
            }
            LayerKind::Linear { out_features } => write!(f, "fc {out_features}o"),
            LayerKind::MatMul { out_features } => write!(f, "matmul {out_features}o"),
            LayerKind::Pool {
                kind,
                kernel,
                stride,
            } => {
                write!(f, "{kind}pool k{kernel} s{stride}")
            }
            other => write!(f, "{}", other.mnemonic()),
        }
    }
}

/// A single node of the model graph: an operation plus its producers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Unique human-readable name (e.g. `conv3_2`).
    pub name: String,
    /// The operation performed.
    pub kind: LayerKind,
    /// Producer layers. Empty for the first layer (fed by the model input);
    /// exactly two for [`LayerKind::Add`]; one otherwise.
    pub inputs: Vec<LayerId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_bearing_kinds() {
        assert!(LayerKind::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1
        }
        .bears_weights());
        assert!(LayerKind::Linear { out_features: 1000 }.bears_weights());
        assert!(LayerKind::MatMul { out_features: 64 }.bears_weights());
        assert!(!LayerKind::Relu.bears_weights());
        assert!(!LayerKind::Add.bears_weights());
        assert!(!LayerKind::Mul.bears_weights());
        assert!(!LayerKind::Sigmoid.bears_weights());
        assert!(!LayerKind::Softmax.bears_weights());
    }

    #[test]
    fn free_kinds() {
        assert!(LayerKind::Flatten.is_free());
        assert!(LayerKind::BatchNorm.is_free());
        assert!(!LayerKind::Relu.is_free());
    }

    #[test]
    fn display_conv() {
        let k = LayerKind::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        assert_eq!(k.to_string(), "conv 128o k3 s2 p1");
    }

    #[test]
    fn display_grouped_conv_and_matmul() {
        let dw = LayerKind::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 128,
        };
        assert_eq!(dw.to_string(), "conv 128o k3 s1 p1 g128");
        assert_eq!(
            LayerKind::MatMul { out_features: 64 }.to_string(),
            "matmul 64o"
        );
        assert_eq!(LayerKind::Softmax.to_string(), "softmax");
    }

    #[test]
    fn layer_id_display() {
        assert_eq!(LayerId(7).to_string(), "L7");
        assert_eq!(LayerId(7).index(), 7);
    }
}
