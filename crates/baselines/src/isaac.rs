//! An end-to-end ISAAC-like fixed architecture, runnable on our simulator.
//!
//! ISAAC is the only comparator the paper evaluates end-to-end ("only ISAAC
//! offers detailed parameters to assess the effective power efficiency",
//! Sec. V-A). This module reconstructs an ISAAC-class accelerator inside the
//! PIMSYN architecture template: 128x128 crossbars with 2-bit cells, 1-bit
//! DACs, one fixed 8-bit ADC per crossbar, WOHO-proportional weight
//! duplication, identical tiles of 96 crossbars — the manual design whose
//! power distribution PIMSYN's DSE then beats (Fig. 6).

use pimsyn_arch::{
    AdcConfig, Architecture, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams,
    LayerHardware, MacroMode, Watts,
};
use pimsyn_dse::{woho_proportional, DseError};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::{simulate, SimError, SimReport};

/// Crossbars per ISAAC tile (12 IMAs x 8 crossbars).
pub const CROSSBARS_PER_TILE: usize = 96;

/// Share of total power ISAAC's fixed design leaves to the crossbars
/// (the paper observes >80% of ISAAC's power goes to peripherals; the
/// fraction here reproduces that split under the Table III model).
pub const ISAAC_RRAM_RATIO: f64 = 0.067;

/// The smallest power envelope at which the ISAAC-like design can hold one
/// copy of `model`'s weights (a multi-chip deployment for large networks,
/// exactly as the original ISAAC paper scales out).
pub fn isaac_min_power(model: &Model, hw: &HardwareParams) -> Watts {
    let crossbar = CrossbarConfig::new(128, 2).expect("static ISAAC config is valid");
    let one_copy: usize = model
        .weight_layers()
        .map(|wl| crossbar.crossbar_set(wl, model.precision().weight_bits()))
        .sum();
    crossbar.power(hw) * one_copy as f64 / ISAAC_RRAM_RATIO * 1.02
}

/// Builds the ISAAC-like fixed architecture for `model` under a total power
/// envelope, together with its compiled dataflow.
///
/// # Errors
///
/// [`DseError`] when the envelope cannot hold one copy of the weights.
pub fn isaac_architecture(
    model: &Model,
    total_power: Watts,
    hw: &HardwareParams,
) -> Result<(Architecture, Dataflow), DseError> {
    let crossbar = CrossbarConfig::new(128, 2).expect("static ISAAC config is valid");
    let dac = DacConfig::new(1).expect("static ISAAC config is valid");

    let budget = crossbar.budget(total_power, ISAAC_RRAM_RATIO, hw);
    let dup = woho_proportional(model, crossbar, budget)?;
    let df = Dataflow::compile(model, crossbar, dac, &dup)?;

    let adc = AdcConfig::new(8, hw); // ISAAC's fixed 8-bit 1.28 GS/s ADC
    let layers: Vec<LayerHardware> = df
        .programs()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let crossbars = p.crossbars;
            let tiles = crossbars.div_ceil(CROSSBARS_PER_TILE).max(1);
            // Rule (c) cap so the fixed design remains template-legal.
            let tiles = tiles.min((p.wt_dup * p.row_groups).max(1));
            LayerHardware {
                layer: i,
                name: p.name.clone(),
                wt_dup: p.wt_dup,
                crossbar_set: p.crossbar_set,
                macros: tiles,
                shares_macros_with: None,
                adc,
                components: ComponentCounts {
                    adc: crossbars, // one ADC per crossbar: intra-layer reuse only
                    shift_add: crossbars.max(1),
                    pool: if p.pool_ops > 0 {
                        (crossbars / 8).max(1)
                    } else {
                        0
                    },
                    activation: if p.act_ops > 0 {
                        (crossbars / 8).max(1)
                    } else {
                        0
                    },
                    eltwise: if p.eltwise_ops > 0 {
                        (crossbars / 8).max(1)
                    } else {
                        0
                    },
                },
            }
        })
        .collect();

    let arch = Architecture {
        model_name: model.name().to_string(),
        crossbar,
        dac,
        ratio_rram: ISAAC_RRAM_RATIO,
        power_budget: total_power,
        macro_mode: MacroMode::Identical,
        layers,
        hw: hw.clone(),
    };
    Ok((arch, df))
}

/// Evaluates the ISAAC-like architecture end-to-end with the cycle-accurate
/// engine (`images` pipelined inferences).
///
/// # Errors
///
/// Construction errors ([`DseError`]) or simulation errors ([`SimError`],
/// boxed into [`DseError::Sim`]).
pub fn evaluate_isaac(
    model: &Model,
    total_power: Watts,
    hw: &HardwareParams,
    images: usize,
) -> Result<SimReport, DseError> {
    let (arch, df) = isaac_architecture(model, total_power, hw)?;
    simulate(model, &df, &arch, images).map_err(DseError::Sim)
}

/// The same evaluation via the fast analytic model (used where the harness
/// sweeps many power budgets).
///
/// # Errors
///
/// Construction or evaluation failure, as [`DseError`].
pub fn evaluate_isaac_analytic(
    model: &Model,
    total_power: Watts,
    hw: &HardwareParams,
) -> Result<SimReport, DseError> {
    let (arch, df) = isaac_architecture(model, total_power, hw)?;
    pimsyn_sim::evaluate_analytic(model, &df, &arch).map_err(DseError::Sim)
}

/// Re-export for error typing convenience in downstream harnesses.
pub type IsaacSimError = SimError;

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    #[test]
    fn isaac_power_split_is_peripheral_heavy() {
        let model = zoo::alexnet_cifar(10);
        let (arch, _) = isaac_architecture(&model, Watts(25.0), &hw()).unwrap();
        let pb = arch.power_breakdown();
        assert!(
            pb.peripheral_share() > 0.8,
            "ISAAC should burn >80% on peripherals, got {:.2}",
            pb.peripheral_share()
        );
    }

    #[test]
    fn isaac_respects_power_envelope() {
        let model = zoo::alexnet_cifar(10);
        let budget = Watts(25.0);
        let (arch, _) = isaac_architecture(&model, budget, &hw()).unwrap();
        let realized = arch.power_breakdown().total();
        assert!(
            realized.value() <= budget.value() * 1.05,
            "realized {realized} vs budget {budget}"
        );
        arch.validate(&model).unwrap();
    }

    #[test]
    fn isaac_runs_end_to_end() {
        let model = zoo::alexnet_cifar(10);
        let report = evaluate_isaac(&model, Watts(25.0), &hw(), 1).unwrap();
        assert!(report.latency.value() > 0.0);
        assert!(report.efficiency_tops_per_watt() > 0.0);
    }

    #[test]
    fn analytic_and_cycle_agree_on_magnitude() {
        let model = zoo::alexnet_cifar(10);
        let a = evaluate_isaac_analytic(&model, Watts(25.0), &hw()).unwrap();
        let c = evaluate_isaac(&model, Watts(25.0), &hw(), 1).unwrap();
        let ratio = c.latency.value() / a.latency.value();
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn too_small_envelope_fails() {
        let model = zoo::vgg16();
        assert!(isaac_architecture(&model, Watts(0.5), &hw()).is_err());
    }
}
