//! A Gibbon-like greedy co-exploration proxy.
//!
//! Gibbon (Sun et al., TCAD'23) co-explores CNN models and PIM architectures
//! but — as the paper notes in Sec. V-C — does not explore weight
//! duplication, power partitioning (`RatioRram`) or macro sharing. This
//! proxy reproduces that *class* of explorer inside our stack: it greedily
//! enumerates the per-crossbar parameters (size, cell bits, DAC bits) with a
//! single weight copy per layer and no macro sharing, then picks the
//! EDP-optimal configuration. Table V's published Gibbon numbers are kept in
//! [`crate::published::TABLE5`] for side-by-side reporting.

use pimsyn_arch::{
    Architecture, CrossbarConfig, DacConfig, RESDAC_CHOICES, RESRRAM_CHOICES, XBSIZE_CHOICES,
};
use pimsyn_arch::{HardwareParams, MacroMode, Watts};
use pimsyn_dse::{allocate_components, no_duplication, AllocRequest, DesignPoint, DseError};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::{evaluate_analytic, SimReport};

/// Outcome of the Gibbon-like exploration.
#[derive(Debug, Clone)]
pub struct GibbonProxyOutcome {
    /// The EDP-optimal architecture found.
    pub architecture: Architecture,
    /// Its evaluation.
    pub report: SimReport,
    /// Configurations enumerated.
    pub evaluated: usize,
}

/// Runs the greedy enumeration for `model` under `total_power`.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no enumerated configuration fits
/// the power envelope.
pub fn gibbon_proxy(
    model: &Model,
    total_power: Watts,
    hw: &HardwareParams,
) -> Result<GibbonProxyOutcome, DseError> {
    let mut best: Option<(f64, Architecture, SimReport)> = None;
    let mut evaluated = 0usize;

    for &size in &XBSIZE_CHOICES {
        for &cell in &RESRRAM_CHOICES {
            let crossbar =
                CrossbarConfig::new(size, cell).expect("choices are legal by construction");
            for &dac_bits in &RESDAC_CHOICES {
                let dac = DacConfig::new(dac_bits).expect("choices are legal by construction");
                // Gibbon-class explorers keep a single weight copy.
                let budget = crossbar.budget(total_power, 0.4, hw);
                let Ok(dup) = no_duplication(model, crossbar, budget) else {
                    continue;
                };
                let Ok(df) = Dataflow::compile(model, crossbar, dac, &dup) else {
                    continue;
                };
                evaluated += 1;
                let l = model.weight_layer_count();
                let macros = vec![1usize; l];
                let shares = vec![None; l];
                // Use the realized RRAM share as the power split: the fixed
                // single-copy design spends whatever its crossbars need.
                let rram_power = crossbar.power(hw) * df.total_crossbars() as f64;
                let ratio = (rram_power.value() / total_power.value()).clamp(0.05, 0.6);
                let req = AllocRequest {
                    model,
                    dataflow: &df,
                    point: DesignPoint {
                        ratio_rram: ratio,
                        crossbar,
                    },
                    total_power,
                    hw,
                    macros: &macros,
                    shares: &shares,
                    macro_mode: MacroMode::Identical,
                };
                let Ok(arch) = allocate_components(&req) else {
                    continue;
                };
                let Ok(report) = evaluate_analytic(model, &df, &arch) else {
                    continue;
                };
                let edp = report.edp_ms_mj();
                if edp > 0.0 && best.as_ref().is_none_or(|(b, _, _)| edp < *b) {
                    best = Some((edp, arch, report));
                }
            }
        }
    }

    match best {
        Some((_, architecture, report)) => Ok(GibbonProxyOutcome {
            architecture,
            report,
            evaluated,
        }),
        None => Err(DseError::NoFeasibleSolution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    #[test]
    fn proxy_finds_configuration_for_cifar_models() {
        let hw = HardwareParams::date24();
        let out = gibbon_proxy(&zoo::alexnet_cifar(10), Watts(8.0), &hw).unwrap();
        assert!(out.evaluated > 1);
        assert!(out.report.edp_ms_mj() > 0.0);
        assert!(out.report.latency.value() > 0.0);
    }

    #[test]
    fn proxy_has_no_duplication_or_sharing() {
        let hw = HardwareParams::date24();
        let out = gibbon_proxy(&zoo::alexnet_cifar(10), Watts(8.0), &hw).unwrap();
        for lh in &out.architecture.layers {
            assert_eq!(lh.wt_dup, 1);
            assert!(lh.shares_macros_with.is_none());
        }
    }

    #[test]
    fn infeasible_power_is_reported() {
        let hw = HardwareParams::date24();
        assert!(matches!(
            gibbon_proxy(&zoo::vgg16(), Watts(0.2), &hw),
            Err(DseError::NoFeasibleSolution)
        ));
    }
}
