//! Component-inventory models of the five manually-designed PIM accelerators
//! of Table IV.
//!
//! Each baseline is described by its per-crossbar resource inventory (how
//! many ADCs of what resolution serve a crossbar, converter resolutions,
//! crossbar geometry) plus a microarchitectural throughput derate capturing
//! input-encoding overheads that our MVM model does not represent natively
//! (e.g. PipeLayer's spike-train integration, PRIME's voltage-level input
//! constraints in a main-memory setting). Peak efficiency is then computed
//! with the *same* Table III power model used for synthesized accelerators,
//! which is the apples-to-apples comparison Table IV needs.

use pimsyn_arch::{AdcConfig, CrossbarConfig, DacConfig, HardwareParams};

/// Inventory description of a manually-designed crossbar accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineInventory {
    /// Accelerator name.
    pub name: &'static str,
    /// Crossbar geometry.
    pub crossbar: CrossbarConfig,
    /// Input DAC resolution.
    pub dac: DacConfig,
    /// ADCs per crossbar (fractional = time-multiplexed across crossbars).
    pub adcs_per_crossbar: f64,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// Digital ALU units (shift-add class) per crossbar.
    pub alus_per_crossbar: f64,
    /// Crossbars per tile/macro (fixes the per-crossbar share of eDRAM,
    /// router and register power).
    pub crossbars_per_macro: usize,
    /// Extra throughput division from the design's input encoding /
    /// scheduling (1.0 = none).
    pub throughput_derate: f64,
    /// Peak TOPS/W the original paper reports (Table IV row).
    pub published_tops_per_watt: f64,
}

impl BaselineInventory {
    /// Per-crossbar power under the Table III model: crossbar read + DAC
    /// row drivers + ADC share + ALU share + per-macro infrastructure share.
    pub fn power_per_crossbar(&self, hw: &HardwareParams) -> f64 {
        let adc = AdcConfig::new(self.adc_bits, hw);
        let xb = self.crossbar.power(hw).value();
        let dacs = self.dac.power(hw).value() * self.crossbar.size() as f64;
        let adcs = adc.power(hw).value() * self.adcs_per_crossbar;
        let alus = hw.shift_add_power.value() * self.alus_per_crossbar;
        let macro_fixed = (hw.scratchpad_power + hw.noc_router_power + hw.register_power).value()
            / self.crossbars_per_macro as f64;
        xb + dacs + adcs + alus + macro_fixed
    }

    /// Peak effective ops/s of one crossbar at the given quantification.
    pub fn ops_per_crossbar(
        &self,
        activation_bits: u32,
        weight_bits: u32,
        hw: &HardwareParams,
    ) -> f64 {
        let per_mvm = 2.0 * (self.crossbar.size() as f64).powi(2);
        let derate = (self.dac.bit_iterations(activation_bits)
            * self.crossbar.weight_slices(weight_bits)) as f64
            * self.throughput_derate;
        per_mvm / hw.mvm_latency.value() / derate
    }

    /// Modeled peak power efficiency in TOPS/W — the quantity our Table IV
    /// harness compares against both PIMSYN and the published figure.
    pub fn peak_tops_per_watt(
        &self,
        activation_bits: u32,
        weight_bits: u32,
        hw: &HardwareParams,
    ) -> f64 {
        self.ops_per_crossbar(activation_bits, weight_bits, hw) / 1e12 / self.power_per_crossbar(hw)
    }
}

fn xb(size: usize, bits: u32) -> CrossbarConfig {
    CrossbarConfig::new(size, bits).expect("static baseline inventory is valid")
}

fn dac(bits: u32) -> DacConfig {
    DacConfig::new(bits).expect("static baseline inventory is valid")
}

/// ISAAC (Shafiee et al., ISCA'16): 128x128 crossbars with 2-bit cells,
/// 1-bit DACs, one 8-bit 1.28 GS/s ADC per crossbar, S+A trees, 12x8
/// crossbars per tile.
pub fn isaac() -> BaselineInventory {
    BaselineInventory {
        name: "ISAAC",
        crossbar: xb(128, 2),
        dac: dac(1),
        adcs_per_crossbar: 1.0,
        adc_bits: 8,
        alus_per_crossbar: 1.0,
        crossbars_per_macro: 96,
        throughput_derate: 1.0,
        published_tops_per_watt: 0.63,
    }
}

/// PipeLayer (Song et al., HPCA'17): 128x128 arrays, spike-coded inputs
/// (integration stretches effective MVM time ~2x), higher-resolution
/// integrate-and-fire readout modeled as a 10-bit converter per crossbar.
pub fn pipelayer() -> BaselineInventory {
    BaselineInventory {
        name: "PipeLayer",
        crossbar: xb(128, 4),
        dac: dac(1),
        adcs_per_crossbar: 1.0,
        adc_bits: 10,
        alus_per_crossbar: 1.0,
        crossbars_per_macro: 64,
        throughput_derate: 4.0,
        published_tops_per_watt: 0.14,
    }
}

/// PRIME (Chi et al., ISCA'16): 256x256 arrays with 4-bit cells inside a
/// ReRAM main memory; 8-bit native quantification (projected to 16-bit in
/// Table IV), voltage-source sharing and memory-mode coexistence derate
/// sustained throughput.
pub fn prime() -> BaselineInventory {
    BaselineInventory {
        name: "PRIME",
        crossbar: xb(256, 4),
        dac: dac(2),
        adcs_per_crossbar: 2.0,
        adc_bits: 8,
        alus_per_crossbar: 2.0,
        crossbars_per_macro: 16,
        throughput_derate: 5.0,
        published_tops_per_watt: 0.5,
    }
}

/// PUMA (Ankit et al., ASPLOS'19): ISAAC-class analog core with a leaner
/// digital pipeline; ADCs time-shared across two crossbars.
pub fn puma() -> BaselineInventory {
    BaselineInventory {
        name: "PUMA",
        crossbar: xb(128, 2),
        dac: dac(1),
        adcs_per_crossbar: 0.5,
        adc_bits: 8,
        alus_per_crossbar: 0.5,
        crossbars_per_macro: 64,
        throughput_derate: 1.1,
        published_tops_per_watt: 0.84,
    }
}

/// AtomLayer (Qiao et al., DAC'18): atomic row-by-row computation avoids
/// whole-layer buffering; per-crossbar resources resemble ISAAC with a
/// modest scheduling derate.
pub fn atomlayer() -> BaselineInventory {
    BaselineInventory {
        name: "AtomLayer",
        crossbar: xb(128, 2),
        dac: dac(1),
        adcs_per_crossbar: 1.0,
        adc_bits: 8,
        alus_per_crossbar: 1.5,
        crossbars_per_macro: 64,
        throughput_derate: 1.0,
        published_tops_per_watt: 0.68,
    }
}

/// All five Table IV baselines, in the paper's column order.
pub fn table4_inventories() -> Vec<BaselineInventory> {
    vec![pipelayer(), isaac(), prime(), puma(), atomlayer()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    #[test]
    fn modeled_peaks_land_near_published() {
        // The inventory + Table III power model must reproduce each paper's
        // reported peak within a factor of 2 (different technology nodes and
        // accounting conventions prevent exactness; the *ordering* and
        // magnitudes are what Table IV needs).
        for inv in table4_inventories() {
            let modeled = inv.peak_tops_per_watt(16, 16, &hw());
            let ratio = modeled / inv.published_tops_per_watt;
            assert!(
                (0.5..2.5).contains(&ratio),
                "{}: modeled {modeled:.3} vs published {:.3} (ratio {ratio:.2})",
                inv.name,
                inv.published_tops_per_watt
            );
        }
    }

    #[test]
    fn isaac_is_peripheral_dominated() {
        let inv = isaac();
        let hw = hw();
        let total = inv.power_per_crossbar(&hw);
        let xb_only = inv.crossbar.power(&hw).value();
        assert!(
            xb_only / total < 0.2,
            "ISAAC's crossbars should be <20% of power, got {:.2}",
            xb_only / total
        );
    }

    #[test]
    fn ordering_matches_table4() {
        // PUMA > AtomLayer ~ ISAAC > PRIME > PipeLayer in the published
        // column; our modeled column must keep PipeLayer last and PUMA first.
        let hw = hw();
        let peaks: Vec<(&str, f64)> = table4_inventories()
            .iter()
            .map(|i| (i.name, i.peak_tops_per_watt(16, 16, &hw)))
            .collect();
        let pipelayer = peaks.iter().find(|(n, _)| *n == "PipeLayer").unwrap().1;
        let puma = peaks.iter().find(|(n, _)| *n == "PUMA").unwrap().1;
        for (name, p) in &peaks {
            if *name != "PipeLayer" {
                assert!(*p > pipelayer, "{name} should beat PipeLayer");
            }
            if *name != "PUMA" {
                assert!(*p < puma, "PUMA should beat {name}");
            }
        }
    }

    #[test]
    fn lower_precision_raises_efficiency() {
        let inv = isaac();
        let hw = hw();
        assert!(inv.peak_tops_per_watt(8, 8, &hw) > inv.peak_tops_per_watt(16, 16, &hw));
    }
}
