//! Published reference numbers from the compared works, recorded verbatim
//! from the paper's tables so harnesses can print paper-vs-measured rows.

/// Peak power efficiency (TOPS/W) reported in Table IV for each accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedPeak {
    /// Accelerator name as printed in the paper.
    pub name: &'static str,
    /// Peak TOPS/W at 16-bit quantification (PRIME projected from 8-bit).
    pub tops_per_watt: f64,
}

/// Table IV's comparison row: the five manually-designed accelerators.
pub const TABLE4_BASELINES: [PublishedPeak; 5] = [
    PublishedPeak {
        name: "PipeLayer",
        tops_per_watt: 0.14,
    },
    PublishedPeak {
        name: "ISAAC",
        tops_per_watt: 0.63,
    },
    PublishedPeak {
        name: "PRIME",
        tops_per_watt: 0.5,
    },
    PublishedPeak {
        name: "PUMA",
        tops_per_watt: 0.84,
    },
    PublishedPeak {
        name: "AtomLayer",
        tops_per_watt: 0.68,
    },
];

/// PIMSYN's own Table IV row.
pub const TABLE4_PIMSYN_TOPS_PER_WATT: f64 = 3.07;

/// One row of Table V: Gibbon vs PIMSYN on CIFAR-10/CIFAR-100 (values are
/// identical across the two datasets in the paper up to rounding; we record
/// the CIFAR-10 column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// Benchmark network.
    pub model: &'static str,
    /// Gibbon: energy-delay product in ms x mJ.
    pub gibbon_edp: f64,
    /// Gibbon: energy in mJ.
    pub gibbon_energy: f64,
    /// Gibbon: latency in ms.
    pub gibbon_latency: f64,
    /// PIMSYN (paper): EDP in ms x mJ.
    pub pimsyn_edp: f64,
    /// PIMSYN (paper): energy in mJ.
    pub pimsyn_energy: f64,
    /// PIMSYN (paper): latency in ms.
    pub pimsyn_latency: f64,
}

/// Table V as published.
pub const TABLE5: [Table5Row; 3] = [
    Table5Row {
        model: "alexnet-cifar",
        gibbon_edp: 0.38,
        gibbon_energy: 0.38,
        gibbon_latency: 0.99,
        pimsyn_edp: 0.024,
        pimsyn_energy: 0.119,
        pimsyn_latency: 0.197,
    },
    Table5Row {
        model: "vgg16-cifar",
        gibbon_edp: 17.22,
        gibbon_energy: 2.68,
        gibbon_latency: 6.43,
        pimsyn_edp: 7.94,
        pimsyn_energy: 2.98,
        pimsyn_latency: 2.66,
    },
    Table5Row {
        model: "resnet18-cifar",
        gibbon_edp: 4.75,
        gibbon_energy: 1.33,
        gibbon_latency: 3.58,
        pimsyn_edp: 3.76,
        pimsyn_energy: 2.34,
        pimsyn_latency: 1.61,
    },
];

/// Fig. 6 reference: ISAAC's effective power efficiency is beaten by
/// 1.4-5.8x (3.9x average) and throughput by 2.30-6.45x (3.4x average).
pub const FIG6_EFFICIENCY_GAIN_RANGE: (f64, f64) = (1.4, 5.8);
/// Fig. 6 throughput improvement range.
pub const FIG6_THROUGHPUT_GAIN_RANGE: (f64, f64) = (2.30, 6.45);

/// Fig. 7: SA-selected duplication vs the WOHO heuristic (+19% power
/// efficiency, +27% throughput).
pub const FIG7_SA_VS_HEURISTIC: (f64, f64) = (1.19, 1.27);
/// Fig. 8: specialized vs identical macros (+13% efficiency, +31% throughput).
pub const FIG8_SPECIALIZED_VS_IDENTICAL: (f64, f64) = (1.13, 1.31);
/// Fig. 9: with vs without inter-layer macro sharing (+8%, +15%).
pub const FIG9_SHARING_VS_NOT: (f64, f64) = (1.08, 1.15);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_improvements_match_paper() {
        // The paper reports 21.45x over PipeLayer ... 4.51x over AtomLayer.
        let expected = [21.45, 4.87, 6.14, 3.65, 4.51];
        for (b, e) in TABLE4_BASELINES.iter().zip(expected) {
            let ratio = TABLE4_PIMSYN_TOPS_PER_WATT / b.tops_per_watt;
            assert!(
                (ratio - e).abs() / e < 0.03,
                "{}: ratio {ratio:.2} vs paper {e:.2}",
                b.name
            );
        }
    }

    #[test]
    fn table5_edp_is_consistent() {
        // EDP must be roughly energy x latency for the published rows.
        for row in TABLE5 {
            let product = row.pimsyn_energy * row.pimsyn_latency;
            assert!(
                (product - row.pimsyn_edp).abs() / row.pimsyn_edp < 0.05,
                "{}: {product} vs {}",
                row.model,
                row.pimsyn_edp
            );
        }
    }
}
