//! Manually-designed PIM accelerator baselines and comparison machinery for
//! the PIMSYN reproduction.
//!
//! The paper compares auto-synthesized accelerators against five manual
//! designs (Table IV), runs ISAAC end-to-end (Fig. 6), ablates duplication
//! strategies (Fig. 7) and compares with the Gibbon co-exploration tool
//! (Table V). This crate implements every comparator:
//!
//! - [`inventory`]: component-inventory models of PipeLayer / ISAAC / PRIME
//!   / PUMA / AtomLayer evaluated under the *same* Table III power model.
//! - [`isaac`]: a full ISAAC-like fixed architecture runnable on the
//!   cycle-accurate simulator.
//! - [`heuristics`]: the Fig. 7 duplication-strategy arms.
//! - [`gibbon`]: a Gibbon-like greedy co-exploration proxy plus the
//!   published Table V constants ([`published`]).
//!
//! # Example
//!
//! ```
//! use pimsyn_arch::HardwareParams;
//! use pimsyn_baselines::inventory;
//!
//! let hw = HardwareParams::date24();
//! let isaac = inventory::isaac();
//! let eff = isaac.peak_tops_per_watt(16, 16, &hw);
//! assert!(eff > 0.2 && eff < 2.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gibbon;
pub mod heuristics;
pub mod inventory;
pub mod isaac;
pub mod published;
