//! Duplication-strategy arms for the Fig. 7 ablation, expressed as
//! ready-made synthesis option sets so all three arms run through the same
//! macro-partitioning and components-allocation stages.

use pimsyn::{SynthesisOptions, WtDupStrategy};
use pimsyn_arch::Watts;

/// The three Fig. 7 arms: `(label, strategy)`.
pub fn fig7_strategies() -> Vec<(&'static str, WtDupStrategy)> {
    vec![
        ("SA-based", WtDupStrategy::SimulatedAnnealing),
        ("Heuristic", WtDupStrategy::WohoProportional),
        ("No Duplication", WtDupStrategy::NoDuplication),
    ]
}

/// Fast-effort synthesis options for a given strategy and power budget,
/// seeded identically across arms so only the strategy differs.
pub fn fig7_options(strategy: WtDupStrategy, power: Watts) -> SynthesisOptions {
    SynthesisOptions::fast(power)
        .with_strategy(strategy)
        .with_seed(0xF167)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn::Synthesizer;
    use pimsyn_model::zoo;

    #[test]
    fn three_arms_exist() {
        assert_eq!(fig7_strategies().len(), 3);
    }

    #[test]
    fn sa_beats_no_duplication() {
        // The central Fig. 7 claim: without duplication, throughput craters.
        let model = zoo::alexnet_cifar(10);
        let power = Watts(8.0);
        let sa = Synthesizer::new(fig7_options(WtDupStrategy::SimulatedAnnealing, power))
            .synthesize(&model)
            .unwrap();
        let nodup = Synthesizer::new(fig7_options(WtDupStrategy::NoDuplication, power))
            .synthesize(&model)
            .unwrap();
        assert!(
            sa.analytic.throughput_ops > nodup.analytic.throughput_ops,
            "SA {} should beat no-dup {}",
            sa.analytic.throughput_ops,
            nodup.analytic.throughput_ops
        );
    }
}
