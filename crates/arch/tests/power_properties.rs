//! Property tests for the hardware power/latency models: monotonicity and
//! scaling laws that every Table III instantiation must obey.

use pimsyn_arch::{
    AdcConfig, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams, NocConfig,
    ScratchpadSpec, Watts,
};
use proptest::prelude::*;

fn arb_xb() -> impl Strategy<Value = CrossbarConfig> {
    (prop::sample::select(vec![128usize, 256, 512]), prop::sample::select(vec![1u32, 2, 4]))
        .prop_map(|(s, c)| CrossbarConfig::new(s, c).expect("legal"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crossbar power grows with size and cell resolution.
    #[test]
    fn crossbar_power_monotone(a in arb_xb(), b in arb_xb()) {
        let hw = HardwareParams::date24();
        if a.size() <= b.size() && a.cell_bits() <= b.cell_bits() {
            prop_assert!(a.power(&hw).value() <= b.power(&hw).value() + 1e-15);
        }
    }

    /// Eq. (3): the crossbar budget is monotone in both power and ratio, and
    /// exactly inversely proportional to per-crossbar power.
    #[test]
    fn budget_monotonicity(
        xb in arb_xb(),
        power in 1.0f64..100.0,
        ratio in 0.1f64..0.4,
    ) {
        let hw = HardwareParams::date24();
        let base = xb.budget(Watts(power), ratio, &hw);
        prop_assert!(xb.budget(Watts(power * 2.0), ratio, &hw) >= base * 2 - 1);
        prop_assert!(xb.budget(Watts(power), ratio * 0.5, &hw) <= base / 2 + 1);
    }

    /// Eq. (1): crossbar sets shrink (weakly) as crossbars grow and cells
    /// store more bits.
    #[test]
    fn crossbar_set_monotone_in_capacity(
        rows in 1usize..30_000,
        cols in 1usize..4_096,
    ) {
        let hw = HardwareParams::date24();
        let _ = hw;
        let model = {
            // Build a synthetic weight layer via a linear layer of the right
            // geometry (rows = in features, cols = out features).
            let mut b = pimsyn_model::ModelBuilder::new(
                "t",
                pimsyn_model::TensorShape::new(rows, 1, 1),
            );
            let id = b.layer("id", pimsyn_model::LayerKind::Relu, vec![]);
            let f = b.flatten("f", id);
            b.linear("fc", f, cols);
            b.build().expect("valid")
        };
        let wl = model.weight_layer(0);
        let small = CrossbarConfig::new(128, 1).expect("legal");
        let large = CrossbarConfig::new(512, 4).expect("legal");
        prop_assert!(large.crossbar_set(wl, 16) <= small.crossbar_set(wl, 16));
        // A set always holds at least one crossbar.
        prop_assert!(small.crossbar_set(wl, 16) >= 1);
    }

    /// ADC: more bits always means more power and less rate.
    #[test]
    fn adc_power_rate_tradeoff(bits in 7u32..14) {
        let hw = HardwareParams::date24();
        let a = AdcConfig::new(bits, &hw);
        let b = AdcConfig::new(bits + 1, &hw);
        prop_assert!(b.power(&hw).value() > a.power(&hw).value());
        prop_assert!(b.sample_rate(&hw).value() < a.sample_rate(&hw).value());
    }

    /// The lossless-resolution rule is monotone in every argument.
    #[test]
    fn lossless_rule_monotone(
        rows in 1usize..512,
        cell in prop::sample::select(vec![1u32, 2, 4]),
        dac in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        let hw = HardwareParams::date24();
        let here = AdcConfig::minimum_lossless(rows, cell, dac, &hw).bits();
        let more_rows = AdcConfig::minimum_lossless(rows * 2, cell, dac, &hw).bits();
        prop_assert!(more_rows >= here);
        let more_cell = AdcConfig::minimum_lossless(rows, 4, dac, &hw).bits();
        prop_assert!(more_cell >= AdcConfig::minimum_lossless(rows, 1, dac, &hw).bits());
        prop_assert!((hw.adc_min_bits..=hw.adc_max_bits).contains(&here));
    }

    /// NoC: hop distances are a metric (symmetric, triangle inequality) and
    /// transfer latency is monotone in payload.
    #[test]
    fn noc_metric_properties(
        n in 1usize..64,
        a in 0usize..64,
        b in 0usize..64,
        c in 0usize..64,
        bytes in 1usize..100_000,
    ) {
        let hw = HardwareParams::date24();
        let noc = NocConfig::for_macros(n, &hw);
        let cells = noc.mesh_dim() * noc.mesh_dim();
        let (a, b, c) = (a % cells, b % cells, c % cells);
        prop_assert_eq!(noc.hops_between(a, b), noc.hops_between(b, a));
        prop_assert!(
            noc.hops_between(a, c) <= noc.hops_between(a, b) + noc.hops_between(b, c)
        );
        let t1 = noc.transfer_latency(bytes, 1).value();
        let t2 = noc.transfer_latency(bytes * 2, 1).value();
        prop_assert!(t2 >= t1);
    }

    /// Scratchpad: burst latency is monotone and beat-granular.
    #[test]
    fn scratchpad_latency_monotone(bytes in 0usize..10_000) {
        let hw = HardwareParams::date24();
        let spm = ScratchpadSpec::from_params(&hw);
        let t1 = spm.read_latency(bytes).value();
        let t2 = spm.read_latency(bytes + spm.bus_bytes()).value();
        prop_assert!(t2 > t1);
    }

    /// Component-count power is additive.
    #[test]
    fn component_power_additive(
        adc in 0usize..100,
        sa in 0usize..100,
        pool in 0usize..100,
    ) {
        let hw = HardwareParams::date24();
        let cfg = AdcConfig::new(8, &hw);
        let a = ComponentCounts { adc, shift_add: 0, pool: 0, activation: 0, eltwise: 0 };
        let b = ComponentCounts { adc: 0, shift_add: sa, pool, activation: 0, eltwise: 0 };
        let both = ComponentCounts { adc, shift_add: sa, pool, activation: 0, eltwise: 0 };
        let sum = a.power(cfg, &hw).value() + b.power(cfg, &hw).value();
        prop_assert!((both.power(cfg, &hw).value() - sum).abs() < 1e-12);
    }

    /// DAC bit-iterations: exact ceiling semantics.
    #[test]
    fn dac_iterations_ceiling(bits in prop::sample::select(vec![1u32, 2, 4]), act in 1u32..33) {
        let dac = DacConfig::new(bits).expect("legal");
        let iters = dac.bit_iterations(act);
        prop_assert!(iters as u32 * bits >= act);
        prop_assert!((iters as u32 - 1) * bits < act);
    }
}
