//! Property tests for the hardware power/latency models: monotonicity and
//! scaling laws that every Table III instantiation must obey.
//!
//! Cases are drawn from a seeded RNG (no external property-test framework
//! is available offline), so every run exercises the same deterministic
//! sample of the input space; failures reproduce exactly.

use pimsyn_arch::{
    AdcConfig, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams, NocConfig,
    ScratchpadSpec, Watts,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 128;

fn arb_xb(rng: &mut StdRng) -> CrossbarConfig {
    let size = [128usize, 256, 512][rng.gen_range(0usize..3)];
    let cell = [1u32, 2, 4][rng.gen_range(0usize..3)];
    CrossbarConfig::new(size, cell).expect("legal")
}

/// Crossbar power grows with size and cell resolution.
#[test]
fn crossbar_power_monotone() {
    let hw = HardwareParams::date24();
    let mut rng = StdRng::seed_from_u64(0xA5C4_0001);
    for _ in 0..CASES {
        let a = arb_xb(&mut rng);
        let b = arb_xb(&mut rng);
        if a.size() <= b.size() && a.cell_bits() <= b.cell_bits() {
            assert!(a.power(&hw).value() <= b.power(&hw).value() + 1e-15);
        }
    }
}

/// Eq. (3): the crossbar budget is monotone in both power and ratio, and
/// exactly inversely proportional to per-crossbar power.
#[test]
fn budget_monotonicity() {
    let hw = HardwareParams::date24();
    let mut rng = StdRng::seed_from_u64(0xA5C4_0002);
    for _ in 0..CASES {
        let xb = arb_xb(&mut rng);
        let power = rng.gen_range(1.0f64..100.0);
        let ratio = rng.gen_range(0.1f64..0.4);
        let base = xb.budget(Watts(power), ratio, &hw);
        assert!(xb.budget(Watts(power * 2.0), ratio, &hw) >= base * 2 - 1);
        assert!(xb.budget(Watts(power), ratio * 0.5, &hw) <= base / 2 + 1);
    }
}

/// Eq. (1): crossbar sets shrink (weakly) as crossbars grow and cells
/// store more bits.
#[test]
fn crossbar_set_monotone_in_capacity() {
    let mut rng = StdRng::seed_from_u64(0xA5C4_0003);
    for _ in 0..CASES {
        let rows = rng.gen_range(1usize..30_000);
        let cols = rng.gen_range(1usize..4_096);
        let model = {
            // Build a synthetic weight layer via a linear layer of the right
            // geometry (rows = in features, cols = out features).
            let mut b =
                pimsyn_model::ModelBuilder::new("t", pimsyn_model::TensorShape::new(rows, 1, 1));
            let id = b.layer("id", pimsyn_model::LayerKind::Relu, vec![]);
            let f = b.flatten("f", id);
            b.linear("fc", f, cols);
            b.build().expect("valid")
        };
        let wl = model.weight_layer(0);
        let small = CrossbarConfig::new(128, 1).expect("legal");
        let large = CrossbarConfig::new(512, 4).expect("legal");
        assert!(large.crossbar_set(wl, 16) <= small.crossbar_set(wl, 16));
        // A set always holds at least one crossbar.
        assert!(small.crossbar_set(wl, 16) >= 1);
    }
}

/// ADC: more bits always means more power and less rate.
#[test]
fn adc_power_rate_tradeoff() {
    let hw = HardwareParams::date24();
    for bits in 7u32..14 {
        let a = AdcConfig::new(bits, &hw);
        let b = AdcConfig::new(bits + 1, &hw);
        assert!(b.power(&hw).value() > a.power(&hw).value());
        assert!(b.sample_rate(&hw).value() < a.sample_rate(&hw).value());
    }
}

/// The lossless-resolution rule is monotone in every argument.
#[test]
fn lossless_rule_monotone() {
    let hw = HardwareParams::date24();
    let mut rng = StdRng::seed_from_u64(0xA5C4_0004);
    for _ in 0..CASES {
        let rows = rng.gen_range(1usize..512);
        let cell = [1u32, 2, 4][rng.gen_range(0usize..3)];
        let dac = [1u32, 2, 4][rng.gen_range(0usize..3)];
        let here = AdcConfig::minimum_lossless(rows, cell, dac, &hw).bits();
        let more_rows = AdcConfig::minimum_lossless(rows * 2, cell, dac, &hw).bits();
        assert!(more_rows >= here);
        let more_cell = AdcConfig::minimum_lossless(rows, 4, dac, &hw).bits();
        assert!(more_cell >= AdcConfig::minimum_lossless(rows, 1, dac, &hw).bits());
        assert!((hw.adc_min_bits..=hw.adc_max_bits).contains(&here));
    }
}

/// NoC: hop distances are a metric (symmetric, triangle inequality) and
/// transfer latency is monotone in payload.
#[test]
fn noc_metric_properties() {
    let hw = HardwareParams::date24();
    let mut rng = StdRng::seed_from_u64(0xA5C4_0005);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..64);
        let noc = NocConfig::for_macros(n, &hw);
        let cells = noc.mesh_dim() * noc.mesh_dim();
        let a = rng.gen_range(0usize..64) % cells;
        let b = rng.gen_range(0usize..64) % cells;
        let c = rng.gen_range(0usize..64) % cells;
        let bytes = rng.gen_range(1usize..100_000);
        assert_eq!(noc.hops_between(a, b), noc.hops_between(b, a));
        assert!(noc.hops_between(a, c) <= noc.hops_between(a, b) + noc.hops_between(b, c));
        let t1 = noc.transfer_latency(bytes, 1).value();
        let t2 = noc.transfer_latency(bytes * 2, 1).value();
        assert!(t2 >= t1);
    }
}

/// Scratchpad: burst latency is monotone and beat-granular.
#[test]
fn scratchpad_latency_monotone() {
    let hw = HardwareParams::date24();
    let spm = ScratchpadSpec::from_params(&hw);
    let mut rng = StdRng::seed_from_u64(0xA5C4_0006);
    for _ in 0..CASES {
        let bytes = rng.gen_range(0usize..10_000);
        let t1 = spm.read_latency(bytes).value();
        let t2 = spm.read_latency(bytes + spm.bus_bytes()).value();
        assert!(t2 > t1);
    }
}

/// Component-count power is additive.
#[test]
fn component_power_additive() {
    let hw = HardwareParams::date24();
    let cfg = AdcConfig::new(8, &hw);
    let mut rng = StdRng::seed_from_u64(0xA5C4_0007);
    for _ in 0..CASES {
        let adc = rng.gen_range(0usize..100);
        let sa = rng.gen_range(0usize..100);
        let pool = rng.gen_range(0usize..100);
        let a = ComponentCounts {
            adc,
            shift_add: 0,
            pool: 0,
            activation: 0,
            eltwise: 0,
        };
        let b = ComponentCounts {
            adc: 0,
            shift_add: sa,
            pool,
            activation: 0,
            eltwise: 0,
        };
        let both = ComponentCounts {
            adc,
            shift_add: sa,
            pool,
            activation: 0,
            eltwise: 0,
        };
        let sum = a.power(cfg, &hw).value() + b.power(cfg, &hw).value();
        assert!((both.power(cfg, &hw).value() - sum).abs() < 1e-12);
    }
}

/// DAC bit-iterations: exact ceiling semantics.
#[test]
fn dac_iterations_ceiling() {
    for bits in [1u32, 2, 4] {
        for act in 1u32..33 {
            let dac = DacConfig::new(bits).expect("legal");
            let iters = dac.bit_iterations(act);
            assert!(iters as u32 * bits >= act);
            assert!((iters as u32 - 1) * bits < act);
        }
    }
}
