use std::error::Error;
use std::fmt;

/// Errors from hardware configuration and architecture assembly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A design variable took a value outside its legal domain
    /// (Table I of the paper defines the domains).
    InvalidDesignVariable {
        /// Variable name, e.g. `XbSize`.
        variable: &'static str,
        /// Offending value rendered as text.
        value: String,
        /// Legal domain rendered as text.
        expected: &'static str,
    },
    /// The power budget cannot cover even the fixed infrastructure
    /// (scratchpads, NoC routers, DACs) of the requested configuration.
    PowerBudgetExceeded {
        /// Power demanded by fixed components, in watts.
        required: f64,
        /// Power available, in watts.
        available: f64,
    },
    /// A layer was allocated zero crossbars/macros where at least one is
    /// required.
    EmptyAllocation {
        /// Index of the offending layer.
        layer: usize,
        /// What was missing.
        what: &'static str,
    },
    /// Macro-partitioning violated rule (c) of Sec. IV-C: a macro must hold
    /// at least one whole crossbar of every layer mapped to it.
    TooManyMacros {
        /// Index of the offending layer.
        layer: usize,
        /// Macros requested.
        requested: usize,
        /// Upper bound from the rule.
        max: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidDesignVariable {
                variable,
                value,
                expected,
            } => {
                write!(f, "invalid {variable} = {value}, expected {expected}")
            }
            ArchError::PowerBudgetExceeded {
                required,
                available,
            } => write!(
                f,
                "fixed components need {required:.3} W but only {available:.3} W is available"
            ),
            ArchError::EmptyAllocation { layer, what } => {
                write!(f, "layer {layer} was allocated zero {what}")
            }
            ArchError::TooManyMacros {
                layer,
                requested,
                max,
            } => write!(
                f,
                "layer {layer} partitioned into {requested} macros, rule (c) allows at most {max}"
            ),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }

    #[test]
    fn messages_mention_payload() {
        let e = ArchError::InvalidDesignVariable {
            variable: "XbSize",
            value: "100".into(),
            expected: "one of 128, 256, 512",
        };
        assert!(e.to_string().contains("XbSize"));
        assert!(e.to_string().contains("100"));
    }
}
