//! Hardware component library and architecture template for the PIMSYN
//! reproduction.
//!
//! This crate models the physical substrate of the paper's Fig. 2 — the
//! macro-PE-crossbar hierarchy with its peripheral components — and the PPA
//! arithmetic the synthesis stages rely on:
//!
//! - [`HardwareParams`]: the Table III device/circuit constants.
//! - [`CrossbarConfig`]: Eq. (1) crossbar-set sizing and Eq. (3) crossbar
//!   budgeting.
//! - [`DacConfig`] / [`AdcConfig`]: converter power/rate models and the
//!   minimum-lossless-ADC rule.
//! - [`ComponentKind`] / [`ComponentCounts`]: the allocatable peripheral
//!   families of Eq. (5).
//! - [`NocConfig`], [`ScratchpadSpec`]: communication and storage.
//! - [`Architecture`]: the fully-specified synthesized accelerator with
//!   power/area breakdowns, peak-efficiency math, and validation of the
//!   macro-partitioning rules.
//!
//! # Example
//!
//! ```
//! use pimsyn_arch::{CrossbarConfig, HardwareParams, Watts};
//!
//! # fn main() -> Result<(), pimsyn_arch::ArchError> {
//! let hw = HardwareParams::date24();
//! let xb = CrossbarConfig::new(128, 2)?;
//! // Eq. (3): a 50 W budget at RatioRram = 0.3 affords this many crossbars:
//! let n = xb.budget(Watts(50.0), 0.3, &hw);
//! assert!(n > 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod architecture;
mod components;
mod converters;
mod crossbar;
mod error;
pub mod hardware_config;
mod memory;
mod noc;
mod params;
mod units;

pub use architecture::{
    power_breakdown_from, Architecture, AreaBreakdown, LayerHardware, MacroGroup, MacroMode,
    PowerBreakdown,
};
pub use components::{ComponentCounts, ComponentKind};
pub use converters::{AdcConfig, DacConfig, RESDAC_CHOICES};
pub use crossbar::{CrossbarConfig, RESRRAM_CHOICES, XBSIZE_CHOICES};
pub use error::ArchError;
pub use memory::ScratchpadSpec;
pub use noc::NocConfig;
pub use params::HardwareParams;
pub use units::{Hertz, Joules, Seconds, SquareMm, Watts};
