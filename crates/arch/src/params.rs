//! Hardware setup parameters — the user-supplied device/circuit constants of
//! Table III, with defaults anchored to the paper (and to ISAAC/MNSIM where
//! Table III says "other parameters are provided by ISAAC and MNSIM").

use crate::units::{Hertz, Seconds, SquareMm, Watts};

/// Device / circuit constants consumed by every model in the stack.
///
/// Construct via [`HardwareParams::date24`] for the paper's setup (Table III)
/// and override individual fields for sensitivity studies; all fields are
/// public by design — this is a parameter record, not an abstraction.
///
/// # Example
///
/// ```
/// use pimsyn_arch::HardwareParams;
///
/// let hw = HardwareParams::date24();
/// assert_eq!(hw.scratchpad_bytes, 64 * 1024);
/// let mut custom = hw.clone();
/// custom.noc_router_power = pimsyn_arch::Watts::from_milli(21.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareParams {
    /// Control/ALU clock (ISAAC-class designs run ~1 GHz digital logic).
    pub clock: Hertz,
    /// Latency of one analog MVM: DAC drive + crossbar read + sample/hold.
    /// The three stages are analog and indivisible (Table II footnote).
    pub mvm_latency: Seconds,

    /// Read power of a 128x128, 1-bit-cell crossbar (lower anchor of the
    /// 0.3–4.8 mW range in Table III).
    pub crossbar_base_power: Watts,
    /// Crossbar power grows with `(size/128)^exponent`; 2.0 reproduces the
    /// 0.3 -> 4.8 mW span of Table III exactly (128 -> 512).
    pub crossbar_size_exponent: f64,
    /// Multiplicative power growth per extra cell bit (higher read currents
    /// and verify circuitry): `1 + factor * (bits - 1)`.
    pub crossbar_res_factor: f64,
    /// Area of a 128x128 crossbar array (ISAAC: 25 F^2/cell at 32 nm).
    pub crossbar_base_area: SquareMm,

    /// DAC power lookup for resolutions 1..=4 bits (Table III: 4–30 uW).
    pub dac_power_lut: [Watts; 4],
    /// DAC conversion rate (matches the digital clock; inputs are latched
    /// once per MVM).
    pub dac_rate: Hertz,
    /// DAC area, 1-bit (ISAAC).
    pub dac_area: SquareMm,

    /// ADC power at the 7-bit lower anchor (Table III: 2–54 mW for 7–14 b).
    pub adc_base_power: Watts,
    /// Multiplicative ADC power growth per extra bit; 1.6 reproduces the
    /// 2 -> 54 mW span of Table III (7 -> 14 bits).
    pub adc_power_growth: f64,
    /// ADC sample rate at 8 bits (ISAAC: 1.28 GS/s); halves per extra bit.
    pub adc_base_rate: Hertz,
    /// Minimum ADC resolution considered (Table III).
    pub adc_min_bits: u32,
    /// Maximum ADC resolution considered (Table III).
    pub adc_max_bits: u32,
    /// ADC area at 8 bits (ISAAC).
    pub adc_area: SquareMm,

    /// Per-macro scratchpad (eDRAM) capacity — Table III: 64 KB.
    pub scratchpad_bytes: usize,
    /// Scratchpad bus width — Table III: 256 bits.
    pub scratchpad_bus_bits: u32,
    /// Scratchpad power — Table III: 20.7 mW.
    pub scratchpad_power: Watts,
    /// Scratchpad access latency per beat.
    pub scratchpad_latency: Seconds,
    /// Scratchpad area (ISAAC eDRAM 64 KB).
    pub scratchpad_area: SquareMm,

    /// NoC flit size — Table III: 32 bits.
    pub noc_flit_bits: u32,
    /// NoC router radix — Table III: 8 ports.
    pub noc_ports: u32,
    /// NoC router + link power per macro — Table III: 42 mW.
    pub noc_router_power: Watts,
    /// Per-hop router traversal latency.
    pub noc_hop_latency: Seconds,
    /// Link bandwidth clock (flits per second per link).
    pub noc_link_rate: Hertz,
    /// Router area (ISAAC).
    pub noc_router_area: SquareMm,

    /// Power of one shift-and-add unit (ISAAC S+A).
    pub shift_add_power: Watts,
    /// Power of one pooling unit.
    pub pool_power: Watts,
    /// Power of one activation (ReLU/sigmoid) unit.
    pub activation_power: Watts,
    /// Power of one elementwise-add unit (residual merge).
    pub eltwise_power: Watts,
    /// Vector-ALU area per unit (ISAAC-class S+A).
    pub alu_area: SquareMm,

    /// Register files + control per macro.
    pub register_power: Watts,
    /// Register/control area per macro.
    pub register_area: SquareMm,
}

impl HardwareParams {
    /// The paper's evaluation setup (Table III, completed with ISAAC/MNSIM
    /// constants where Table III is silent).
    pub fn date24() -> Self {
        Self {
            clock: Hertz::from_giga(1.0),
            mvm_latency: Seconds::from_nanos(100.0),

            crossbar_base_power: Watts::from_milli(0.3),
            crossbar_size_exponent: 2.0,
            crossbar_res_factor: 0.1,
            crossbar_base_area: SquareMm(0.0002),

            dac_power_lut: [
                Watts::from_micro(4.0),
                Watts::from_micro(8.0),
                Watts::from_micro(15.5),
                Watts::from_micro(30.0),
            ],
            dac_rate: Hertz::from_giga(1.0),
            dac_area: SquareMm(0.00017),

            adc_base_power: Watts::from_milli(2.0),
            adc_power_growth: 1.6,
            adc_base_rate: Hertz::from_giga(1.28),
            adc_min_bits: 7,
            adc_max_bits: 14,
            adc_area: SquareMm(0.0012),

            scratchpad_bytes: 64 * 1024,
            scratchpad_bus_bits: 256,
            scratchpad_power: Watts::from_milli(20.7),
            scratchpad_latency: Seconds::from_nanos(2.0),
            scratchpad_area: SquareMm(0.083),

            noc_flit_bits: 32,
            noc_ports: 8,
            noc_router_power: Watts::from_milli(42.0),
            noc_hop_latency: Seconds::from_nanos(1.0),
            noc_link_rate: Hertz::from_giga(1.0),
            noc_router_area: SquareMm(0.0151),

            shift_add_power: Watts::from_milli(0.2),
            pool_power: Watts::from_milli(0.4),
            activation_power: Watts::from_milli(0.1),
            eltwise_power: Watts::from_milli(0.2),
            alu_area: SquareMm(0.00006),

            register_power: Watts::from_milli(1.0),
            register_area: SquareMm(0.005),
        }
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        Self::date24()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_anchor_values() {
        let hw = HardwareParams::date24();
        assert_eq!(hw.scratchpad_bytes, 65536);
        assert_eq!(hw.scratchpad_bus_bits, 256);
        assert!((hw.scratchpad_power.milli() - 20.7).abs() < 1e-9);
        assert!((hw.noc_router_power.milli() - 42.0).abs() < 1e-9);
        assert_eq!(hw.noc_flit_bits, 32);
        assert_eq!(hw.noc_ports, 8);
        assert_eq!((hw.adc_min_bits, hw.adc_max_bits), (7, 14));
    }

    #[test]
    fn default_is_date24() {
        assert_eq!(HardwareParams::default(), HardwareParams::date24());
    }
}
