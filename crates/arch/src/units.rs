//! Physical-quantity newtypes used throughout the hardware models.
//!
//! Power/latency/area algebra is easy to get wrong with bare `f64`s; these
//! wrappers (per C-NEWTYPE) make watts, seconds, hertz and square millimetres
//! distinct types while staying `Copy` and cheap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw numeric value in the base unit.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Maximum of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Minimum of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Rate in hertz (events per second).
    Hertz,
    "Hz"
);
unit!(
    /// Silicon area in square millimetres.
    SquareMm,
    "mm^2"
);

impl Watts {
    /// Constructs from milliwatts.
    pub fn from_milli(mw: f64) -> Self {
        Watts(mw * 1e-3)
    }

    /// Constructs from microwatts.
    pub fn from_micro(uw: f64) -> Self {
        Watts(uw * 1e-6)
    }

    /// Value in milliwatts.
    pub fn milli(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Constructs from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Value in nanoseconds.
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Hertz {
    /// Constructs from gigahertz.
    pub fn from_giga(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }
}

/// `power x time = energy`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `time x power = energy`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `energy / time = power`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `energy / power = time`.
impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_algebra() {
        let e = Watts(2.0) * Seconds(3.0);
        assert_eq!(e, Joules(6.0));
        assert_eq!(e / Seconds(3.0), Watts(2.0));
        assert_eq!(e / Watts(2.0), Seconds(3.0));
    }

    #[test]
    fn conversions() {
        assert!((Watts::from_milli(20.7).value() - 0.0207).abs() < 1e-12);
        assert!((Watts::from_micro(30.0).value() - 3e-5).abs() < 1e-15);
        assert!((Seconds::from_nanos(100.0).value() - 1e-7).abs() < 1e-18);
        assert_eq!(Hertz::from_giga(1.28).value(), 1.28e9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Watts(1.0) + Watts(2.0);
        assert_eq!(a, Watts(3.0));
        assert_eq!(a - Watts(1.0), Watts(2.0));
        assert_eq!(a * 2.0, Watts(6.0));
        assert_eq!(2.0 * a, Watts(6.0));
        assert_eq!(a / 3.0, Watts(1.0));
        assert_eq!(Watts(6.0) / Watts(3.0), 2.0);
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert_eq!(total, Watts(3.5));
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(Seconds(0.5).to_string(), "0.5000 s");
        assert!(Watts(1.0).to_string().ends_with('W'));
    }
}
