//! The synthesized accelerator description: the end product of PIMSYN's four
//! stages. An [`Architecture`] fixes every design variable of Table I — the
//! crossbar/DAC configuration, per-layer weight duplication (`WtDup`), macro
//! partitioning (`MacAlloc`, incl. inter-layer macro sharing) and component
//! allocation (`CompAlloc`) — and provides PPA accounting over the result.

use std::fmt;

use pimsyn_model::Model;

use crate::components::ComponentCounts;
use crate::converters::{AdcConfig, DacConfig};
use crate::crossbar::CrossbarConfig;
use crate::error::ArchError;
use crate::noc::NocConfig;
use crate::params::HardwareParams;
use crate::units::{SquareMm, Watts};

/// Whether all macros are stamped from one template or specialized per layer
/// (Sec. IV-C: "macros can be configured either identical or specialized").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MacroMode {
    /// One macro template shared by every layer: component counts are the
    /// per-macro maximum over layers (simpler physical design, more waste).
    Identical,
    /// Each layer's macros carry exactly the components that layer needs
    /// (the paper's default; Fig. 8 quantifies the benefit).
    #[default]
    Specialized,
}

impl fmt::Display for MacroMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroMode::Identical => write!(f, "identical"),
            MacroMode::Specialized => write!(f, "specialized"),
        }
    }
}

/// Hardware assigned to one weight layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerHardware {
    /// Weight-layer index (`i` in the paper).
    pub layer: usize,
    /// Layer name for reports.
    pub name: String,
    /// Weight duplication factor (`WtDup_i`).
    pub wt_dup: usize,
    /// Crossbars per weight copy (Eq. (1)).
    pub crossbar_set: usize,
    /// Macros assigned (`MacAlloc_i`).
    pub macros: usize,
    /// `Some(j)` when this layer shares layer `j`'s macros (rule (b),
    /// inter-layer ADC reuse). `j < layer` always holds.
    pub shares_macros_with: Option<usize>,
    /// Derived lossless ADC resolution for this layer.
    pub adc: AdcConfig,
    /// Peripheral unit counts allocated to this layer (totals across its
    /// macros).
    pub components: ComponentCounts,
}

impl LayerHardware {
    /// Total crossbars used by the layer: `WtDup_i x set_i`.
    pub fn crossbars(&self) -> usize {
        self.wt_dup * self.crossbar_set
    }
}

/// Power consumed by each resource class, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// ReRAM crossbar arrays.
    pub rram: Watts,
    /// DACs (one per active crossbar row).
    pub dac: Watts,
    /// ADC banks.
    pub adc: Watts,
    /// Vector ALUs (shift-add, pool, activation, eltwise).
    pub alu: Watts,
    /// Per-macro scratchpads.
    pub scratchpad: Watts,
    /// NoC routers.
    pub noc: Watts,
    /// Register files and control.
    pub register: Watts,
}

impl PowerBreakdown {
    /// Sum over all classes.
    pub fn total(&self) -> Watts {
        self.rram + self.dac + self.adc + self.alu + self.scratchpad + self.noc + self.register
    }

    /// Fraction of total power in peripheral (non-crossbar) components —
    /// ISAAC burns >80% here; PIMSYN's whole point is reducing it.
    pub fn peripheral_share(&self) -> f64 {
        let total = self.total();
        if total.value() == 0.0 {
            return 0.0;
        }
        (total - self.rram) / total
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "power breakdown (total {:.3} W):", self.total().value())?;
        for (label, w) in [
            ("rram", self.rram),
            ("dac", self.dac),
            ("adc", self.adc),
            ("alu", self.alu),
            ("scratchpad", self.scratchpad),
            ("noc", self.noc),
            ("register", self.register),
        ] {
            writeln!(f, "  {label:<11} {:>10.3} mW", w.milli())?;
        }
        Ok(())
    }
}

/// Area consumed by each resource class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// ReRAM crossbar arrays.
    pub rram: SquareMm,
    /// DACs.
    pub dac: SquareMm,
    /// ADC banks.
    pub adc: SquareMm,
    /// Vector ALUs.
    pub alu: SquareMm,
    /// Scratchpads.
    pub scratchpad: SquareMm,
    /// NoC routers.
    pub noc: SquareMm,
    /// Registers/control.
    pub register: SquareMm,
}

impl AreaBreakdown {
    /// Sum over all classes.
    pub fn total(&self) -> SquareMm {
        SquareMm(
            self.rram.0
                + self.dac.0
                + self.adc.0
                + self.alu.0
                + self.scratchpad.0
                + self.noc.0
                + self.register.0,
        )
    }
}

/// A macro-sharing group: layers co-resident on one set of physical macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroGroup {
    /// Index of the owning (earliest) layer.
    pub root: usize,
    /// All member layers, root first.
    pub members: Vec<usize>,
    /// Physical macros in the group.
    pub macros: usize,
}

impl MacroGroup {
    /// Builds the macro-sharing groups from per-layer `(layer, macros,
    /// shares_macros_with)` assignments, in first-seen-root order. This is
    /// the single implementation behind [`Architecture::macro_groups`];
    /// candidate evaluators reuse it to derive groups straight from a gene
    /// decoding without materializing an [`Architecture`].
    pub fn build_from(
        assignments: impl IntoIterator<Item = (usize, usize, Option<usize>)>,
    ) -> Vec<MacroGroup> {
        let mut groups: Vec<MacroGroup> = Vec::new();
        for (layer, macros, shares) in assignments {
            match shares {
                None => groups.push(MacroGroup {
                    root: layer,
                    members: vec![layer],
                    macros,
                }),
                Some(root) => {
                    if let Some(g) = groups.iter_mut().find(|g| g.root == root) {
                        g.members.push(layer);
                        g.macros = g.macros.max(macros);
                    } else {
                        // Root not seen (defensive): treat as its own group.
                        groups.push(MacroGroup {
                            root: layer,
                            members: vec![layer],
                            macros,
                        });
                    }
                }
            }
        }
        groups
    }
}

/// Power accounting from explicit parts instead of a full [`Architecture`]:
/// `groups` are the candidate's macro-sharing groups (see
/// [`MacroGroup::build_from`]), `macro_count` the physical macro total, and
/// `layer_parts(m)` returns member `m`'s `(component counts, ADC bits)`.
/// This is the single implementation behind
/// [`Architecture::power_breakdown`]; both paths produce bit-identical
/// floats by construction.
#[allow(clippy::too_many_arguments)]
pub fn power_breakdown_from(
    hw: &HardwareParams,
    crossbar: CrossbarConfig,
    dac: DacConfig,
    crossbar_count: usize,
    groups: &[MacroGroup],
    macro_count: usize,
    layer_parts: impl Fn(usize) -> (ComponentCounts, u32),
) -> PowerBreakdown {
    let mut out = PowerBreakdown::default();

    let xb_power = crossbar.power(hw);
    let n_xb = crossbar_count;
    out.rram = xb_power * n_xb as f64;
    out.dac = dac.power(hw) * (n_xb * crossbar.size()) as f64;

    for group in groups {
        let mut counts = ComponentCounts::default();
        let mut adc_bits = 0u32;
        for &m in &group.members {
            let (member_counts, member_adc_bits) = layer_parts(m);
            for kind in crate::components::ComponentKind::ALL {
                let c = counts.count_mut(kind);
                *c = (*c).max(member_counts.count(kind));
            }
            adc_bits = adc_bits.max(member_adc_bits);
        }
        let adc = AdcConfig::new(adc_bits.max(hw.adc_min_bits), hw);
        out.adc += adc.power(hw) * counts.adc as f64;
        let alu_units = counts.total_units() - counts.adc;
        // Weighted by per-kind powers rather than a flat per-unit cost.
        out.alu += hw.shift_add_power * counts.shift_add as f64
            + hw.pool_power * counts.pool as f64
            + hw.activation_power * counts.activation as f64
            + hw.eltwise_power * counts.eltwise as f64;
        debug_assert!(
            alu_units == counts.shift_add + counts.pool + counts.activation + counts.eltwise
        );
    }

    let n_macro = macro_count as f64;
    out.scratchpad = hw.scratchpad_power * n_macro;
    out.noc = hw.noc_router_power * n_macro;
    out.register = hw.register_power * n_macro;
    out
}

/// A fully-specified PIM accelerator: the output of synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    /// Name of the CNN this accelerator was synthesized for.
    pub model_name: String,
    /// Crossbar configuration (`XbSize`, `ResRram`).
    pub crossbar: CrossbarConfig,
    /// DAC configuration (`ResDAC`).
    pub dac: DacConfig,
    /// Fraction of the power budget reserved for ReRAM (`RatioRram`).
    pub ratio_rram: f64,
    /// The user's total power constraint.
    pub power_budget: Watts,
    /// Identical vs specialized macros.
    pub macro_mode: MacroMode,
    /// Per-layer hardware assignment.
    pub layers: Vec<LayerHardware>,
    /// Device/circuit constants the accelerator was sized with.
    pub hw: HardwareParams,
}

impl Architecture {
    /// Macro-sharing groups: each group's macros are counted once even
    /// though several layers may use them at staggered times.
    pub fn macro_groups(&self) -> Vec<MacroGroup> {
        MacroGroup::build_from(
            self.layers
                .iter()
                .map(|lh| (lh.layer, lh.macros, lh.shares_macros_with)),
        )
    }

    /// Physical macro count (shared macros counted once).
    pub fn macro_count(&self) -> usize {
        self.macro_groups().iter().map(|g| g.macros).sum()
    }

    /// Total crossbars across all layers.
    pub fn crossbar_count(&self) -> usize {
        self.layers.iter().map(LayerHardware::crossbars).sum()
    }

    /// The NoC sized for this accelerator's macro count.
    pub fn noc(&self) -> NocConfig {
        NocConfig::for_macros(self.macro_count(), &self.hw)
    }

    /// Effective ADC units serving layer `i`: its own allocation, or the
    /// group maximum when macros are shared (inter-layer ADC reuse makes the
    /// partner's converters available at staggered times — Sec. IV-C).
    pub fn effective_adcs(&self, layer: usize) -> usize {
        let own = self.layers[layer].components.adc;
        let root = self.layers[layer].shares_macros_with.unwrap_or(layer);
        self.layers
            .iter()
            .filter(|l| l.layer == root || l.shares_macros_with == Some(root))
            .map(|l| l.components.adc)
            .max()
            .unwrap_or(own)
    }

    /// Power accounting over every resource class.
    ///
    /// Within a macro-sharing group, peripheral units are physically shared:
    /// the group contributes the per-kind *maximum* over members rather than
    /// the sum (this is exactly the ADC saving of Fig. 5b).
    pub fn power_breakdown(&self) -> PowerBreakdown {
        let groups = self.macro_groups();
        power_breakdown_from(
            &self.hw,
            self.crossbar,
            self.dac,
            self.crossbar_count(),
            &groups,
            groups.iter().map(|g| g.macros).sum(),
            |m| (self.layers[m].components, self.layers[m].adc.bits()),
        )
    }

    /// Area accounting over every resource class.
    pub fn area_breakdown(&self) -> AreaBreakdown {
        let hw = &self.hw;
        let n_xb = self.crossbar_count() as f64;
        let n_macro = self.macro_count() as f64;
        let mut adc_area = 0.0;
        let mut alu_area = 0.0;
        for group in self.macro_groups() {
            let mut counts = ComponentCounts::default();
            let mut adc_bits = 0u32;
            for &m in &group.members {
                let lh = &self.layers[m];
                for kind in crate::components::ComponentKind::ALL {
                    let c = counts.count_mut(kind);
                    *c = (*c).max(lh.components.count(kind));
                }
                adc_bits = adc_bits.max(lh.adc.bits());
            }
            let adc = AdcConfig::new(adc_bits.max(hw.adc_min_bits), hw);
            adc_area += adc.area(hw).0 * counts.adc as f64;
            alu_area += hw.alu_area.0 * (counts.total_units() - counts.adc) as f64;
        }
        AreaBreakdown {
            rram: SquareMm(self.crossbar.area(hw).0 * n_xb),
            dac: SquareMm(self.dac.area(hw).0 * n_xb * self.crossbar.size() as f64),
            adc: SquareMm(adc_area),
            alu: SquareMm(alu_area),
            scratchpad: SquareMm(hw.scratchpad_area.0 * n_macro),
            noc: SquareMm(hw.noc_router_area.0 * n_macro),
            register: SquareMm(hw.register_area.0 * n_macro),
        }
    }

    /// Peak throughput in effective `weight_bits`-precision operations per
    /// second (multiply + add = 2 ops), assuming every crossbar fires every
    /// MVM cycle: each analog MVM performs `2 * XbSize^2` bit-ops, and a
    /// full-precision result needs `bit_iters x weight_slices` of them.
    pub fn peak_ops(&self, activation_bits: u32, weight_bits: u32) -> f64 {
        let per_mvm = 2.0 * (self.crossbar.size() as f64).powi(2);
        let mvm_rate = 1.0 / self.hw.mvm_latency.value();
        let derate = (self.dac.bit_iterations(activation_bits)
            * self.crossbar.weight_slices(weight_bits)) as f64;
        self.crossbar_count() as f64 * per_mvm * mvm_rate / derate
    }

    /// Peak power efficiency in TOPS/W at the given precision (Table IV's
    /// metric).
    pub fn peak_power_efficiency(&self, activation_bits: u32, weight_bits: u32) -> f64 {
        let power = self.power_breakdown().total();
        if power.value() <= 0.0 {
            return 0.0;
        }
        self.peak_ops(activation_bits, weight_bits) / 1e12 / power.value()
    }

    /// Structural validation against the source model:
    ///
    /// - every layer has ≥1 crossbar copy and ≥1 macro
    ///   ([`ArchError::EmptyAllocation`]),
    /// - rule (c) of Sec. IV-C: at most `WtDup_i x ceil(WK²CI/XbSize)` macros
    ///   ([`ArchError::TooManyMacros`]),
    /// - sharing partners exist and point backwards,
    /// - the realized power stays within the budget (with 5% slack for
    ///   integer rounding) ([`ArchError::PowerBudgetExceeded`]).
    ///
    /// # Errors
    ///
    /// The first violated rule, as listed above.
    pub fn validate(&self, model: &Model) -> Result<(), ArchError> {
        for lh in &self.layers {
            if lh.wt_dup == 0 || lh.crossbar_set == 0 {
                return Err(ArchError::EmptyAllocation {
                    layer: lh.layer,
                    what: "crossbars",
                });
            }
            if lh.macros == 0 {
                return Err(ArchError::EmptyAllocation {
                    layer: lh.layer,
                    what: "macros",
                });
            }
            let wl = model.weight_layer(lh.layer);
            let row_groups = wl.filter_rows().div_ceil(self.crossbar.size());
            let max_macros = lh.wt_dup * row_groups;
            if lh.macros > max_macros {
                return Err(ArchError::TooManyMacros {
                    layer: lh.layer,
                    requested: lh.macros,
                    max: max_macros,
                });
            }
            if let Some(j) = lh.shares_macros_with {
                if j >= lh.layer {
                    return Err(ArchError::EmptyAllocation {
                        layer: lh.layer,
                        what: "valid sharing partner (must be an earlier layer)",
                    });
                }
            }
        }
        let realized = self.power_breakdown().total();
        let limit = self.power_budget * 1.05;
        if realized > limit {
            return Err(ArchError::PowerBudgetExceeded {
                required: realized.value(),
                available: self.power_budget.value(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "architecture for {}: {} macros, {} crossbars ({}x{} @{}b), dac {}b, {} macro mode",
            self.model_name,
            self.macro_count(),
            self.crossbar_count(),
            self.crossbar.size(),
            self.crossbar.size(),
            self.crossbar.cell_bits(),
            self.dac.bits(),
            self.macro_mode,
        )?;
        write!(f, "{}", self.power_breakdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    /// A hand-built two-layer architecture used across tests.
    fn toy_arch() -> (pimsyn_model::Model, Architecture) {
        let model = {
            let mut b =
                pimsyn_model::ModelBuilder::new("toy", pimsyn_model::TensorShape::new(3, 16, 16));
            let c1 = b.conv("c1", None, 32, 3, 1, 1);
            let r1 = b.relu("r1", c1);
            let c2 = b.conv("c2", Some(r1), 32, 3, 1, 1);
            b.relu("r2", c2);
            b.build().unwrap()
        };
        let crossbar = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let hwp = hw();
        let layers = (0..2)
            .map(|i| {
                let wl = model.weight_layer(i);
                LayerHardware {
                    layer: i,
                    name: wl.name.clone(),
                    wt_dup: 2,
                    crossbar_set: crossbar.crossbar_set(wl, 16),
                    macros: 1,
                    shares_macros_with: None,
                    adc: AdcConfig::minimum_lossless(wl.filter_rows().min(128), 2, 1, &hwp),
                    components: ComponentCounts {
                        adc: 4,
                        shift_add: 8,
                        pool: 2,
                        activation: 2,
                        eltwise: 0,
                    },
                }
            })
            .collect();
        let arch = Architecture {
            model_name: "toy".into(),
            crossbar,
            dac,
            ratio_rram: 0.3,
            power_budget: Watts(2.0),
            macro_mode: MacroMode::Specialized,
            layers,
            hw: hwp,
        };
        (model, arch)
    }

    #[test]
    fn macro_and_crossbar_counts() {
        let (_, arch) = toy_arch();
        assert_eq!(arch.macro_count(), 2);
        // Each layer: set = ceil(rows/128)*ceil(32/128)*8 slices; layer 1
        // rows=27 -> 8; layer 2 rows=288 -> 3*1*8=24. Dup 2 -> 16 + 48.
        assert_eq!(arch.crossbar_count(), 2 * 8 + 2 * 24);
    }

    #[test]
    fn validation_passes_for_toy() {
        let (model, arch) = toy_arch();
        arch.validate(&model).unwrap();
    }

    #[test]
    fn validation_rejects_zero_macros() {
        let (model, mut arch) = toy_arch();
        arch.layers[0].macros = 0;
        assert!(matches!(
            arch.validate(&model),
            Err(ArchError::EmptyAllocation { layer: 0, .. })
        ));
    }

    #[test]
    fn validation_enforces_rule_c() {
        let (model, mut arch) = toy_arch();
        // Layer 0: rows 27 -> row_groups 1, dup 2 -> max 2 macros.
        arch.layers[0].macros = 3;
        assert!(matches!(
            arch.validate(&model),
            Err(ArchError::TooManyMacros { .. })
        ));
    }

    #[test]
    fn sharing_reduces_power() {
        let (_, mut arch) = toy_arch();
        let solo = arch.power_breakdown().total();
        arch.layers[1].shares_macros_with = Some(0);
        let shared = arch.power_breakdown().total();
        assert!(shared < solo, "shared {shared} !< solo {solo}");
        assert_eq!(arch.macro_count(), 1);
    }

    #[test]
    fn effective_adcs_sees_group_max() {
        let (_, mut arch) = toy_arch();
        arch.layers[1].shares_macros_with = Some(0);
        arch.layers[0].components.adc = 4;
        arch.layers[1].components.adc = 10;
        assert_eq!(arch.effective_adcs(0), 10);
        assert_eq!(arch.effective_adcs(1), 10);
    }

    #[test]
    fn peak_efficiency_positive_and_precision_sensitive() {
        let (_, arch) = toy_arch();
        let e16 = arch.peak_power_efficiency(16, 16);
        let e8 = arch.peak_power_efficiency(8, 8);
        assert!(e16 > 0.0);
        assert!(e8 > e16, "lower precision must raise effective TOPS/W");
    }

    #[test]
    fn power_budget_violation_detected() {
        let (model, mut arch) = toy_arch();
        arch.power_budget = Watts(0.01);
        assert!(matches!(
            arch.validate(&model),
            Err(ArchError::PowerBudgetExceeded { .. })
        ));
    }

    #[test]
    fn area_breakdown_is_positive() {
        let (_, arch) = toy_arch();
        let area = arch.area_breakdown();
        assert!(area.total().0 > 0.0);
        assert!(area.rram.0 > 0.0);
        assert!(area.scratchpad.0 > 0.0);
    }

    #[test]
    fn identity_of_display_report() {
        let (_, arch) = toy_arch();
        let text = arch.to_string();
        assert!(text.contains("toy"));
        assert!(text.contains("power breakdown"));
    }

    #[test]
    fn real_model_rule_c_bound() {
        // VGG16 conv1_1 (rows=27 < 128): a single duplication cannot span
        // two macros under rule (c).
        let model = zoo::vgg16();
        let wl = model.weight_layer(0);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let row_groups = wl.filter_rows().div_ceil(xb.size());
        assert_eq!(row_groups, 1);
    }
}
