//! Network-on-chip model: macros are tiled on a 2-D mesh; activations and
//! partial sums travel as 32-bit flits (Table III).

use crate::params::HardwareParams;
use crate::units::{Seconds, Watts};

/// Mesh NoC connecting `macro_count` macros.
///
/// # Example
///
/// ```
/// use pimsyn_arch::{HardwareParams, NocConfig};
///
/// let hw = HardwareParams::date24();
/// let noc = NocConfig::for_macros(16, &hw);
/// assert_eq!(noc.mesh_dim(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    macro_count: usize,
    mesh_dim: usize,
    flit_bits: u32,
    hop_latency: Seconds,
    link_bytes_per_sec: f64,
    router_power: Watts,
}

impl NocConfig {
    /// Sizes a square mesh for the given number of macros.
    pub fn for_macros(macro_count: usize, hw: &HardwareParams) -> Self {
        let mesh_dim = (macro_count.max(1) as f64).sqrt().ceil() as usize;
        Self {
            macro_count: macro_count.max(1),
            mesh_dim: mesh_dim.max(1),
            flit_bits: hw.noc_flit_bits,
            hop_latency: hw.noc_hop_latency,
            link_bytes_per_sec: hw.noc_link_rate.value() * hw.noc_flit_bits as f64 / 8.0,
            router_power: hw.noc_router_power,
        }
    }

    /// Side length of the (square) mesh.
    pub fn mesh_dim(&self) -> usize {
        self.mesh_dim
    }

    /// Number of macros attached to the mesh.
    pub fn macro_count(&self) -> usize {
        self.macro_count
    }

    /// Average hop count between two uniformly random mesh nodes
    /// (2/3 x dim for a square mesh with XY routing).
    pub fn average_hops(&self) -> f64 {
        (2.0 * self.mesh_dim as f64 / 3.0).max(1.0)
    }

    /// Manhattan hop distance between macro indices laid out row-major.
    pub fn hops_between(&self, src: usize, dst: usize) -> usize {
        let (sx, sy) = (src % self.mesh_dim, src / self.mesh_dim);
        let (dx, dy) = (dst % self.mesh_dim, dst / self.mesh_dim);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// Bytes per second a single mesh link sustains.
    pub fn link_bandwidth(&self) -> f64 {
        self.link_bytes_per_sec
    }

    /// Latency to move `bytes` over `hops` hops: head-flit routing latency
    /// plus serialization of the message on the narrowest link.
    pub fn transfer_latency(&self, bytes: usize, hops: usize) -> Seconds {
        let routing = self.hop_latency * hops.max(1) as f64;
        let serialization = Seconds(bytes as f64 / self.link_bytes_per_sec);
        routing + serialization
    }

    /// Aggregate router power for the whole mesh (one router per macro,
    /// Table III's 42 mW per-macro figure).
    pub fn total_power(&self) -> Watts {
        self.router_power * self.macro_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc(n: usize) -> NocConfig {
        NocConfig::for_macros(n, &HardwareParams::date24())
    }

    #[test]
    fn mesh_dimension_is_ceil_sqrt() {
        assert_eq!(noc(1).mesh_dim(), 1);
        assert_eq!(noc(16).mesh_dim(), 4);
        assert_eq!(noc(17).mesh_dim(), 5);
    }

    #[test]
    fn hops_are_manhattan() {
        let n = noc(16); // 4x4 row-major
        assert_eq!(n.hops_between(0, 0), 0);
        assert_eq!(n.hops_between(0, 3), 3);
        assert_eq!(n.hops_between(0, 15), 6);
        assert_eq!(n.hops_between(5, 6), 1);
    }

    #[test]
    fn transfer_latency_includes_serialization() {
        let n = noc(4);
        // 32-bit flits at 1 GHz = 4 GB/s per link; 4000 bytes = 1 us.
        let t = n.transfer_latency(4000, 2);
        assert!((t.value() - (2e-9 + 1e-6)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn power_scales_with_macros() {
        assert!((noc(10).total_power().milli() - 420.0).abs() < 1e-9);
    }

    #[test]
    fn zero_macros_is_clamped() {
        assert_eq!(noc(0).macro_count(), 1);
    }
}
