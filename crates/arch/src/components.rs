//! Peripheral functional components — the `c ∈ components` of the paper's
//! Eq. (5): the ADC bank and the vector ALU families (shift-and-add, pooling,
//! activation, elementwise add). These consume the `(1 − RatioRram)` share of
//! the power budget and are the subject of the components-allocation stage.

use std::fmt;

use crate::converters::AdcConfig;
use crate::params::HardwareParams;
use crate::units::{Hertz, Watts};

/// The peripheral component families allocatable per layer
/// (`CompAlloc_i^c` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Analog-to-digital converter (dominant power consumer).
    Adc,
    /// Shift-and-add merge units combining bit/slice partial sums.
    ShiftAdd,
    /// Pooling units (max/average windows).
    Pool,
    /// Activation units (ReLU/PReLU class).
    Activation,
    /// Elementwise adders for residual merges.
    Eltwise,
}

impl ComponentKind {
    /// All allocatable kinds, in report order.
    pub const ALL: [ComponentKind; 5] = [
        ComponentKind::Adc,
        ComponentKind::ShiftAdd,
        ComponentKind::Pool,
        ComponentKind::Activation,
        ComponentKind::Eltwise,
    ];

    /// Power of a single unit of this kind. The ADC's power depends on its
    /// (layer-derived) resolution; digital ALU powers come from Table III /
    /// ISAAC constants.
    pub fn unit_power(&self, adc: AdcConfig, hw: &HardwareParams) -> Watts {
        match self {
            ComponentKind::Adc => adc.power(hw),
            ComponentKind::ShiftAdd => hw.shift_add_power,
            ComponentKind::Pool => hw.pool_power,
            ComponentKind::Activation => hw.activation_power,
            ComponentKind::Eltwise => hw.eltwise_power,
        }
    }

    /// Operation rate of a single unit (`Freq_c` in Eq. (5)): samples/s for
    /// the ADC, one vector element per digital clock for ALUs.
    pub fn unit_rate(&self, adc: AdcConfig, hw: &HardwareParams) -> Hertz {
        match self {
            ComponentKind::Adc => adc.sample_rate(hw),
            _ => hw.clock,
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Adc => "adc",
            ComponentKind::ShiftAdd => "shift-add",
            ComponentKind::Pool => "pool",
            ComponentKind::Activation => "activation",
            ComponentKind::Eltwise => "eltwise",
        };
        write!(f, "{s}")
    }
}

/// Unit counts per component kind for one layer — the solution of the
/// components-allocation stage (`CompAlloc_i` vector entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentCounts {
    /// ADC units.
    pub adc: usize,
    /// Shift-and-add units.
    pub shift_add: usize,
    /// Pooling units.
    pub pool: usize,
    /// Activation units.
    pub activation: usize,
    /// Elementwise-add units.
    pub eltwise: usize,
}

impl ComponentCounts {
    /// Count for a given kind.
    pub fn count(&self, kind: ComponentKind) -> usize {
        match kind {
            ComponentKind::Adc => self.adc,
            ComponentKind::ShiftAdd => self.shift_add,
            ComponentKind::Pool => self.pool,
            ComponentKind::Activation => self.activation,
            ComponentKind::Eltwise => self.eltwise,
        }
    }

    /// Mutable count for a given kind.
    pub fn count_mut(&mut self, kind: ComponentKind) -> &mut usize {
        match kind {
            ComponentKind::Adc => &mut self.adc,
            ComponentKind::ShiftAdd => &mut self.shift_add,
            ComponentKind::Pool => &mut self.pool,
            ComponentKind::Activation => &mut self.activation,
            ComponentKind::Eltwise => &mut self.eltwise,
        }
    }

    /// Total power of these units given the layer's ADC resolution.
    pub fn power(&self, adc: AdcConfig, hw: &HardwareParams) -> Watts {
        ComponentKind::ALL
            .iter()
            .map(|&k| k.unit_power(adc, hw) * self.count(k) as f64)
            .sum()
    }

    /// Sum of unit counts across kinds.
    pub fn total_units(&self) -> usize {
        ComponentKind::ALL.iter().map(|&k| self.count(k)).sum()
    }
}

impl fmt::Display for ComponentCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adc:{} s&a:{} pool:{} act:{} elt:{}",
            self.adc, self.shift_add, self.pool, self.activation, self.eltwise
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    fn adc8() -> AdcConfig {
        AdcConfig::new(8, &hw())
    }

    #[test]
    fn adc_dominates_unit_power() {
        let hw = hw();
        let adc_p = ComponentKind::Adc.unit_power(adc8(), &hw);
        for kind in [
            ComponentKind::ShiftAdd,
            ComponentKind::Pool,
            ComponentKind::Activation,
        ] {
            assert!(adc_p > kind.unit_power(adc8(), &hw));
        }
    }

    #[test]
    fn counts_round_trip_through_accessors() {
        let mut c = ComponentCounts::default();
        for (i, kind) in ComponentKind::ALL.iter().enumerate() {
            *c.count_mut(*kind) = i + 1;
        }
        for (i, kind) in ComponentKind::ALL.iter().enumerate() {
            assert_eq!(c.count(*kind), i + 1);
        }
        assert_eq!(c.total_units(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn power_sums_over_kinds() {
        let hw = hw();
        let c = ComponentCounts {
            adc: 2,
            shift_add: 10,
            ..Default::default()
        };
        let expected = adc8().power(&hw) * 2.0 + hw.shift_add_power * 10.0;
        assert!((c.power(adc8(), &hw).value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn alu_rate_is_clock() {
        let hw = hw();
        assert_eq!(ComponentKind::Pool.unit_rate(adc8(), &hw), hw.clock);
        assert_eq!(ComponentKind::Adc.unit_rate(adc8(), &hw).value(), 1.28e9);
    }
}
