//! Hardware setup-parameter files.
//!
//! PIMSYN's third input (Fig. 3) is a set of "hardware setup parameters
//! (e.g., ReRAM's, ADC's and DAC's latency and power)". This module reads
//! and writes [`HardwareParams`] as a flat JSON object so device assumptions
//! can be swapped without recompiling. Missing keys keep their Table III
//! defaults; unknown keys are rejected (they are almost always typos).
//!
//! # Format
//!
//! ```json
//! {
//!   "clock_ghz": 1.0,
//!   "mvm_latency_ns": 100.0,
//!   "crossbar_base_power_mw": 0.3,
//!   "adc_base_power_mw": 2.0,
//!   "scratchpad_kb": 64,
//!   "noc_router_power_mw": 42.0
//! }
//! ```
//!
//! # Example
//!
//! ```
//! use pimsyn_arch::hardware_config;
//!
//! # fn main() -> Result<(), pimsyn_arch::ArchError> {
//! let hw = hardware_config::from_json(r#"{"mvm_latency_ns": 50.0}"#)?;
//! assert!((hw.mvm_latency.nanos() - 50.0).abs() < 1e-9);
//! assert_eq!(hw.scratchpad_bytes, 64 * 1024); // untouched default
//! # Ok(())
//! # }
//! ```

use pimsyn_model::json::JsonValue;

use crate::error::ArchError;
use crate::params::HardwareParams;
use crate::units::{Hertz, Seconds, Watts};

fn bad(detail: String) -> ArchError {
    ArchError::InvalidDesignVariable {
        variable: "hardware config",
        value: detail,
        expected: "a flat JSON object of known keys",
    }
}

/// Parses a hardware-parameter file, starting from Table III defaults.
///
/// # Errors
///
/// [`ArchError::InvalidDesignVariable`] for malformed JSON, unknown keys,
/// or non-numeric values.
pub fn from_json(text: &str) -> Result<HardwareParams, ArchError> {
    let doc = JsonValue::parse(text).map_err(|e| bad(e.to_string()))?;
    let Some(pairs) = doc.as_object() else {
        return Err(bad("top level must be an object".to_string()));
    };
    let mut hw = HardwareParams::date24();
    for (key, value) in pairs {
        let num = value
            .as_f64()
            .ok_or_else(|| bad(format!("`{key}` must be a number")))?;
        if num < 0.0 {
            return Err(bad(format!("`{key}` must be non-negative")));
        }
        match key.as_str() {
            "clock_ghz" => hw.clock = Hertz::from_giga(num),
            "mvm_latency_ns" => hw.mvm_latency = Seconds::from_nanos(num),
            "crossbar_base_power_mw" => hw.crossbar_base_power = Watts::from_milli(num),
            "crossbar_size_exponent" => hw.crossbar_size_exponent = num,
            "crossbar_res_factor" => hw.crossbar_res_factor = num,
            "dac_rate_ghz" => hw.dac_rate = Hertz::from_giga(num),
            "adc_base_power_mw" => hw.adc_base_power = Watts::from_milli(num),
            "adc_power_growth" => hw.adc_power_growth = num,
            "adc_base_rate_gsps" => hw.adc_base_rate = Hertz::from_giga(num),
            "adc_min_bits" => hw.adc_min_bits = num as u32,
            "adc_max_bits" => hw.adc_max_bits = num as u32,
            "scratchpad_kb" => hw.scratchpad_bytes = (num as usize) * 1024,
            "scratchpad_bus_bits" => hw.scratchpad_bus_bits = num as u32,
            "scratchpad_power_mw" => hw.scratchpad_power = Watts::from_milli(num),
            "scratchpad_latency_ns" => hw.scratchpad_latency = Seconds::from_nanos(num),
            "noc_flit_bits" => hw.noc_flit_bits = num as u32,
            "noc_ports" => hw.noc_ports = num as u32,
            "noc_router_power_mw" => hw.noc_router_power = Watts::from_milli(num),
            "noc_hop_latency_ns" => hw.noc_hop_latency = Seconds::from_nanos(num),
            "noc_link_rate_ghz" => hw.noc_link_rate = Hertz::from_giga(num),
            "shift_add_power_mw" => hw.shift_add_power = Watts::from_milli(num),
            "pool_power_mw" => hw.pool_power = Watts::from_milli(num),
            "activation_power_mw" => hw.activation_power = Watts::from_milli(num),
            "eltwise_power_mw" => hw.eltwise_power = Watts::from_milli(num),
            "register_power_mw" => hw.register_power = Watts::from_milli(num),
            other => return Err(bad(format!("unknown key `{other}`"))),
        }
    }
    if hw.adc_min_bits == 0 || hw.adc_min_bits > hw.adc_max_bits {
        return Err(bad(format!(
            "adc bit range {}..{} is invalid",
            hw.adc_min_bits, hw.adc_max_bits
        )));
    }
    Ok(hw)
}

/// Serializes the tunable subset of [`HardwareParams`] back to the JSON
/// format accepted by [`from_json`] (round-trips all keys listed there).
pub fn to_json(hw: &HardwareParams) -> String {
    let pairs: Vec<(&str, f64)> = vec![
        ("clock_ghz", hw.clock.value() / 1e9),
        ("mvm_latency_ns", hw.mvm_latency.nanos()),
        ("crossbar_base_power_mw", hw.crossbar_base_power.milli()),
        ("crossbar_size_exponent", hw.crossbar_size_exponent),
        ("crossbar_res_factor", hw.crossbar_res_factor),
        ("dac_rate_ghz", hw.dac_rate.value() / 1e9),
        ("adc_base_power_mw", hw.adc_base_power.milli()),
        ("adc_power_growth", hw.adc_power_growth),
        ("adc_base_rate_gsps", hw.adc_base_rate.value() / 1e9),
        ("adc_min_bits", hw.adc_min_bits as f64),
        ("adc_max_bits", hw.adc_max_bits as f64),
        ("scratchpad_kb", (hw.scratchpad_bytes / 1024) as f64),
        ("scratchpad_bus_bits", hw.scratchpad_bus_bits as f64),
        ("scratchpad_power_mw", hw.scratchpad_power.milli()),
        ("scratchpad_latency_ns", hw.scratchpad_latency.nanos()),
        ("noc_flit_bits", hw.noc_flit_bits as f64),
        ("noc_ports", hw.noc_ports as f64),
        ("noc_router_power_mw", hw.noc_router_power.milli()),
        ("noc_hop_latency_ns", hw.noc_hop_latency.nanos()),
        ("noc_link_rate_ghz", hw.noc_link_rate.value() / 1e9),
        ("shift_add_power_mw", hw.shift_add_power.milli()),
        ("pool_power_mw", hw.pool_power.milli()),
        ("activation_power_mw", hw.activation_power.milli()),
        ("eltwise_power_mw", hw.eltwise_power.milli()),
        ("register_power_mw", hw.register_power.milli()),
    ];
    let obj = JsonValue::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), JsonValue::Number(v)))
            .collect(),
    );
    obj.to_string()
}

/// Serializes *every* field of [`HardwareParams`] with floats as
/// `f64::to_bits` hex strings: the exact transport used by the evaluation
/// worker protocol, where the reconstructed parameters must be bit-identical
/// to the originals (the human-editable [`to_json`] format converts units
/// and may lose an ulp).
pub fn to_json_exact(hw: &HardwareParams) -> String {
    let f = |v: f64| JsonValue::String(format!("{:016x}", v.to_bits()));
    let n = |v: f64| JsonValue::Number(v);
    let pairs: Vec<(&str, JsonValue)> = vec![
        ("clock", f(hw.clock.value())),
        ("mvm_latency", f(hw.mvm_latency.value())),
        ("crossbar_base_power", f(hw.crossbar_base_power.value())),
        ("crossbar_size_exponent", f(hw.crossbar_size_exponent)),
        ("crossbar_res_factor", f(hw.crossbar_res_factor)),
        ("crossbar_base_area", f(hw.crossbar_base_area.value())),
        (
            "dac_power_lut",
            JsonValue::Array(hw.dac_power_lut.iter().map(|w| f(w.value())).collect()),
        ),
        ("dac_rate", f(hw.dac_rate.value())),
        ("dac_area", f(hw.dac_area.value())),
        ("adc_base_power", f(hw.adc_base_power.value())),
        ("adc_power_growth", f(hw.adc_power_growth)),
        ("adc_base_rate", f(hw.adc_base_rate.value())),
        ("adc_min_bits", n(hw.adc_min_bits as f64)),
        ("adc_max_bits", n(hw.adc_max_bits as f64)),
        ("adc_area", f(hw.adc_area.value())),
        ("scratchpad_bytes", n(hw.scratchpad_bytes as f64)),
        ("scratchpad_bus_bits", n(hw.scratchpad_bus_bits as f64)),
        ("scratchpad_power", f(hw.scratchpad_power.value())),
        ("scratchpad_latency", f(hw.scratchpad_latency.value())),
        ("scratchpad_area", f(hw.scratchpad_area.value())),
        ("noc_flit_bits", n(hw.noc_flit_bits as f64)),
        ("noc_ports", n(hw.noc_ports as f64)),
        ("noc_router_power", f(hw.noc_router_power.value())),
        ("noc_hop_latency", f(hw.noc_hop_latency.value())),
        ("noc_link_rate", f(hw.noc_link_rate.value())),
        ("noc_router_area", f(hw.noc_router_area.value())),
        ("shift_add_power", f(hw.shift_add_power.value())),
        ("pool_power", f(hw.pool_power.value())),
        ("activation_power", f(hw.activation_power.value())),
        ("eltwise_power", f(hw.eltwise_power.value())),
        ("alu_area", f(hw.alu_area.value())),
        ("register_power", f(hw.register_power.value())),
        ("register_area", f(hw.register_area.value())),
    ];
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_string()
}

/// Parses the bit-exact format written by [`to_json_exact`]. Every key must
/// be present; the reconstructed parameters are bit-identical to the
/// serialized ones.
///
/// # Errors
///
/// [`ArchError::InvalidDesignVariable`] for malformed JSON or missing /
/// malformed keys.
pub fn from_json_exact(text: &str) -> Result<HardwareParams, ArchError> {
    use crate::units::SquareMm;
    let doc = JsonValue::parse(text).map_err(|e| bad(e.to_string()))?;
    let float = |key: &str| -> Result<f64, ArchError> {
        let s = doc
            .get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad(format!("missing float key `{key}`")))?;
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| bad(format!("`{key}` is not a hex float-bit pattern")))
    };
    let int = |key: &str| -> Result<u64, ArchError> {
        doc.get(key)
            .and_then(JsonValue::as_usize)
            .map(|v| v as u64)
            .ok_or_else(|| bad(format!("missing integer key `{key}`")))
    };
    let lut = doc
        .get("dac_power_lut")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("missing `dac_power_lut`".to_string()))?;
    if lut.len() != 4 {
        return Err(bad(format!(
            "`dac_power_lut` needs 4 entries, got {}",
            lut.len()
        )));
    }
    let mut dac_power_lut = [Watts(0.0); 4];
    for (i, v) in lut.iter().enumerate() {
        let s = v
            .as_str()
            .ok_or_else(|| bad("`dac_power_lut` entries must be hex strings".to_string()))?;
        dac_power_lut[i] = Watts(
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| bad("`dac_power_lut` entry is not a bit pattern".to_string()))?,
        );
    }
    Ok(HardwareParams {
        clock: Hertz(float("clock")?),
        mvm_latency: Seconds(float("mvm_latency")?),
        crossbar_base_power: Watts(float("crossbar_base_power")?),
        crossbar_size_exponent: float("crossbar_size_exponent")?,
        crossbar_res_factor: float("crossbar_res_factor")?,
        crossbar_base_area: SquareMm(float("crossbar_base_area")?),
        dac_power_lut,
        dac_rate: Hertz(float("dac_rate")?),
        dac_area: SquareMm(float("dac_area")?),
        adc_base_power: Watts(float("adc_base_power")?),
        adc_power_growth: float("adc_power_growth")?,
        adc_base_rate: Hertz(float("adc_base_rate")?),
        adc_min_bits: int("adc_min_bits")? as u32,
        adc_max_bits: int("adc_max_bits")? as u32,
        adc_area: SquareMm(float("adc_area")?),
        scratchpad_bytes: int("scratchpad_bytes")? as usize,
        scratchpad_bus_bits: int("scratchpad_bus_bits")? as u32,
        scratchpad_power: Watts(float("scratchpad_power")?),
        scratchpad_latency: Seconds(float("scratchpad_latency")?),
        scratchpad_area: SquareMm(float("scratchpad_area")?),
        noc_flit_bits: int("noc_flit_bits")? as u32,
        noc_ports: int("noc_ports")? as u32,
        noc_router_power: Watts(float("noc_router_power")?),
        noc_hop_latency: Seconds(float("noc_hop_latency")?),
        noc_link_rate: Hertz(float("noc_link_rate")?),
        noc_router_area: SquareMm(float("noc_router_area")?),
        shift_add_power: Watts(float("shift_add_power")?),
        pool_power: Watts(float("pool_power")?),
        activation_power: Watts(float("activation_power")?),
        eltwise_power: Watts(float("eltwise_power")?),
        alu_area: SquareMm(float("alu_area")?),
        register_power: Watts(float("register_power")?),
        register_area: SquareMm(float("register_area")?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_is_table3_defaults() {
        assert_eq!(from_json("{}").unwrap(), HardwareParams::date24());
    }

    #[test]
    fn overrides_apply_and_defaults_survive() {
        let hw = from_json(r#"{"adc_base_power_mw": 1.0, "noc_ports": 4}"#).unwrap();
        assert!((hw.adc_base_power.milli() - 1.0).abs() < 1e-12);
        assert_eq!(hw.noc_ports, 4);
        assert_eq!(hw.scratchpad_bytes, 64 * 1024);
    }

    #[test]
    fn unknown_key_rejected() {
        let err = from_json(r#"{"adc_base_powr_mw": 1.0}"#).unwrap_err();
        assert!(err.to_string().contains("adc_base_powr_mw"));
    }

    #[test]
    fn non_numeric_rejected() {
        assert!(from_json(r#"{"noc_ports": "eight"}"#).is_err());
        assert!(from_json(r#"{"noc_ports": -1}"#).is_err());
        assert!(from_json("[1,2]").is_err());
        assert!(from_json("{").is_err());
    }

    #[test]
    fn bad_adc_range_rejected() {
        assert!(from_json(r#"{"adc_min_bits": 12, "adc_max_bits": 8}"#).is_err());
    }

    #[test]
    fn exact_round_trip_is_bit_identical() {
        let mut hw = HardwareParams::date24();
        // "Awkward" floats (off-by-an-ulp bit patterns) that unit
        // conversions would perturb.
        hw.mvm_latency = Seconds(f64::from_bits(1e-7f64.to_bits() + 1));
        hw.adc_power_growth = f64::from_bits(1.6f64.to_bits() + 1);
        let back = from_json_exact(&to_json_exact(&hw)).unwrap();
        assert_eq!(back, hw);
        assert_eq!(
            back.mvm_latency.value().to_bits(),
            hw.mvm_latency.value().to_bits()
        );
    }

    #[test]
    fn exact_format_rejects_missing_keys() {
        assert!(from_json_exact("{}").is_err());
        assert!(from_json_exact("not json").is_err());
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut hw = HardwareParams::date24();
        hw.mvm_latency = Seconds::from_nanos(42.0);
        hw.noc_ports = 5;
        hw.adc_power_growth = 1.5;
        let back = from_json(&to_json(&hw)).unwrap();
        // Unit conversions may lose an ulp; compare with tolerance.
        assert!((back.mvm_latency.nanos() - 42.0).abs() < 1e-9);
        assert_eq!(back.noc_ports, 5);
        assert!((back.adc_power_growth - 1.5).abs() < 1e-12);
        assert_eq!(back.scratchpad_bytes, hw.scratchpad_bytes);
        assert!((back.clock.value() - hw.clock.value()).abs() < 1.0);
    }
}
