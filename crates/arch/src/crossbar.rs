//! ReRAM crossbar model: Eq. (1) crossbar-set sizing and Eq. (3) crossbar
//! budgeting, plus per-crossbar power/area.

use pimsyn_model::WeightLayer;

use crate::error::ArchError;
use crate::params::HardwareParams;
use crate::units::{SquareMm, Watts};

/// Legal crossbar sizes explored by the paper (Table I / Table III).
pub const XBSIZE_CHOICES: [usize; 3] = [128, 256, 512];

/// Legal ReRAM cell resolutions in bits (Table I / Table III).
pub const RESRRAM_CHOICES: [u32; 3] = [1, 2, 4];

/// A crossbar configuration: array size and cell resolution.
///
/// # Example
///
/// ```
/// use pimsyn_arch::CrossbarConfig;
///
/// # fn main() -> Result<(), pimsyn_arch::ArchError> {
/// let xb = CrossbarConfig::new(256, 2)?;
/// assert_eq!(xb.size(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrossbarConfig {
    size: usize,
    cell_bits: u32,
}

impl CrossbarConfig {
    /// Creates a configuration after validating both knobs against the
    /// paper's design space.
    ///
    /// # Errors
    ///
    /// [`ArchError::InvalidDesignVariable`] when `size` is not one of
    /// 128/256/512 or `cell_bits` not one of 1/2/4.
    pub fn new(size: usize, cell_bits: u32) -> Result<Self, ArchError> {
        if !XBSIZE_CHOICES.contains(&size) {
            return Err(ArchError::InvalidDesignVariable {
                variable: "XbSize",
                value: size.to_string(),
                expected: "one of 128, 256, 512",
            });
        }
        if !RESRRAM_CHOICES.contains(&cell_bits) {
            return Err(ArchError::InvalidDesignVariable {
                variable: "ResRram",
                value: cell_bits.to_string(),
                expected: "one of 1, 2, 4",
            });
        }
        Ok(Self { size, cell_bits })
    }

    /// Array extent (rows = columns = `XbSize`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Cell resolution in bits (`ResRram`).
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Number of weight-bit slices needed for `weight_bits`-wide weights:
    /// `ceil(PrecWt / ResRram)` — the third factor of Eq. (1).
    pub fn weight_slices(&self, weight_bits: u32) -> usize {
        weight_bits.div_ceil(self.cell_bits) as usize
    }

    /// Read power of one crossbar (Table III anchors: 0.3 mW @128 growing
    /// quadratically to 4.8 mW @512, with a mild cell-resolution uplift).
    pub fn power(&self, hw: &HardwareParams) -> Watts {
        let scale = (self.size as f64 / 128.0).powf(hw.crossbar_size_exponent);
        let res = 1.0 + hw.crossbar_res_factor * (self.cell_bits as f64 - 1.0);
        hw.crossbar_base_power * scale * res
    }

    /// Silicon area of one crossbar (cell count scaled from the 128x128
    /// anchor; peripheral drivers excluded — they are counted per macro).
    pub fn area(&self, hw: &HardwareParams) -> SquareMm {
        let scale = (self.size as f64 / 128.0).powi(2);
        SquareMm(hw.crossbar_base_area.0 * scale)
    }

    /// Eq. (1): the number of crossbars in one *crossbar set* — the minimum
    /// hardware to hold one full copy of `layer`'s weights:
    ///
    /// `set = ceil(WK*WK*CI / XbSize) * ceil(CO / XbSize) * ceil(PrecWt / ResRram)`.
    ///
    /// Grouped/depthwise layers map block-diagonally: each of the `groups`
    /// weight blocks spans `WK*WK*CI/groups` rows and `CO/groups` columns and
    /// is tiled independently (crossbar rows cannot be shared across groups —
    /// a column sums every programmed row), so the set multiplies per-group
    /// tiling by the group count. Identical to Eq. (1) when `groups == 1`.
    pub fn crossbar_set(&self, layer: &WeightLayer, weight_bits: u32) -> usize {
        let row_groups = layer.filter_rows().div_ceil(self.size);
        let col_groups = (layer.out_channels / layer.groups).div_ceil(self.size);
        layer.groups * row_groups * col_groups * self.weight_slices(weight_bits)
    }

    /// Eq. (3): the total crossbar budget a power envelope affords:
    ///
    /// `#crossbar = TotalPower * RatioRram / CrossbarPower(XbSize, ResRram)`.
    pub fn budget(&self, total_power: Watts, ratio_rram: f64, hw: &HardwareParams) -> usize {
        ((total_power * ratio_rram) / self.power(hw)).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    #[test]
    fn rejects_off_menu_values() {
        assert!(CrossbarConfig::new(100, 1).is_err());
        assert!(CrossbarConfig::new(128, 3).is_err());
        assert!(CrossbarConfig::new(512, 4).is_ok());
    }

    #[test]
    fn power_matches_table3_range() {
        let lo = CrossbarConfig::new(128, 1).unwrap().power(&hw());
        let hi = CrossbarConfig::new(512, 1).unwrap().power(&hw());
        assert!((lo.milli() - 0.3).abs() < 1e-9, "low anchor {lo}");
        assert!((hi.milli() - 4.8).abs() < 1e-9, "high anchor {hi}");
        // Resolution uplift is monotone.
        let hi4 = CrossbarConfig::new(512, 4).unwrap().power(&hw());
        assert!(hi4 > hi);
    }

    #[test]
    fn eq1_crossbar_set_for_vgg16_conv1() {
        // conv1_1: WK=3, CI=3, CO=64 -> rows=27, cols=64.
        let model = zoo::vgg16();
        let conv1 = model.weight_layer(0);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        // ceil(27/128)=1, ceil(64/128)=1, ceil(16/2)=8.
        assert_eq!(xb.crossbar_set(conv1, 16), 8);
    }

    #[test]
    fn eq1_crossbar_set_for_large_fc() {
        // VGG16 fc1: rows = 25088, cols = 4096 at XbSize=512, ResRram=4:
        // ceil(25088/512)=49, ceil(4096/512)=8, ceil(16/4)=4 -> 1568.
        let model = zoo::vgg16();
        let fc1 = model.weight_layers().find(|w| w.name == "fc1").unwrap();
        let xb = CrossbarConfig::new(512, 4).unwrap();
        assert_eq!(xb.crossbar_set(fc1, 16), 49 * 8 * 4);
    }

    #[test]
    fn eq3_budget_scales_with_power_and_ratio() {
        let xb = CrossbarConfig::new(128, 1).unwrap();
        // 1 W * 0.3 ratio / 0.3 mW = 1000 crossbars.
        assert_eq!(xb.budget(Watts(1.0), 0.3, &hw()), 1000);
        assert_eq!(xb.budget(Watts(2.0), 0.3, &hw()), 2000);
        assert_eq!(xb.budget(Watts(1.0), 0.15, &hw()), 500);
    }

    #[test]
    fn weight_slices() {
        let xb = CrossbarConfig::new(128, 2).unwrap();
        assert_eq!(xb.weight_slices(16), 8);
        assert_eq!(xb.weight_slices(15), 8);
        assert_eq!(CrossbarConfig::new(128, 4).unwrap().weight_slices(16), 4);
    }

    #[test]
    fn area_scales_quadratically() {
        let a128 = CrossbarConfig::new(128, 1).unwrap().area(&hw());
        let a512 = CrossbarConfig::new(512, 1).unwrap().area(&hw());
        assert!((a512.0 / a128.0 - 16.0).abs() < 1e-9);
    }
}
