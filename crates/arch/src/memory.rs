//! Per-macro storage: the eDRAM scratchpad buffering activations between
//! layers and the small register files feeding PE input registers.

use crate::params::HardwareParams;
use crate::units::{Seconds, Watts};

/// Per-macro scratchpad (Table III: 64 KB eDRAM, 256-bit bus, 20.7 mW).
///
/// # Example
///
/// ```
/// use pimsyn_arch::{HardwareParams, ScratchpadSpec};
///
/// let hw = HardwareParams::date24();
/// let spm = ScratchpadSpec::from_params(&hw);
/// assert_eq!(spm.capacity_bytes(), 64 * 1024);
/// assert!(spm.read_latency(64).value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScratchpadSpec {
    capacity_bytes: usize,
    bus_bytes: usize,
    power: Watts,
    beat_latency: Seconds,
}

impl ScratchpadSpec {
    /// Builds the Table III scratchpad from hardware parameters.
    pub fn from_params(hw: &HardwareParams) -> Self {
        Self {
            capacity_bytes: hw.scratchpad_bytes,
            bus_bytes: (hw.scratchpad_bus_bits / 8) as usize,
            power: hw.scratchpad_power,
            beat_latency: hw.scratchpad_latency,
        }
    }

    /// Storage capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bus width in bytes per beat.
    pub fn bus_bytes(&self) -> usize {
        self.bus_bytes
    }

    /// Static + access power of the scratchpad.
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Sustained bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bus_bytes as f64 / self.beat_latency.value()
    }

    /// Latency to read `bytes` from the scratchpad (beat-granular burst).
    pub fn read_latency(&self, bytes: usize) -> Seconds {
        let beats = bytes.div_ceil(self.bus_bytes).max(1);
        self.beat_latency * beats as f64
    }

    /// Whether a working set of `bytes` fits in the scratchpad.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spm() -> ScratchpadSpec {
        ScratchpadSpec::from_params(&HardwareParams::date24())
    }

    #[test]
    fn table3_defaults() {
        let s = spm();
        assert_eq!(s.capacity_bytes(), 65536);
        assert_eq!(s.bus_bytes(), 32);
        assert!((s.power().milli() - 20.7).abs() < 1e-9);
    }

    #[test]
    fn read_latency_is_beat_granular() {
        let s = spm();
        // 32-byte bus, 2 ns/beat: 64 bytes = 2 beats = 4 ns.
        assert!((s.read_latency(64).nanos() - 4.0).abs() < 1e-9);
        // 1 byte still costs a full beat.
        assert!((s.read_latency(1).nanos() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_check() {
        let s = spm();
        assert!(s.fits(65536));
        assert!(!s.fits(65537));
    }

    #[test]
    fn bandwidth_is_bus_over_beat() {
        let s = spm();
        assert!((s.bandwidth() - 32.0 / 2e-9).abs() < 1.0);
    }
}
