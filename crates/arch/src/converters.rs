//! Data converters: DACs driving crossbar word lines and the shared ADC bank
//! digitizing bit-line currents. ADCs dominate PIM power (>60% per ISAAC),
//! making these models central to the paper's power-efficiency story.

use crate::error::ArchError;
use crate::params::HardwareParams;
use crate::units::{Hertz, SquareMm, Watts};

/// Legal DAC resolutions explored by the paper (Table I / Table III).
pub const RESDAC_CHOICES: [u32; 3] = [1, 2, 4];

/// DAC configuration (`ResDAC` design variable).
///
/// If activation precision exceeds the DAC resolution, inference iterates
/// bit-serially: each iteration feeds `ResDAC` input bits (Sec. II-A).
///
/// # Example
///
/// ```
/// use pimsyn_arch::DacConfig;
///
/// # fn main() -> Result<(), pimsyn_arch::ArchError> {
/// let dac = DacConfig::new(2)?;
/// assert_eq!(dac.bit_iterations(16), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DacConfig {
    bits: u32,
}

impl DacConfig {
    /// Creates a DAC configuration.
    ///
    /// # Errors
    ///
    /// [`ArchError::InvalidDesignVariable`] unless `bits` is 1, 2 or 4.
    pub fn new(bits: u32) -> Result<Self, ArchError> {
        if !RESDAC_CHOICES.contains(&bits) {
            return Err(ArchError::InvalidDesignVariable {
                variable: "ResDAC",
                value: bits.to_string(),
                expected: "one of 1, 2, 4",
            });
        }
        Ok(Self { bits })
    }

    /// DAC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of bit-serial iterations for `activation_bits`-wide inputs:
    /// `ceil(PrecAct / ResDAC)`.
    pub fn bit_iterations(&self, activation_bits: u32) -> usize {
        activation_bits.div_ceil(self.bits) as usize
    }

    /// Power of a single DAC (Table III: 4–30 uW across 1–4 bits).
    pub fn power(&self, hw: &HardwareParams) -> Watts {
        // The LUT is indexed by resolution; resolution 3 is not in the
        // explored set but interpolation keeps the model total.
        hw.dac_power_lut[(self.bits as usize - 1).min(3)]
    }

    /// DAC area.
    pub fn area(&self, hw: &HardwareParams) -> SquareMm {
        SquareMm(hw.dac_area.0 * self.bits as f64)
    }
}

/// ADC configuration.
///
/// The resolution is *derived*, not explored: PIMSYN fixes it to the minimum
/// that loses no accuracy (Sec. III), following ISAAC's rule for a crossbar
/// accumulating `rows` 1-bit-DAC'd, `cell_bits`-cell products:
/// `bits = log2(rows) + cell_bits + dac_bits - 1`, clamped to Table III's
/// 7..=14 range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdcConfig {
    bits: u32,
}

impl AdcConfig {
    /// Creates an ADC of an explicit resolution, clamped to the legal range.
    pub fn new(bits: u32, hw: &HardwareParams) -> Self {
        Self {
            bits: bits.clamp(hw.adc_min_bits, hw.adc_max_bits),
        }
    }

    /// Minimum lossless resolution for a crossbar of `rows` active rows,
    /// `cell_bits` cells and `dac_bits` DACs (ISAAC rule, Sec. III):
    /// `log2(rows) + cell_bits + dac_bits - 1`, with one further bit saved
    /// for 1-bit DACs by ISAAC's flipped-weight encoding (their Sec. IV
    /// analysis — this is how ISAAC reads 128 rows of 2-bit cells with an
    /// 8-bit converter without accuracy loss).
    pub fn minimum_lossless(
        rows: usize,
        cell_bits: u32,
        dac_bits: u32,
        hw: &HardwareParams,
    ) -> Self {
        let log_rows = (rows.max(1) as f64).log2().ceil() as u32;
        let encoding_saving = u32::from(dac_bits == 1);
        Self::new(
            (log_rows + cell_bits + dac_bits).saturating_sub(1 + encoding_saving),
            hw,
        )
    }

    /// ADC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Power of one ADC (Table III: 2–54 mW across 7–14 bits; the growth
    /// factor 1.6/bit reproduces both anchors).
    pub fn power(&self, hw: &HardwareParams) -> Watts {
        hw.adc_base_power
            * hw.adc_power_growth
                .powi(self.bits as i32 - hw.adc_min_bits as i32)
    }

    /// Sample rate: anchored at 1.28 GS/s for 8 bits (ISAAC), halving per
    /// extra bit of resolution (SAR-style rate/resolution tradeoff).
    pub fn sample_rate(&self, hw: &HardwareParams) -> Hertz {
        hw.adc_base_rate * 2f64.powi(8 - self.bits as i32)
    }

    /// ADC area, growing with resolution.
    pub fn area(&self, hw: &HardwareParams) -> SquareMm {
        SquareMm(hw.adc_area.0 * 1.3f64.powi(self.bits as i32 - 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareParams {
        HardwareParams::date24()
    }

    #[test]
    fn dac_validation() {
        assert!(DacConfig::new(3).is_err());
        assert!(DacConfig::new(1).is_ok());
    }

    #[test]
    fn dac_bit_iterations() {
        assert_eq!(DacConfig::new(1).unwrap().bit_iterations(16), 16);
        assert_eq!(DacConfig::new(4).unwrap().bit_iterations(16), 4);
        assert_eq!(DacConfig::new(4).unwrap().bit_iterations(10), 3);
    }

    #[test]
    fn dac_power_anchors() {
        let lo = DacConfig::new(1).unwrap().power(&hw());
        let hi = DacConfig::new(4).unwrap().power(&hw());
        assert!((lo.value() - 4e-6).abs() < 1e-12);
        assert!((hi.value() - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn adc_power_anchors_match_table3() {
        let lo = AdcConfig::new(7, &hw()).power(&hw());
        let hi = AdcConfig::new(14, &hw()).power(&hw());
        assert!((lo.milli() - 2.0).abs() < 1e-9, "7-bit anchor: {lo}");
        assert!((53.0..55.0).contains(&hi.milli()), "14-bit anchor: {hi}");
    }

    #[test]
    fn adc_resolution_clamped() {
        assert_eq!(AdcConfig::new(3, &hw()).bits(), 7);
        assert_eq!(AdcConfig::new(20, &hw()).bits(), 14);
    }

    #[test]
    fn minimum_lossless_rule() {
        // 128 rows, 2-bit cells, 1-bit DAC: 7 + 2 + 1 - 1 = 9, minus the
        // flipped-weight encoding bit = 8 — exactly ISAAC's converter.
        assert_eq!(AdcConfig::minimum_lossless(128, 2, 1, &hw()).bits(), 8);
        // Multi-bit DACs get no encoding saving: 7 + 2 + 2 - 1 = 10.
        assert_eq!(AdcConfig::minimum_lossless(128, 2, 2, &hw()).bits(), 10);
        // 512 rows, 4-bit cells, 4-bit DAC: 9 + 4 + 4 - 1 = 16 -> clamp 14.
        assert_eq!(AdcConfig::minimum_lossless(512, 4, 4, &hw()).bits(), 14);
        // Tiny layer in a big crossbar: few active rows need fewer bits.
        assert_eq!(AdcConfig::minimum_lossless(27, 1, 1, &hw()).bits(), 7);
    }

    #[test]
    fn adc_rate_halves_per_bit() {
        let r8 = AdcConfig::new(8, &hw()).sample_rate(&hw());
        let r9 = AdcConfig::new(9, &hw()).sample_rate(&hw());
        assert!((r8.value() / r9.value() - 2.0).abs() < 1e-9);
        assert_eq!(r8.value(), 1.28e9);
    }
}
