//! Umbrella crate for the PIMSYN reproduction workspace.
//!
//! This package exists to host the workspace-level [examples] and integration
//! tests; the actual functionality lives in the member crates, re-exported
//! here for convenience:
//!
//! - [`pimsyn`] — the synthesis framework (the paper's contribution)
//! - [`pimsyn_model`] — CNN model representation, zoo, and ingestion
//! - [`pimsyn_arch`] — hardware component library and architecture template
//! - [`pimsyn_ir`] — PIM intermediate representation and dataflow compiler
//! - [`pimsyn_sim`] — cycle-accurate behavior-level simulator
//! - [`pimsyn_dse`] — design-space exploration (SA filter, EA explorer, Alg. 1)
//! - [`pimsyn_baselines`] — manually-designed accelerator models and heuristics
//! - [`pimsyn_gateway`] — multi-tenant HTTP/REST front end over the service
//!
//! [examples]: https://github.com/example/pimsyn-repro/tree/main/examples

pub use pimsyn;
pub use pimsyn_arch;
pub use pimsyn_baselines;
pub use pimsyn_dse;
pub use pimsyn_gateway;
pub use pimsyn_ir;
pub use pimsyn_model;
pub use pimsyn_sim;
