/root/repo/target/debug/examples/ablation_study-a4972003874a240e.d: examples/ablation_study.rs Cargo.toml

/root/repo/target/debug/examples/libablation_study-a4972003874a240e.rmeta: examples/ablation_study.rs Cargo.toml

examples/ablation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
