/root/repo/target/debug/examples/dataflow_inspect-12d0fcf60ee69be9.d: examples/dataflow_inspect.rs

/root/repo/target/debug/examples/libdataflow_inspect-12d0fcf60ee69be9.rmeta: examples/dataflow_inspect.rs

examples/dataflow_inspect.rs:
