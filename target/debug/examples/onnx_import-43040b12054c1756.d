/root/repo/target/debug/examples/onnx_import-43040b12054c1756.d: examples/onnx_import.rs Cargo.toml

/root/repo/target/debug/examples/libonnx_import-43040b12054c1756.rmeta: examples/onnx_import.rs Cargo.toml

examples/onnx_import.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
