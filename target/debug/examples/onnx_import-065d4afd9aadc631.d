/root/repo/target/debug/examples/onnx_import-065d4afd9aadc631.d: examples/onnx_import.rs

/root/repo/target/debug/examples/onnx_import-065d4afd9aadc631: examples/onnx_import.rs

examples/onnx_import.rs:
