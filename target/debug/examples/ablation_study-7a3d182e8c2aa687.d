/root/repo/target/debug/examples/ablation_study-7a3d182e8c2aa687.d: examples/ablation_study.rs

/root/repo/target/debug/examples/ablation_study-7a3d182e8c2aa687: examples/ablation_study.rs

examples/ablation_study.rs:
