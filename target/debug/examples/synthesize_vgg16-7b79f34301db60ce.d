/root/repo/target/debug/examples/synthesize_vgg16-7b79f34301db60ce.d: examples/synthesize_vgg16.rs Cargo.toml

/root/repo/target/debug/examples/libsynthesize_vgg16-7b79f34301db60ce.rmeta: examples/synthesize_vgg16.rs Cargo.toml

examples/synthesize_vgg16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
