/root/repo/target/debug/examples/onnx_import-5b2a4509d0902fbd.d: examples/onnx_import.rs

/root/repo/target/debug/examples/libonnx_import-5b2a4509d0902fbd.rmeta: examples/onnx_import.rs

examples/onnx_import.rs:
