/root/repo/target/debug/examples/power_sweep-e69258e8e9252239.d: examples/power_sweep.rs

/root/repo/target/debug/examples/power_sweep-e69258e8e9252239: examples/power_sweep.rs

examples/power_sweep.rs:
