/root/repo/target/debug/examples/dataflow_inspect-b285ad6c8f182ac9.d: examples/dataflow_inspect.rs

/root/repo/target/debug/examples/dataflow_inspect-b285ad6c8f182ac9: examples/dataflow_inspect.rs

examples/dataflow_inspect.rs:
