/root/repo/target/debug/examples/power_sweep-57d50bfe81c53ceb.d: examples/power_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libpower_sweep-57d50bfe81c53ceb.rmeta: examples/power_sweep.rs Cargo.toml

examples/power_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
