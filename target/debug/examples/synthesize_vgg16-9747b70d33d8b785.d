/root/repo/target/debug/examples/synthesize_vgg16-9747b70d33d8b785.d: examples/synthesize_vgg16.rs

/root/repo/target/debug/examples/libsynthesize_vgg16-9747b70d33d8b785.rmeta: examples/synthesize_vgg16.rs

examples/synthesize_vgg16.rs:
