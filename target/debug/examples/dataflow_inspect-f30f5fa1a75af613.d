/root/repo/target/debug/examples/dataflow_inspect-f30f5fa1a75af613.d: examples/dataflow_inspect.rs Cargo.toml

/root/repo/target/debug/examples/libdataflow_inspect-f30f5fa1a75af613.rmeta: examples/dataflow_inspect.rs Cargo.toml

examples/dataflow_inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
