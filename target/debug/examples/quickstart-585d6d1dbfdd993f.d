/root/repo/target/debug/examples/quickstart-585d6d1dbfdd993f.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-585d6d1dbfdd993f.rmeta: examples/quickstart.rs

examples/quickstart.rs:
