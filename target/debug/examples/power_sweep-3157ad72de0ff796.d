/root/repo/target/debug/examples/power_sweep-3157ad72de0ff796.d: examples/power_sweep.rs

/root/repo/target/debug/examples/libpower_sweep-3157ad72de0ff796.rmeta: examples/power_sweep.rs

examples/power_sweep.rs:
