/root/repo/target/debug/examples/quickstart-f21b92ed34241467.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f21b92ed34241467: examples/quickstart.rs

examples/quickstart.rs:
