/root/repo/target/debug/examples/ablation_study-13e164c6cbd7408e.d: examples/ablation_study.rs

/root/repo/target/debug/examples/libablation_study-13e164c6cbd7408e.rmeta: examples/ablation_study.rs

examples/ablation_study.rs:
