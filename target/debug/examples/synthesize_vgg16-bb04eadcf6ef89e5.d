/root/repo/target/debug/examples/synthesize_vgg16-bb04eadcf6ef89e5.d: examples/synthesize_vgg16.rs

/root/repo/target/debug/examples/synthesize_vgg16-bb04eadcf6ef89e5: examples/synthesize_vgg16.rs

examples/synthesize_vgg16.rs:
