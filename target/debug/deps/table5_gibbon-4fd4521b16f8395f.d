/root/repo/target/debug/deps/table5_gibbon-4fd4521b16f8395f.d: crates/bench/benches/table5_gibbon.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_gibbon-4fd4521b16f8395f.rmeta: crates/bench/benches/table5_gibbon.rs Cargo.toml

crates/bench/benches/table5_gibbon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
