/root/repo/target/debug/deps/repro-84e1c3702c3126c4.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-84e1c3702c3126c4: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
