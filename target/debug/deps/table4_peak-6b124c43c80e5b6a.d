/root/repo/target/debug/deps/table4_peak-6b124c43c80e5b6a.d: crates/bench/benches/table4_peak.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_peak-6b124c43c80e5b6a.rmeta: crates/bench/benches/table4_peak.rs Cargo.toml

crates/bench/benches/table4_peak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
