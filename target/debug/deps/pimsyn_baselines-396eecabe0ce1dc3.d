/root/repo/target/debug/deps/pimsyn_baselines-396eecabe0ce1dc3.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/debug/deps/pimsyn_baselines-396eecabe0ce1dc3: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
