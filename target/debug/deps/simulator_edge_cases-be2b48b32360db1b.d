/root/repo/target/debug/deps/simulator_edge_cases-be2b48b32360db1b.d: tests/simulator_edge_cases.rs

/root/repo/target/debug/deps/simulator_edge_cases-be2b48b32360db1b: tests/simulator_edge_cases.rs

tests/simulator_edge_cases.rs:
