/root/repo/target/debug/deps/fig5_adc_reuse-e85ac4c4ec4f0494.d: crates/bench/benches/fig5_adc_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_adc_reuse-e85ac4c4ec4f0494.rmeta: crates/bench/benches/fig5_adc_reuse.rs Cargo.toml

crates/bench/benches/fig5_adc_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
