/root/repo/target/debug/deps/fig9_sharing-ca1f9b3001904b4b.d: crates/bench/benches/fig9_sharing.rs

/root/repo/target/debug/deps/libfig9_sharing-ca1f9b3001904b4b.rmeta: crates/bench/benches/fig9_sharing.rs

crates/bench/benches/fig9_sharing.rs:
