/root/repo/target/debug/deps/pimsyn_bench-b2e45c809dedda15.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_bench-b2e45c809dedda15.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
