/root/repo/target/debug/deps/dse_sensitivity-0b9883463e5e5745.d: crates/bench/benches/dse_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libdse_sensitivity-0b9883463e5e5745.rmeta: crates/bench/benches/dse_sensitivity.rs Cargo.toml

crates/bench/benches/dse_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
