/root/repo/target/debug/deps/baselines_comparison-85810c3c44c24edb.d: tests/baselines_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_comparison-85810c3c44c24edb.rmeta: tests/baselines_comparison.rs Cargo.toml

tests/baselines_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
