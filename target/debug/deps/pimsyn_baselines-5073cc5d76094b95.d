/root/repo/target/debug/deps/pimsyn_baselines-5073cc5d76094b95.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/debug/deps/libpimsyn_baselines-5073cc5d76094b95.rlib: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/debug/deps/libpimsyn_baselines-5073cc5d76094b95.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
