/root/repo/target/debug/deps/pimsyn-4bf799d23c5285fb.d: crates/core/src/bin/pimsyn.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn-4bf799d23c5285fb.rmeta: crates/core/src/bin/pimsyn.rs Cargo.toml

crates/core/src/bin/pimsyn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
