/root/repo/target/debug/deps/ingestion_round_trip-ba37a9cd21c4ca41.d: tests/ingestion_round_trip.rs

/root/repo/target/debug/deps/ingestion_round_trip-ba37a9cd21c4ca41: tests/ingestion_round_trip.rs

tests/ingestion_round_trip.rs:
