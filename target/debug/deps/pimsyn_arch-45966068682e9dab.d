/root/repo/target/debug/deps/pimsyn_arch-45966068682e9dab.d: crates/arch/src/lib.rs crates/arch/src/architecture.rs crates/arch/src/components.rs crates/arch/src/converters.rs crates/arch/src/crossbar.rs crates/arch/src/error.rs crates/arch/src/hardware_config.rs crates/arch/src/memory.rs crates/arch/src/noc.rs crates/arch/src/params.rs crates/arch/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_arch-45966068682e9dab.rmeta: crates/arch/src/lib.rs crates/arch/src/architecture.rs crates/arch/src/components.rs crates/arch/src/converters.rs crates/arch/src/crossbar.rs crates/arch/src/error.rs crates/arch/src/hardware_config.rs crates/arch/src/memory.rs crates/arch/src/noc.rs crates/arch/src/params.rs crates/arch/src/units.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/architecture.rs:
crates/arch/src/components.rs:
crates/arch/src/converters.rs:
crates/arch/src/crossbar.rs:
crates/arch/src/error.rs:
crates/arch/src/hardware_config.rs:
crates/arch/src/memory.rs:
crates/arch/src/noc.rs:
crates/arch/src/params.rs:
crates/arch/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
