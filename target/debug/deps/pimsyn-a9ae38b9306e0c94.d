/root/repo/target/debug/deps/pimsyn-a9ae38b9306e0c94.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/debug/deps/libpimsyn-a9ae38b9306e0c94.rmeta: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
