/root/repo/target/debug/deps/rand-cf1a830e372628eb.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cf1a830e372628eb.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
