/root/repo/target/debug/deps/power_properties-67be6e1ba8ecac1a.d: crates/arch/tests/power_properties.rs

/root/repo/target/debug/deps/power_properties-67be6e1ba8ecac1a: crates/arch/tests/power_properties.rs

crates/arch/tests/power_properties.rs:
