/root/repo/target/debug/deps/pimsyn_bench-c311f69dd497bc2a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpimsyn_bench-c311f69dd497bc2a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
