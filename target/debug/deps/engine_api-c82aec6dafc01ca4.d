/root/repo/target/debug/deps/engine_api-c82aec6dafc01ca4.d: tests/engine_api.rs Cargo.toml

/root/repo/target/debug/deps/libengine_api-c82aec6dafc01ca4.rmeta: tests/engine_api.rs Cargo.toml

tests/engine_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
