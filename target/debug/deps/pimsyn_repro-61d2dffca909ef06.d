/root/repo/target/debug/deps/pimsyn_repro-61d2dffca909ef06.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_repro-61d2dffca909ef06.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
