/root/repo/target/debug/deps/json_properties-5cb9daa7aaa2a6f6.d: crates/model/tests/json_properties.rs

/root/repo/target/debug/deps/libjson_properties-5cb9daa7aaa2a6f6.rmeta: crates/model/tests/json_properties.rs

crates/model/tests/json_properties.rs:
