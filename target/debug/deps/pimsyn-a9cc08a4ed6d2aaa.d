/root/repo/target/debug/deps/pimsyn-a9cc08a4ed6d2aaa.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn-a9cc08a4ed6d2aaa.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/events.rs:
crates/core/src/options.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/summary.rs:
crates/core/src/synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
