/root/repo/target/debug/deps/baselines_comparison-179f11903fd881ec.d: tests/baselines_comparison.rs

/root/repo/target/debug/deps/libbaselines_comparison-179f11903fd881ec.rmeta: tests/baselines_comparison.rs

tests/baselines_comparison.rs:
