/root/repo/target/debug/deps/ingestion_round_trip-3bbe00913fde8cc6.d: tests/ingestion_round_trip.rs

/root/repo/target/debug/deps/libingestion_round_trip-3bbe00913fde8cc6.rmeta: tests/ingestion_round_trip.rs

tests/ingestion_round_trip.rs:
