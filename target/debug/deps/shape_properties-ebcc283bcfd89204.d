/root/repo/target/debug/deps/shape_properties-ebcc283bcfd89204.d: crates/model/tests/shape_properties.rs Cargo.toml

/root/repo/target/debug/deps/libshape_properties-ebcc283bcfd89204.rmeta: crates/model/tests/shape_properties.rs Cargo.toml

crates/model/tests/shape_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
