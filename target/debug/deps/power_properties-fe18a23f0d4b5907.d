/root/repo/target/debug/deps/power_properties-fe18a23f0d4b5907.d: crates/arch/tests/power_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpower_properties-fe18a23f0d4b5907.rmeta: crates/arch/tests/power_properties.rs Cargo.toml

crates/arch/tests/power_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
