/root/repo/target/debug/deps/repro-d43d2c27b17e7124.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-d43d2c27b17e7124.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
