/root/repo/target/debug/deps/criterion-dea432f593321251.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-dea432f593321251.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
