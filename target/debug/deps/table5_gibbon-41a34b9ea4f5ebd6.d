/root/repo/target/debug/deps/table5_gibbon-41a34b9ea4f5ebd6.d: crates/bench/benches/table5_gibbon.rs

/root/repo/target/debug/deps/libtable5_gibbon-41a34b9ea4f5ebd6.rmeta: crates/bench/benches/table5_gibbon.rs

crates/bench/benches/table5_gibbon.rs:
