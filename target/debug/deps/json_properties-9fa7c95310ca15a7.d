/root/repo/target/debug/deps/json_properties-9fa7c95310ca15a7.d: crates/model/tests/json_properties.rs Cargo.toml

/root/repo/target/debug/deps/libjson_properties-9fa7c95310ca15a7.rmeta: crates/model/tests/json_properties.rs Cargo.toml

crates/model/tests/json_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
