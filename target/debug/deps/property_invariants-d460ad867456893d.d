/root/repo/target/debug/deps/property_invariants-d460ad867456893d.d: tests/property_invariants.rs

/root/repo/target/debug/deps/libproperty_invariants-d460ad867456893d.rmeta: tests/property_invariants.rs

tests/property_invariants.rs:
