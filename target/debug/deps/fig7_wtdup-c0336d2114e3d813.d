/root/repo/target/debug/deps/fig7_wtdup-c0336d2114e3d813.d: crates/bench/benches/fig7_wtdup.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_wtdup-c0336d2114e3d813.rmeta: crates/bench/benches/fig7_wtdup.rs Cargo.toml

crates/bench/benches/fig7_wtdup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
