/root/repo/target/debug/deps/synthesis_stages-9133ad0ff7bcaa7e.d: crates/bench/benches/synthesis_stages.rs

/root/repo/target/debug/deps/libsynthesis_stages-9133ad0ff7bcaa7e.rmeta: crates/bench/benches/synthesis_stages.rs

crates/bench/benches/synthesis_stages.rs:
