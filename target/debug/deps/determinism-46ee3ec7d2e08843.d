/root/repo/target/debug/deps/determinism-46ee3ec7d2e08843.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-46ee3ec7d2e08843.rmeta: tests/determinism.rs

tests/determinism.rs:
