/root/repo/target/debug/deps/pimsyn_repro-ce02f7cb07a5448d.d: src/lib.rs

/root/repo/target/debug/deps/libpimsyn_repro-ce02f7cb07a5448d.rmeta: src/lib.rs

src/lib.rs:
