/root/repo/target/debug/deps/end_to_end-5c2719ed7a83899b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-5c2719ed7a83899b.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
