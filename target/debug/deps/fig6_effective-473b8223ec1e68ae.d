/root/repo/target/debug/deps/fig6_effective-473b8223ec1e68ae.d: crates/bench/benches/fig6_effective.rs

/root/repo/target/debug/deps/libfig6_effective-473b8223ec1e68ae.rmeta: crates/bench/benches/fig6_effective.rs

crates/bench/benches/fig6_effective.rs:
