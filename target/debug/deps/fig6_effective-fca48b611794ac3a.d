/root/repo/target/debug/deps/fig6_effective-fca48b611794ac3a.d: crates/bench/benches/fig6_effective.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_effective-fca48b611794ac3a.rmeta: crates/bench/benches/fig6_effective.rs Cargo.toml

crates/bench/benches/fig6_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
