/root/repo/target/debug/deps/pimsyn-1928f9e081deac76.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/debug/deps/pimsyn-1928f9e081deac76: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
