/root/repo/target/debug/deps/pimsyn_ir-8e72d66be85fe270.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_ir-8e72d66be85fe270.rmeta: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
