/root/repo/target/debug/deps/pimsyn_repro-a7891acdc88ad085.d: src/lib.rs

/root/repo/target/debug/deps/libpimsyn_repro-a7891acdc88ad085.rmeta: src/lib.rs

src/lib.rs:
