/root/repo/target/debug/deps/fig8_macro-be8d60bf5c4ef2f9.d: crates/bench/benches/fig8_macro.rs

/root/repo/target/debug/deps/libfig8_macro-be8d60bf5c4ef2f9.rmeta: crates/bench/benches/fig8_macro.rs

crates/bench/benches/fig8_macro.rs:
