/root/repo/target/debug/deps/table4_peak-009d9ababf465892.d: crates/bench/benches/table4_peak.rs

/root/repo/target/debug/deps/libtable4_peak-009d9ababf465892.rmeta: crates/bench/benches/table4_peak.rs

crates/bench/benches/table4_peak.rs:
