/root/repo/target/debug/deps/fig8_macro-fee820dccd30e217.d: crates/bench/benches/fig8_macro.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_macro-fee820dccd30e217.rmeta: crates/bench/benches/fig8_macro.rs Cargo.toml

crates/bench/benches/fig8_macro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
