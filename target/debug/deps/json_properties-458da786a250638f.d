/root/repo/target/debug/deps/json_properties-458da786a250638f.d: crates/model/tests/json_properties.rs

/root/repo/target/debug/deps/json_properties-458da786a250638f: crates/model/tests/json_properties.rs

crates/model/tests/json_properties.rs:
