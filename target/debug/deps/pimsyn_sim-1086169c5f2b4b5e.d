/root/repo/target/debug/deps/pimsyn_sim-1086169c5f2b4b5e.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/debug/deps/libpimsyn_sim-1086169c5f2b4b5e.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
