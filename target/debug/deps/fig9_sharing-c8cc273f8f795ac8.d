/root/repo/target/debug/deps/fig9_sharing-c8cc273f8f795ac8.d: crates/bench/benches/fig9_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_sharing-c8cc273f8f795ac8.rmeta: crates/bench/benches/fig9_sharing.rs Cargo.toml

crates/bench/benches/fig9_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
