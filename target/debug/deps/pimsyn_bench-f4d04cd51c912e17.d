/root/repo/target/debug/deps/pimsyn_bench-f4d04cd51c912e17.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pimsyn_bench-f4d04cd51c912e17: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
