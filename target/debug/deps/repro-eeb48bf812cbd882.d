/root/repo/target/debug/deps/repro-eeb48bf812cbd882.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-eeb48bf812cbd882.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
