/root/repo/target/debug/deps/synthesis_stages-13aad55b89d2a8bc.d: crates/bench/benches/synthesis_stages.rs Cargo.toml

/root/repo/target/debug/deps/libsynthesis_stages-13aad55b89d2a8bc.rmeta: crates/bench/benches/synthesis_stages.rs Cargo.toml

crates/bench/benches/synthesis_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
