/root/repo/target/debug/deps/engine_api-79d88379e702d6a7.d: tests/engine_api.rs

/root/repo/target/debug/deps/engine_api-79d88379e702d6a7: tests/engine_api.rs

tests/engine_api.rs:
