/root/repo/target/debug/deps/pimsyn_baselines-d408cc4b28cf58b6.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_baselines-d408cc4b28cf58b6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
