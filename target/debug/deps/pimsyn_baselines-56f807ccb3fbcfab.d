/root/repo/target/debug/deps/pimsyn_baselines-56f807ccb3fbcfab.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/debug/deps/libpimsyn_baselines-56f807ccb3fbcfab.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
