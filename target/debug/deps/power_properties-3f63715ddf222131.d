/root/repo/target/debug/deps/power_properties-3f63715ddf222131.d: crates/arch/tests/power_properties.rs

/root/repo/target/debug/deps/libpower_properties-3f63715ddf222131.rmeta: crates/arch/tests/power_properties.rs

crates/arch/tests/power_properties.rs:
