/root/repo/target/debug/deps/pimsyn_model-edf85a902018bb26.d: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_model-edf85a902018bb26.rmeta: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/layer.rs:
crates/model/src/model.rs:
crates/model/src/onnx.rs:
crates/model/src/tensor.rs:
crates/model/src/zoo/mod.rs:
crates/model/src/zoo/alexnet.rs:
crates/model/src/zoo/msra.rs:
crates/model/src/zoo/resnet.rs:
crates/model/src/zoo/vgg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
