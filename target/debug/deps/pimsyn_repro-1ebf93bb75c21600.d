/root/repo/target/debug/deps/pimsyn_repro-1ebf93bb75c21600.d: src/lib.rs

/root/repo/target/debug/deps/pimsyn_repro-1ebf93bb75c21600: src/lib.rs

src/lib.rs:
