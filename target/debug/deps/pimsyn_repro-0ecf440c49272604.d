/root/repo/target/debug/deps/pimsyn_repro-0ecf440c49272604.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_repro-0ecf440c49272604.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
