/root/repo/target/debug/deps/pimsyn_sim-1a155b412a21d1dc.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/debug/deps/libpimsyn_sim-1a155b412a21d1dc.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
