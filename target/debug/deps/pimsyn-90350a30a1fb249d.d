/root/repo/target/debug/deps/pimsyn-90350a30a1fb249d.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/debug/deps/pimsyn-90350a30a1fb249d: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
