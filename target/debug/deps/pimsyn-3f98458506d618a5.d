/root/repo/target/debug/deps/pimsyn-3f98458506d618a5.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/debug/deps/libpimsyn-3f98458506d618a5.rmeta: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
