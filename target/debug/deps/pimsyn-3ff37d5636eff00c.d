/root/repo/target/debug/deps/pimsyn-3ff37d5636eff00c.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

/root/repo/target/debug/deps/pimsyn-3ff37d5636eff00c: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/events.rs:
crates/core/src/options.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/summary.rs:
crates/core/src/synthesis.rs:
