/root/repo/target/debug/deps/pimsyn_dse-ba246bd4d10870f0.d: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_dse-ba246bd4d10870f0.rmeta: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs Cargo.toml

crates/dse/src/lib.rs:
crates/dse/src/alloc.rs:
crates/dse/src/ctx.rs:
crates/dse/src/ea.rs:
crates/dse/src/error.rs:
crates/dse/src/explore.rs:
crates/dse/src/sa.rs:
crates/dse/src/space.rs:
crates/dse/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
