/root/repo/target/debug/deps/pimsyn_ir-7ab7120f4b8343a5.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/pimsyn_ir-7ab7120f4b8343a5: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
