/root/repo/target/debug/deps/pimsyn_bench-b8383048c8f37186.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_bench-b8383048c8f37186.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
