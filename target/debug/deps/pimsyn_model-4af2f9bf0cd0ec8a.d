/root/repo/target/debug/deps/pimsyn_model-4af2f9bf0cd0ec8a.d: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

/root/repo/target/debug/deps/libpimsyn_model-4af2f9bf0cd0ec8a.rmeta: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

crates/model/src/lib.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/layer.rs:
crates/model/src/model.rs:
crates/model/src/onnx.rs:
crates/model/src/tensor.rs:
crates/model/src/zoo/mod.rs:
crates/model/src/zoo/alexnet.rs:
crates/model/src/zoo/msra.rs:
crates/model/src/zoo/resnet.rs:
crates/model/src/zoo/vgg.rs:
