/root/repo/target/debug/deps/pimsyn_bench-7bdb2aa1df9fa498.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpimsyn_bench-7bdb2aa1df9fa498.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
