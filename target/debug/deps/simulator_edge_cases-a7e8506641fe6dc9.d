/root/repo/target/debug/deps/simulator_edge_cases-a7e8506641fe6dc9.d: tests/simulator_edge_cases.rs

/root/repo/target/debug/deps/libsimulator_edge_cases-a7e8506641fe6dc9.rmeta: tests/simulator_edge_cases.rs

tests/simulator_edge_cases.rs:
