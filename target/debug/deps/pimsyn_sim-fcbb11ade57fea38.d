/root/repo/target/debug/deps/pimsyn_sim-fcbb11ade57fea38.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_sim-fcbb11ade57fea38.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
