/root/repo/target/debug/deps/repro-c2f9484b547a3fc2.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-c2f9484b547a3fc2.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
