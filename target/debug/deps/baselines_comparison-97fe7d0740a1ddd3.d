/root/repo/target/debug/deps/baselines_comparison-97fe7d0740a1ddd3.d: tests/baselines_comparison.rs

/root/repo/target/debug/deps/baselines_comparison-97fe7d0740a1ddd3: tests/baselines_comparison.rs

tests/baselines_comparison.rs:
