/root/repo/target/debug/deps/shape_properties-c9a78829dc920528.d: crates/model/tests/shape_properties.rs

/root/repo/target/debug/deps/libshape_properties-c9a78829dc920528.rmeta: crates/model/tests/shape_properties.rs

crates/model/tests/shape_properties.rs:
