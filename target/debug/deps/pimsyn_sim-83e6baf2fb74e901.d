/root/repo/target/debug/deps/pimsyn_sim-83e6baf2fb74e901.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/debug/deps/pimsyn_sim-83e6baf2fb74e901: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
