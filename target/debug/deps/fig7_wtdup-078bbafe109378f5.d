/root/repo/target/debug/deps/fig7_wtdup-078bbafe109378f5.d: crates/bench/benches/fig7_wtdup.rs

/root/repo/target/debug/deps/libfig7_wtdup-078bbafe109378f5.rmeta: crates/bench/benches/fig7_wtdup.rs

crates/bench/benches/fig7_wtdup.rs:
