/root/repo/target/debug/deps/determinism-87699a74bf01d954.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-87699a74bf01d954: tests/determinism.rs

tests/determinism.rs:
