/root/repo/target/debug/deps/pimsyn_baselines-9f4e29aa72f1b250.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs Cargo.toml

/root/repo/target/debug/deps/libpimsyn_baselines-9f4e29aa72f1b250.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
