/root/repo/target/debug/deps/pimsyn_dse-8d01e6c4d530da66.d: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

/root/repo/target/debug/deps/libpimsyn_dse-8d01e6c4d530da66.rlib: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

/root/repo/target/debug/deps/libpimsyn_dse-8d01e6c4d530da66.rmeta: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

crates/dse/src/lib.rs:
crates/dse/src/alloc.rs:
crates/dse/src/ctx.rs:
crates/dse/src/ea.rs:
crates/dse/src/error.rs:
crates/dse/src/explore.rs:
crates/dse/src/sa.rs:
crates/dse/src/space.rs:
crates/dse/src/sweep.rs:
