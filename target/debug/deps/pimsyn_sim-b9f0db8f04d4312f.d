/root/repo/target/debug/deps/pimsyn_sim-b9f0db8f04d4312f.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/debug/deps/libpimsyn_sim-b9f0db8f04d4312f.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/debug/deps/libpimsyn_sim-b9f0db8f04d4312f.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
