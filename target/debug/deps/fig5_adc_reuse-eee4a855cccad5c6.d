/root/repo/target/debug/deps/fig5_adc_reuse-eee4a855cccad5c6.d: crates/bench/benches/fig5_adc_reuse.rs

/root/repo/target/debug/deps/libfig5_adc_reuse-eee4a855cccad5c6.rmeta: crates/bench/benches/fig5_adc_reuse.rs

crates/bench/benches/fig5_adc_reuse.rs:
