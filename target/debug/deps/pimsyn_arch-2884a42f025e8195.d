/root/repo/target/debug/deps/pimsyn_arch-2884a42f025e8195.d: crates/arch/src/lib.rs crates/arch/src/architecture.rs crates/arch/src/components.rs crates/arch/src/converters.rs crates/arch/src/crossbar.rs crates/arch/src/error.rs crates/arch/src/hardware_config.rs crates/arch/src/memory.rs crates/arch/src/noc.rs crates/arch/src/params.rs crates/arch/src/units.rs

/root/repo/target/debug/deps/libpimsyn_arch-2884a42f025e8195.rlib: crates/arch/src/lib.rs crates/arch/src/architecture.rs crates/arch/src/components.rs crates/arch/src/converters.rs crates/arch/src/crossbar.rs crates/arch/src/error.rs crates/arch/src/hardware_config.rs crates/arch/src/memory.rs crates/arch/src/noc.rs crates/arch/src/params.rs crates/arch/src/units.rs

/root/repo/target/debug/deps/libpimsyn_arch-2884a42f025e8195.rmeta: crates/arch/src/lib.rs crates/arch/src/architecture.rs crates/arch/src/components.rs crates/arch/src/converters.rs crates/arch/src/crossbar.rs crates/arch/src/error.rs crates/arch/src/hardware_config.rs crates/arch/src/memory.rs crates/arch/src/noc.rs crates/arch/src/params.rs crates/arch/src/units.rs

crates/arch/src/lib.rs:
crates/arch/src/architecture.rs:
crates/arch/src/components.rs:
crates/arch/src/converters.rs:
crates/arch/src/crossbar.rs:
crates/arch/src/error.rs:
crates/arch/src/hardware_config.rs:
crates/arch/src/memory.rs:
crates/arch/src/noc.rs:
crates/arch/src/params.rs:
crates/arch/src/units.rs:
