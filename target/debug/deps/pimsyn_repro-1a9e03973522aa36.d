/root/repo/target/debug/deps/pimsyn_repro-1a9e03973522aa36.d: src/lib.rs

/root/repo/target/debug/deps/libpimsyn_repro-1a9e03973522aa36.rlib: src/lib.rs

/root/repo/target/debug/deps/libpimsyn_repro-1a9e03973522aa36.rmeta: src/lib.rs

src/lib.rs:
