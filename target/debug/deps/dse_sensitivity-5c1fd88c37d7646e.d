/root/repo/target/debug/deps/dse_sensitivity-5c1fd88c37d7646e.d: crates/bench/benches/dse_sensitivity.rs

/root/repo/target/debug/deps/libdse_sensitivity-5c1fd88c37d7646e.rmeta: crates/bench/benches/dse_sensitivity.rs

crates/bench/benches/dse_sensitivity.rs:
