/root/repo/target/debug/deps/pimsyn_ir-71524d9362597ef0.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libpimsyn_ir-71524d9362597ef0.rlib: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libpimsyn_ir-71524d9362597ef0.rmeta: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
