/root/repo/target/debug/deps/pimsyn_bench-ed9b70bd0728c7e4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpimsyn_bench-ed9b70bd0728c7e4.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpimsyn_bench-ed9b70bd0728c7e4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
