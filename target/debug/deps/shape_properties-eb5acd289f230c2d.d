/root/repo/target/debug/deps/shape_properties-eb5acd289f230c2d.d: crates/model/tests/shape_properties.rs

/root/repo/target/debug/deps/shape_properties-eb5acd289f230c2d: crates/model/tests/shape_properties.rs

crates/model/tests/shape_properties.rs:
