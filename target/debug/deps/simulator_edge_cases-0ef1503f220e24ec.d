/root/repo/target/debug/deps/simulator_edge_cases-0ef1503f220e24ec.d: tests/simulator_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_edge_cases-0ef1503f220e24ec.rmeta: tests/simulator_edge_cases.rs Cargo.toml

tests/simulator_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
