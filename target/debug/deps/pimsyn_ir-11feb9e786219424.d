/root/repo/target/debug/deps/pimsyn_ir-11feb9e786219424.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libpimsyn_ir-11feb9e786219424.rmeta: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
