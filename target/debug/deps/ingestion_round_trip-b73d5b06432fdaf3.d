/root/repo/target/debug/deps/ingestion_round_trip-b73d5b06432fdaf3.d: tests/ingestion_round_trip.rs Cargo.toml

/root/repo/target/debug/deps/libingestion_round_trip-b73d5b06432fdaf3.rmeta: tests/ingestion_round_trip.rs Cargo.toml

tests/ingestion_round_trip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
