/root/repo/target/debug/deps/engine_api-6e823ef8520a26a8.d: tests/engine_api.rs

/root/repo/target/debug/deps/libengine_api-6e823ef8520a26a8.rmeta: tests/engine_api.rs

tests/engine_api.rs:
