/root/repo/target/debug/deps/pimsyn-b36440e8db033cf1.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

/root/repo/target/debug/deps/libpimsyn-b36440e8db033cf1.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/events.rs:
crates/core/src/options.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/summary.rs:
crates/core/src/synthesis.rs:
