/root/repo/target/debug/deps/property_invariants-34860904118fd165.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-34860904118fd165: tests/property_invariants.rs

tests/property_invariants.rs:
