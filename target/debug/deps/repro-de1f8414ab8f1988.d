/root/repo/target/debug/deps/repro-de1f8414ab8f1988.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-de1f8414ab8f1988: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
