/root/repo/target/debug/deps/pimsyn_model-8586ef92474576f1.d: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

/root/repo/target/debug/deps/pimsyn_model-8586ef92474576f1: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

crates/model/src/lib.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/layer.rs:
crates/model/src/model.rs:
crates/model/src/onnx.rs:
crates/model/src/tensor.rs:
crates/model/src/zoo/mod.rs:
crates/model/src/zoo/alexnet.rs:
crates/model/src/zoo/msra.rs:
crates/model/src/zoo/resnet.rs:
crates/model/src/zoo/vgg.rs:
