/root/repo/target/debug/deps/end_to_end-a3cf7ac0a633b5d5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a3cf7ac0a633b5d5: tests/end_to_end.rs

tests/end_to_end.rs:
