/root/repo/target/release/deps/fig5_adc_reuse-b03a4ceafe0d5567.d: crates/bench/benches/fig5_adc_reuse.rs

/root/repo/target/release/deps/fig5_adc_reuse-b03a4ceafe0d5567: crates/bench/benches/fig5_adc_reuse.rs

crates/bench/benches/fig5_adc_reuse.rs:
