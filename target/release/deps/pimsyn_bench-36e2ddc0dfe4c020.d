/root/repo/target/release/deps/pimsyn_bench-36e2ddc0dfe4c020.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpimsyn_bench-36e2ddc0dfe4c020.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpimsyn_bench-36e2ddc0dfe4c020.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
