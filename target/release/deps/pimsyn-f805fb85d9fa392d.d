/root/repo/target/release/deps/pimsyn-f805fb85d9fa392d.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/release/deps/pimsyn-f805fb85d9fa392d: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
