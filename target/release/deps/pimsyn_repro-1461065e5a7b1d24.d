/root/repo/target/release/deps/pimsyn_repro-1461065e5a7b1d24.d: src/lib.rs

/root/repo/target/release/deps/pimsyn_repro-1461065e5a7b1d24: src/lib.rs

src/lib.rs:
