/root/repo/target/release/deps/pimsyn-5034fb401b27251b.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

/root/repo/target/release/deps/pimsyn-5034fb401b27251b: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/events.rs:
crates/core/src/options.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/summary.rs:
crates/core/src/synthesis.rs:
