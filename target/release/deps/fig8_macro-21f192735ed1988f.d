/root/repo/target/release/deps/fig8_macro-21f192735ed1988f.d: crates/bench/benches/fig8_macro.rs

/root/repo/target/release/deps/fig8_macro-21f192735ed1988f: crates/bench/benches/fig8_macro.rs

crates/bench/benches/fig8_macro.rs:
