/root/repo/target/release/deps/pimsyn_bench-26823a036364c469.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/pimsyn_bench-26823a036364c469: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
