/root/repo/target/release/deps/pimsyn_baselines-84dcede2f1bf58b5.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/release/deps/libpimsyn_baselines-84dcede2f1bf58b5.rlib: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/release/deps/libpimsyn_baselines-84dcede2f1bf58b5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
