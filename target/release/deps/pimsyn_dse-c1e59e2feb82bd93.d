/root/repo/target/release/deps/pimsyn_dse-c1e59e2feb82bd93.d: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

/root/repo/target/release/deps/pimsyn_dse-c1e59e2feb82bd93: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

crates/dse/src/lib.rs:
crates/dse/src/alloc.rs:
crates/dse/src/ctx.rs:
crates/dse/src/ea.rs:
crates/dse/src/error.rs:
crates/dse/src/explore.rs:
crates/dse/src/sa.rs:
crates/dse/src/space.rs:
crates/dse/src/sweep.rs:
