/root/repo/target/release/deps/pimsyn_model-6b1287fdabc3f08a.d: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

/root/repo/target/release/deps/libpimsyn_model-6b1287fdabc3f08a.rlib: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

/root/repo/target/release/deps/libpimsyn_model-6b1287fdabc3f08a.rmeta: crates/model/src/lib.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/layer.rs crates/model/src/model.rs crates/model/src/onnx.rs crates/model/src/tensor.rs crates/model/src/zoo/mod.rs crates/model/src/zoo/alexnet.rs crates/model/src/zoo/msra.rs crates/model/src/zoo/resnet.rs crates/model/src/zoo/vgg.rs

crates/model/src/lib.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/layer.rs:
crates/model/src/model.rs:
crates/model/src/onnx.rs:
crates/model/src/tensor.rs:
crates/model/src/zoo/mod.rs:
crates/model/src/zoo/alexnet.rs:
crates/model/src/zoo/msra.rs:
crates/model/src/zoo/resnet.rs:
crates/model/src/zoo/vgg.rs:
