/root/repo/target/release/deps/table5_gibbon-6ed0066a865ad6ba.d: crates/bench/benches/table5_gibbon.rs

/root/repo/target/release/deps/table5_gibbon-6ed0066a865ad6ba: crates/bench/benches/table5_gibbon.rs

crates/bench/benches/table5_gibbon.rs:
