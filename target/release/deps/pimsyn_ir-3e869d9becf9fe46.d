/root/repo/target/release/deps/pimsyn_ir-3e869d9becf9fe46.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/release/deps/libpimsyn_ir-3e869d9becf9fe46.rlib: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/release/deps/libpimsyn_ir-3e869d9becf9fe46.rmeta: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
