/root/repo/target/release/deps/pimsyn-346870e913fe582b.d: crates/core/src/bin/pimsyn.rs

/root/repo/target/release/deps/pimsyn-346870e913fe582b: crates/core/src/bin/pimsyn.rs

crates/core/src/bin/pimsyn.rs:
