/root/repo/target/release/deps/fig7_wtdup-cc6beccce4504ad2.d: crates/bench/benches/fig7_wtdup.rs

/root/repo/target/release/deps/fig7_wtdup-cc6beccce4504ad2: crates/bench/benches/fig7_wtdup.rs

crates/bench/benches/fig7_wtdup.rs:
