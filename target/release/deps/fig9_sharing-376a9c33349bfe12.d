/root/repo/target/release/deps/fig9_sharing-376a9c33349bfe12.d: crates/bench/benches/fig9_sharing.rs

/root/repo/target/release/deps/fig9_sharing-376a9c33349bfe12: crates/bench/benches/fig9_sharing.rs

crates/bench/benches/fig9_sharing.rs:
