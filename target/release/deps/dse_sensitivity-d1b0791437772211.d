/root/repo/target/release/deps/dse_sensitivity-d1b0791437772211.d: crates/bench/benches/dse_sensitivity.rs

/root/repo/target/release/deps/dse_sensitivity-d1b0791437772211: crates/bench/benches/dse_sensitivity.rs

crates/bench/benches/dse_sensitivity.rs:
