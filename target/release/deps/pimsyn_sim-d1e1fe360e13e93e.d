/root/repo/target/release/deps/pimsyn_sim-d1e1fe360e13e93e.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/release/deps/libpimsyn_sim-d1e1fe360e13e93e.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/release/deps/libpimsyn_sim-d1e1fe360e13e93e.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
