/root/repo/target/release/deps/pimsyn_ir-d65ee319084121fb.d: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

/root/repo/target/release/deps/pimsyn_ir-d65ee319084121fb: crates/ir/src/lib.rs crates/ir/src/compile.rs crates/ir/src/dag.rs crates/ir/src/error.rs crates/ir/src/op.rs crates/ir/src/pipeline.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/compile.rs:
crates/ir/src/dag.rs:
crates/ir/src/error.rs:
crates/ir/src/op.rs:
crates/ir/src/pipeline.rs:
crates/ir/src/program.rs:
