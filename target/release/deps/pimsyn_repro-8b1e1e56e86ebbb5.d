/root/repo/target/release/deps/pimsyn_repro-8b1e1e56e86ebbb5.d: src/lib.rs

/root/repo/target/release/deps/libpimsyn_repro-8b1e1e56e86ebbb5.rlib: src/lib.rs

/root/repo/target/release/deps/libpimsyn_repro-8b1e1e56e86ebbb5.rmeta: src/lib.rs

src/lib.rs:
