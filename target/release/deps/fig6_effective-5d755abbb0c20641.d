/root/repo/target/release/deps/fig6_effective-5d755abbb0c20641.d: crates/bench/benches/fig6_effective.rs

/root/repo/target/release/deps/fig6_effective-5d755abbb0c20641: crates/bench/benches/fig6_effective.rs

crates/bench/benches/fig6_effective.rs:
