/root/repo/target/release/deps/repro-70619cf9dc4336c6.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-70619cf9dc4336c6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
