/root/repo/target/release/deps/pimsyn_baselines-0d58df79b0a87c3a.d: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

/root/repo/target/release/deps/pimsyn_baselines-0d58df79b0a87c3a: crates/baselines/src/lib.rs crates/baselines/src/gibbon.rs crates/baselines/src/heuristics.rs crates/baselines/src/inventory.rs crates/baselines/src/isaac.rs crates/baselines/src/published.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gibbon.rs:
crates/baselines/src/heuristics.rs:
crates/baselines/src/inventory.rs:
crates/baselines/src/isaac.rs:
crates/baselines/src/published.rs:
