/root/repo/target/release/deps/pimsyn_sim-dbd19b82c67fdb36.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

/root/repo/target/release/deps/pimsyn_sim-dbd19b82c67fdb36: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/stages.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stages.rs:
