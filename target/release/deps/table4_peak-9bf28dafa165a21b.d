/root/repo/target/release/deps/table4_peak-9bf28dafa165a21b.d: crates/bench/benches/table4_peak.rs

/root/repo/target/release/deps/table4_peak-9bf28dafa165a21b: crates/bench/benches/table4_peak.rs

crates/bench/benches/table4_peak.rs:
