/root/repo/target/release/deps/pimsyn-d4820f02ff86b0d9.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

/root/repo/target/release/deps/libpimsyn-d4820f02ff86b0d9.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

/root/repo/target/release/deps/libpimsyn-d4820f02ff86b0d9.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/events.rs crates/core/src/options.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/summary.rs crates/core/src/synthesis.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/events.rs:
crates/core/src/options.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/summary.rs:
crates/core/src/synthesis.rs:
