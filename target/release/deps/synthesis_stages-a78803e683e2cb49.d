/root/repo/target/release/deps/synthesis_stages-a78803e683e2cb49.d: crates/bench/benches/synthesis_stages.rs

/root/repo/target/release/deps/synthesis_stages-a78803e683e2cb49: crates/bench/benches/synthesis_stages.rs

crates/bench/benches/synthesis_stages.rs:
