/root/repo/target/release/deps/repro-73d82cab051a8b1d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-73d82cab051a8b1d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
