/root/repo/target/release/deps/pimsyn_dse-15fa36c268616cdb.d: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

/root/repo/target/release/deps/libpimsyn_dse-15fa36c268616cdb.rlib: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

/root/repo/target/release/deps/libpimsyn_dse-15fa36c268616cdb.rmeta: crates/dse/src/lib.rs crates/dse/src/alloc.rs crates/dse/src/ctx.rs crates/dse/src/ea.rs crates/dse/src/error.rs crates/dse/src/explore.rs crates/dse/src/sa.rs crates/dse/src/space.rs crates/dse/src/sweep.rs

crates/dse/src/lib.rs:
crates/dse/src/alloc.rs:
crates/dse/src/ctx.rs:
crates/dse/src/ea.rs:
crates/dse/src/error.rs:
crates/dse/src/explore.rs:
crates/dse/src/sa.rs:
crates/dse/src/space.rs:
crates/dse/src/sweep.rs:
