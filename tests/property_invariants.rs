//! Property-based cross-crate invariants: random small CNNs and design
//! points must uphold the synthesis stack's structural laws.
//!
//! Cases are drawn from a seeded RNG (no external property-test framework
//! is available offline), so every run exercises the same deterministic
//! sample of the input space; failures reproduce exactly.

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::{CrossbarConfig, DacConfig, Watts};
use pimsyn_dse::{crossbars_used, sa_energy, wt_dup_candidates, SaConfig};
use pimsyn_ir::Dataflow;
use pimsyn_model::{LayerId, Model, ModelBuilder, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// A random conv stack (1-4 conv layers + optional pooling + classifier)
/// on a small input.
fn arb_model(rng: &mut StdRng) -> Model {
    let ci = rng.gen_range(2usize..=4);
    let extent = rng.gen_range(8usize..=16);
    let convs = rng.gen_range(1usize..=4);
    let specs: Vec<(usize, bool)> = (0..4)
        .map(|_| (rng.gen_range(4usize..=24), rng.gen_bool(0.5)))
        .collect();
    let classes = rng.gen_range(1usize..=10);

    let mut b = ModelBuilder::new("prop", TensorShape::new(ci, extent, extent));
    let mut cur = None;
    let mut spatial = extent;
    for (i, &(width, pool)) in specs.iter().take(convs).enumerate() {
        let c = b.conv(format!("c{i}"), cur, width, 3, 1, 1);
        let r = b.relu(format!("r{i}"), c);
        cur = Some(if pool && spatial >= 4 {
            spatial /= 2;
            b.max_pool(format!("p{i}"), r, 2, 2)
        } else {
            r
        });
    }
    let f = b.flatten("flat", cur.expect("at least one conv"));
    b.linear("fc", f, classes);
    b.build().expect("generated model is valid")
}

fn arb_crossbar(rng: &mut StdRng) -> CrossbarConfig {
    let size = [128usize, 256, 512][rng.gen_range(0usize..3)];
    let cell = [1u32, 2, 4][rng.gen_range(0usize..3)];
    CrossbarConfig::new(size, cell).expect("legal by construction")
}

/// A random DAG mixing classic and modern op kinds: dense, grouped and
/// depthwise convs, residual adds, squeeze-excite gates (matmul + sigmoid +
/// broadcast mul), attention-style blocks (matmul + softmax + dynamic mul)
/// and pooling, ending in a classifier.
fn arb_modern_model(rng: &mut StdRng, case: usize) -> Model {
    // Widths stay a multiple of 4 so grouped convs always have legal
    // group counts to pick from.
    let ci = 4 * rng.gen_range(1usize..=2);
    let extent = rng.gen_range(8usize..=12);
    let blocks = rng.gen_range(1usize..=4);
    let classes = rng.gen_range(2usize..=10);

    let mut b = ModelBuilder::new(format!("prop-modern-{case}"), {
        TensorShape::new(ci, extent, extent)
    });
    let mut width = 4 * rng.gen_range(2usize..=6);
    let mut cur: LayerId = b.conv("stem", None, width, 3, 1, 1);
    cur = b.relu("stem_relu", cur);
    let mut spatial = extent;

    for i in 0..blocks {
        match rng.gen_range(0usize..5) {
            // Plain dense conv.
            0 => {
                width = 4 * rng.gen_range(2usize..=6);
                cur = b.conv(format!("c{i}"), Some(cur), width, 3, 1, 1);
                cur = b.relu(format!("c{i}_relu"), cur);
            }
            // Depthwise-separable pair.
            1 => {
                cur = b.depthwise_conv(format!("dw{i}"), cur, width, 3, 1, 1);
                width = 4 * rng.gen_range(2usize..=6);
                cur = b.conv(format!("pw{i}"), Some(cur), width, 1, 1, 0);
                cur = b.relu(format!("pw{i}_relu"), cur);
            }
            // Grouped conv with a random legal group count.
            2 => {
                let groups = [2usize, 4][rng.gen_range(0usize..2)];
                cur = b.grouped_conv(format!("g{i}"), Some(cur), width, 3, 1, 1, groups);
                cur = b.relu(format!("g{i}_relu"), cur);
            }
            // Residual block with an optional squeeze-excite gate.
            3 => {
                let skip = cur;
                let c1 = b.conv(format!("res{i}_c1"), Some(cur), width, 3, 1, 1);
                let r1 = b.relu(format!("res{i}_r1"), c1);
                let mut trunk = b.conv(format!("res{i}_c2"), Some(r1), width, 3, 1, 1);
                if rng.gen_bool(0.5) {
                    let gap = b.global_avg_pool(format!("se{i}_gap"), trunk);
                    let fc1 = b.matmul(format!("se{i}_fc1"), gap, (width / 4).max(1));
                    let act = b.relu(format!("se{i}_relu"), fc1);
                    let fc2 = b.matmul(format!("se{i}_fc2"), act, width);
                    let gate = b.sigmoid(format!("se{i}_sig"), fc2);
                    trunk = b.mul(format!("se{i}_mul"), trunk, gate);
                }
                let add = b.add(format!("res{i}_add"), trunk, skip);
                cur = b.relu(format!("res{i}_out"), add);
            }
            // Attention-style block: q/k/v projections, dynamic products.
            _ => {
                let q = b.matmul(format!("att{i}_q"), cur, width);
                let k = b.matmul(format!("att{i}_k"), cur, width);
                let v = b.matmul(format!("att{i}_v"), cur, width);
                let scores = b.mul(format!("att{i}_qk"), q, k);
                let weights = b.softmax(format!("att{i}_sm"), scores);
                let attended = b.mul(format!("att{i}_av"), weights, v);
                let o = b.matmul(format!("att{i}_o"), attended, width);
                cur = b.add(format!("att{i}_res"), o, cur);
            }
        }
        if rng.gen_bool(0.3) && spatial >= 4 {
            spatial /= 2;
            cur = b.max_pool(format!("pool{i}"), cur, 2, 2);
        }
    }

    let gap = b.global_avg_pool("gap", cur);
    let f = b.flatten("flat", gap);
    b.linear("fc", f, classes);
    b.build().expect("generated modern model is valid")
}

#[test]
fn synthesis_over_modern_dags_is_total() {
    // Full synthesis per case is heavier than the structural checks above,
    // so this property runs a smaller (still seeded) sample.
    let mut rng = StdRng::seed_from_u64(0x5EED_0006);
    for case in 0..CASES / 3 {
        let model = arb_modern_model(&mut rng, case);
        let power = rng.gen_range(2.0f64..30.0);
        let options = SynthesisOptions::fast(Watts(power)).with_seed(rng.gen());
        // Synthesis must never panic: it either produces a feasible
        // implementation or reports a clean, displayable error.
        match Synthesizer::new(options).synthesize(&model) {
            Ok(result) => {
                assert_eq!(result.wt_dup.len(), model.weight_layer_count());
                assert_eq!(
                    result.architecture.crossbar_count(),
                    result.dataflow.total_crossbars(),
                    "case {case}: architecture and dataflow disagree"
                );
                let report = result.best_report();
                assert!(
                    report.power.value().is_finite() && report.power.value() > 0.0,
                    "case {case}: power {}",
                    report.power
                );
                assert!(
                    report.power.value() <= power * (1.0 + 1e-9),
                    "case {case}: power {} exceeds budget {power}",
                    report.power
                );
                assert!(report.latency.value().is_finite() && report.latency.value() > 0.0);
                assert!(report.efficiency_tops_per_watt().is_finite());
            }
            Err(e) => {
                // Cleanly infeasible: the error formats and names no panic.
                let text = e.to_string();
                assert!(!text.is_empty(), "case {case}: empty error");
            }
        }
    }
}

#[test]
fn sa_candidates_always_feasible() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let extra = rng.gen_range(0usize..4000);
        let one_copy = crossbars_used(&model, xb, &vec![1; model.weight_layer_count()]);
        let budget = one_copy + extra;
        let cands = wt_dup_candidates(&model, xb, budget, &SaConfig::fast()).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(crossbars_used(&model, xb, c) <= budget);
            assert!(c.iter().all(|&d| d >= 1));
        }
    }
}

#[test]
fn full_duplication_zeroes_block_imbalance() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        // If every layer is duplicated to one block, the first Eq. (4) term
        // vanishes, so energy at alpha=0 must be ~0.
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions())
            .collect();
        let e = sa_energy(&model, &dup, 0.0);
        assert!(e.abs() < 1e-9, "energy {e}");
    }
}

#[test]
fn dataflow_workloads_are_duplication_invariant_in_total() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dup_scale = rng.gen_range(1usize..6);
        let dac = DacConfig::new(1).expect("legal");
        let l = model.weight_layer_count();
        let base = Dataflow::compile(&model, xb, dac, &vec![1; l]).unwrap();
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| dup_scale.min(wl.output_positions()))
            .collect();
        let scaled = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        for (a, b) in base.programs().iter().zip(scaled.programs()) {
            // Total ADC samples per inference are duplication-invariant up
            // to the ragged final block (ceil(positions/dup) x dup may
            // exceed positions by at most dup - 1 positions' worth).
            let per_position = a.total_adc_samples() / a.blocks.max(1) as u64;
            let slack = per_position * dup[a.layer] as u64;
            assert!(b.total_adc_samples() >= a.total_adc_samples());
            assert!(
                b.total_adc_samples() <= a.total_adc_samples() + slack,
                "layer {}: {} vs {} (+{slack})",
                a.layer,
                b.total_adc_samples(),
                a.total_adc_samples()
            );
            // Crossbars scale exactly with the duplication factor.
            assert_eq!(b.crossbars, a.crossbars * dup[a.layer]);
        }
    }
}

#[test]
fn pipeline_dependencies_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dac = DacConfig::new(2).expect("legal");
        let l = model.weight_layer_count();
        let df = Dataflow::compile(&model, xb, dac, &vec![2; l]).unwrap();
        for consumer in 0..l {
            for &producer in &df.program(consumer).producers.clone() {
                let producer_blocks = df.program(producer).blocks;
                let mut prev = 0;
                for cnt in 0..df.program(consumer).blocks {
                    let need = df.producer_blocks_needed(consumer, cnt, producer);
                    assert!(need >= prev, "dependency must be monotone");
                    assert!(need <= producer_blocks, "dependency exceeds producer");
                    prev = need;
                }
                // The last block needs (nearly) everything reachable.
                assert!(prev >= producer_blocks / 2);
            }
        }
    }
}

#[test]
fn dag_when_materializable_is_topological() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dac = DacConfig::new(4).expect("legal");
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions().div_ceil(4).max(1))
            .collect();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        if let Ok(dag) = df.build_dag(200_000) {
            assert_eq!(dag.node_count(), df.dag_node_estimate());
            for i in 0..dag.node_count() as u32 {
                for &(succ, _) in dag.successors(i) {
                    assert!(succ > i);
                }
            }
            assert!(dag.depth() >= 4);
        }
    }
}
