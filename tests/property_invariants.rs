//! Property-based cross-crate invariants: random small CNNs and design
//! points must uphold the synthesis stack's structural laws.

use pimsyn_arch::{CrossbarConfig, DacConfig};
use pimsyn_dse::{crossbars_used, sa_energy, wt_dup_candidates, SaConfig};
use pimsyn_ir::Dataflow;
use pimsyn_model::{Model, ModelBuilder, TensorShape};
use proptest::prelude::*;

/// Strategy: a random conv stack (1-4 conv layers + optional pooling +
/// classifier) on a small input.
fn arb_model() -> impl Strategy<Value = Model> {
    (
        2usize..=4,              // input channels
        8usize..=16,             // input extent
        1usize..=4,              // conv layers
        prop::collection::vec((4usize..=24, prop::bool::ANY), 4),
        1usize..=10,             // classes
    )
        .prop_map(|(ci, extent, convs, specs, classes)| {
            let mut b = ModelBuilder::new("prop", TensorShape::new(ci, extent, extent));
            let mut cur = None;
            let mut spatial = extent;
            for (i, &(width, pool)) in specs.iter().take(convs).enumerate() {
                let c = b.conv(format!("c{i}"), cur, width, 3, 1, 1);
                let r = b.relu(format!("r{i}"), c);
                cur = Some(if pool && spatial >= 4 {
                    spatial /= 2;
                    b.max_pool(format!("p{i}"), r, 2, 2)
                } else {
                    r
                });
            }
            let f = b.flatten("flat", cur.expect("at least one conv"));
            b.linear("fc", f, classes);
            b.build().expect("generated model is valid")
        })
}

fn arb_crossbar() -> impl Strategy<Value = CrossbarConfig> {
    (prop::sample::select(vec![128usize, 256, 512]), prop::sample::select(vec![1u32, 2, 4]))
        .prop_map(|(s, c)| CrossbarConfig::new(s, c).expect("legal by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sa_candidates_always_feasible(model in arb_model(), xb in arb_crossbar(), extra in 0usize..4000) {
        let one_copy = crossbars_used(&model, xb, &vec![1; model.weight_layer_count()]);
        let budget = one_copy + extra;
        let cands = wt_dup_candidates(&model, xb, budget, &SaConfig::fast()).unwrap();
        prop_assert!(!cands.is_empty());
        for c in &cands {
            prop_assert!(crossbars_used(&model, xb, c) <= budget);
            prop_assert!(c.iter().all(|&d| d >= 1));
        }
    }

    #[test]
    fn full_duplication_zeroes_block_imbalance(model in arb_model()) {
        // If every layer is duplicated to one block, the first Eq. (4) term
        // vanishes, so energy at alpha=0 must be ~0.
        let dup: Vec<usize> =
            model.weight_layers().map(|wl| wl.output_positions()).collect();
        let e = sa_energy(&model, &dup, 0.0);
        prop_assert!(e.abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn dataflow_workloads_are_duplication_invariant_in_total(
        model in arb_model(),
        xb in arb_crossbar(),
        dup_scale in 1usize..6,
    ) {
        let dac = DacConfig::new(1).expect("legal");
        let l = model.weight_layer_count();
        let base = Dataflow::compile(&model, xb, dac, &vec![1; l]).unwrap();
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| dup_scale.min(wl.output_positions()))
            .collect();
        let scaled = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        for (a, b) in base.programs().iter().zip(scaled.programs()) {
            // Total ADC samples per inference are duplication-invariant up
            // to the ragged final block (ceil(positions/dup) x dup may
            // exceed positions by at most dup - 1 positions' worth).
            let per_position = a.total_adc_samples() / a.blocks.max(1) as u64;
            let slack = per_position * dup[a.layer] as u64;
            prop_assert!(b.total_adc_samples() >= a.total_adc_samples());
            prop_assert!(
                b.total_adc_samples() <= a.total_adc_samples() + slack,
                "layer {}: {} vs {} (+{slack})",
                a.layer,
                b.total_adc_samples(),
                a.total_adc_samples()
            );
            // Crossbars scale exactly with the duplication factor.
            prop_assert_eq!(b.crossbars, a.crossbars * dup[a.layer]);
        }
    }

    #[test]
    fn pipeline_dependencies_monotone_and_bounded(
        model in arb_model(),
        xb in arb_crossbar(),
    ) {
        let dac = DacConfig::new(2).expect("legal");
        let l = model.weight_layer_count();
        let df = Dataflow::compile(&model, xb, dac, &vec![2; l]).unwrap();
        for consumer in 0..l {
            for &producer in &df.program(consumer).producers.clone() {
                let producer_blocks = df.program(producer).blocks;
                let mut prev = 0;
                for cnt in 0..df.program(consumer).blocks {
                    let need = df.producer_blocks_needed(consumer, cnt, producer);
                    prop_assert!(need >= prev, "dependency must be monotone");
                    prop_assert!(need <= producer_blocks, "dependency exceeds producer");
                    prev = need;
                }
                // The last block needs (nearly) everything reachable.
                prop_assert!(prev >= producer_blocks / 2);
            }
        }
    }

    #[test]
    fn dag_when_materializable_is_topological(model in arb_model(), xb in arb_crossbar()) {
        let dac = DacConfig::new(4).expect("legal");
        let l = model.weight_layer_count();
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions().div_ceil(4).max(1))
            .collect();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        if let Ok(dag) = df.build_dag(200_000) {
            prop_assert_eq!(dag.node_count(), df.dag_node_estimate());
            for i in 0..dag.node_count() as u32 {
                for &(succ, _) in dag.successors(i) {
                    prop_assert!(succ > i);
                }
            }
            prop_assert!(dag.depth() >= 4);
        }
        let _ = l;
    }
}
