//! Property-based cross-crate invariants: random small CNNs and design
//! points must uphold the synthesis stack's structural laws.
//!
//! Cases are drawn from a seeded RNG (no external property-test framework
//! is available offline), so every run exercises the same deterministic
//! sample of the input space; failures reproduce exactly.

use pimsyn_arch::{CrossbarConfig, DacConfig};
use pimsyn_dse::{crossbars_used, sa_energy, wt_dup_candidates, SaConfig};
use pimsyn_ir::Dataflow;
use pimsyn_model::{Model, ModelBuilder, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// A random conv stack (1-4 conv layers + optional pooling + classifier)
/// on a small input.
fn arb_model(rng: &mut StdRng) -> Model {
    let ci = rng.gen_range(2usize..=4);
    let extent = rng.gen_range(8usize..=16);
    let convs = rng.gen_range(1usize..=4);
    let specs: Vec<(usize, bool)> = (0..4)
        .map(|_| (rng.gen_range(4usize..=24), rng.gen_bool(0.5)))
        .collect();
    let classes = rng.gen_range(1usize..=10);

    let mut b = ModelBuilder::new("prop", TensorShape::new(ci, extent, extent));
    let mut cur = None;
    let mut spatial = extent;
    for (i, &(width, pool)) in specs.iter().take(convs).enumerate() {
        let c = b.conv(format!("c{i}"), cur, width, 3, 1, 1);
        let r = b.relu(format!("r{i}"), c);
        cur = Some(if pool && spatial >= 4 {
            spatial /= 2;
            b.max_pool(format!("p{i}"), r, 2, 2)
        } else {
            r
        });
    }
    let f = b.flatten("flat", cur.expect("at least one conv"));
    b.linear("fc", f, classes);
    b.build().expect("generated model is valid")
}

fn arb_crossbar(rng: &mut StdRng) -> CrossbarConfig {
    let size = [128usize, 256, 512][rng.gen_range(0usize..3)];
    let cell = [1u32, 2, 4][rng.gen_range(0usize..3)];
    CrossbarConfig::new(size, cell).expect("legal by construction")
}

#[test]
fn sa_candidates_always_feasible() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let extra = rng.gen_range(0usize..4000);
        let one_copy = crossbars_used(&model, xb, &vec![1; model.weight_layer_count()]);
        let budget = one_copy + extra;
        let cands = wt_dup_candidates(&model, xb, budget, &SaConfig::fast()).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(crossbars_used(&model, xb, c) <= budget);
            assert!(c.iter().all(|&d| d >= 1));
        }
    }
}

#[test]
fn full_duplication_zeroes_block_imbalance() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        // If every layer is duplicated to one block, the first Eq. (4) term
        // vanishes, so energy at alpha=0 must be ~0.
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions())
            .collect();
        let e = sa_energy(&model, &dup, 0.0);
        assert!(e.abs() < 1e-9, "energy {e}");
    }
}

#[test]
fn dataflow_workloads_are_duplication_invariant_in_total() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dup_scale = rng.gen_range(1usize..6);
        let dac = DacConfig::new(1).expect("legal");
        let l = model.weight_layer_count();
        let base = Dataflow::compile(&model, xb, dac, &vec![1; l]).unwrap();
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| dup_scale.min(wl.output_positions()))
            .collect();
        let scaled = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        for (a, b) in base.programs().iter().zip(scaled.programs()) {
            // Total ADC samples per inference are duplication-invariant up
            // to the ragged final block (ceil(positions/dup) x dup may
            // exceed positions by at most dup - 1 positions' worth).
            let per_position = a.total_adc_samples() / a.blocks.max(1) as u64;
            let slack = per_position * dup[a.layer] as u64;
            assert!(b.total_adc_samples() >= a.total_adc_samples());
            assert!(
                b.total_adc_samples() <= a.total_adc_samples() + slack,
                "layer {}: {} vs {} (+{slack})",
                a.layer,
                b.total_adc_samples(),
                a.total_adc_samples()
            );
            // Crossbars scale exactly with the duplication factor.
            assert_eq!(b.crossbars, a.crossbars * dup[a.layer]);
        }
    }
}

#[test]
fn pipeline_dependencies_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dac = DacConfig::new(2).expect("legal");
        let l = model.weight_layer_count();
        let df = Dataflow::compile(&model, xb, dac, &vec![2; l]).unwrap();
        for consumer in 0..l {
            for &producer in &df.program(consumer).producers.clone() {
                let producer_blocks = df.program(producer).blocks;
                let mut prev = 0;
                for cnt in 0..df.program(consumer).blocks {
                    let need = df.producer_blocks_needed(consumer, cnt, producer);
                    assert!(need >= prev, "dependency must be monotone");
                    assert!(need <= producer_blocks, "dependency exceeds producer");
                    prev = need;
                }
                // The last block needs (nearly) everything reachable.
                assert!(prev >= producer_blocks / 2);
            }
        }
    }
}

#[test]
fn dag_when_materializable_is_topological() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let xb = arb_crossbar(&mut rng);
        let dac = DacConfig::new(4).expect("legal");
        let dup: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions().div_ceil(4).max(1))
            .collect();
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        if let Ok(dag) = df.build_dag(200_000) {
            assert_eq!(dag.node_count(), df.dag_node_estimate());
            for i in 0..dag.node_count() as u32 {
                for &(succ, _) in dag.successors(i) {
                    assert!(succ > i);
                }
            }
            assert!(dag.depth() >= 4);
        }
    }
}
