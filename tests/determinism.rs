//! Reproducibility: the whole flow is deterministic given a seed, including
//! under parallel exploration, with candidate-evaluation memoization, and
//! across evaluation backends (inline, thread pool; the subprocess backend
//! is covered end-to-end in the `pimsyn` crate's `backend_worker` tests,
//! which have access to the built CLI binary).

use pimsyn::{BackendKind, EvalCacheConfig, SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

#[test]
fn same_seed_same_architecture() {
    let model = zoo::alexnet_cifar(10);
    let run = |seed| {
        Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis")
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.analytic, b.analytic);
}

#[test]
fn different_seeds_may_differ_but_stay_feasible() {
    let model = zoo::alexnet_cifar(10);
    for seed in [1u64, 2, 3] {
        let r = Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis");
        r.architecture.validate(&model).expect("feasible");
        assert!(r.analytic.efficiency_tops_per_watt() > 0.0);
    }
}

/// The evaluator's memo caches are transparent: for several models and
/// seeds, a cached run's complete outcome — architecture, analytic report,
/// evaluation counts and per-point history — is bit-identical to an
/// uncached run's.
#[test]
fn eval_cache_runs_are_bit_identical_to_uncached() {
    let cases = [
        (zoo::alexnet_cifar(10), Watts(9.0)),
        (zoo::vgg16_cifar(10), Watts(15.0)),
        // New-op coverage: attention MatMul/Softmax/Mul and residual Add
        // (transformer-tiny), squeeze-excite gates over grouped residual
        // blocks (resnet18-se). Depthwise layers map block-diagonally, so
        // mobilenet needs the larger crossbar budget.
        (zoo::transformer_tiny(), Watts(6.0)),
        (zoo::resnet18_se(), Watts(30.0)),
        (zoo::mobilenet(), Watts(120.0)),
    ];
    for (model, power) in &cases {
        for seed in [3u64, 17] {
            let base = SynthesisOptions::fast(*power).with_seed(seed);
            let cached = Synthesizer::new(base.clone())
                .synthesize(model)
                .expect("cached synthesis");
            let uncached = Synthesizer::new(base.with_eval_cache(EvalCacheConfig::disabled()))
                .synthesize(model)
                .expect("uncached synthesis");
            assert_eq!(cached.wt_dup, uncached.wt_dup, "{model} seed {seed}");
            assert_eq!(
                cached.architecture, uncached.architecture,
                "{model} seed {seed}"
            );
            assert_eq!(cached.analytic, uncached.analytic, "{model} seed {seed}");
            assert_eq!(
                cached.evaluations, uncached.evaluations,
                "{model} seed {seed}"
            );
            assert_eq!(cached.history, uncached.history, "{model} seed {seed}");
        }
    }
}

/// The evaluation backend decides only *where* scoring runs: inline and
/// thread-pool backends must produce bit-identical outcomes — best design,
/// evaluation counts and per-point history — for several models and seeds.
#[test]
fn thread_pool_backend_equals_inline_bit_identically() {
    let cases = [
        (zoo::alexnet_cifar(10), Watts(9.0)),
        (zoo::vgg16_cifar(10), Watts(15.0)),
        (zoo::transformer_tiny(), Watts(6.0)),
    ];
    for (model, power) in &cases {
        for seed in [7u64, 23] {
            let base = SynthesisOptions::fast(*power).with_seed(seed);
            let inline = Synthesizer::new(base.clone())
                .synthesize(model)
                .expect("inline synthesis");
            let threads = Synthesizer::new(
                base.clone()
                    .with_backend(BackendKind::ThreadPool { workers: 2 }),
            )
            .synthesize(model)
            .expect("thread-pool synthesis");
            assert_eq!(inline.wt_dup, threads.wt_dup, "{model} seed {seed}");
            assert_eq!(
                inline.architecture, threads.architecture,
                "{model} seed {seed}"
            );
            assert_eq!(inline.analytic, threads.analytic, "{model} seed {seed}");
            assert_eq!(
                inline.evaluations, threads.evaluations,
                "{model} seed {seed}"
            );
            assert_eq!(inline.history, threads.history, "{model} seed {seed}");
            assert_eq!(
                inline.stop_reason, threads.stop_reason,
                "{model} seed {seed}"
            );
        }
    }
}

/// The remote backend decides only *where* scoring runs, like every other
/// backend: a run scored against a live in-process `worker-serve` daemon
/// must produce a bit-identical outcome — best design, evaluation counts
/// and per-point history — to an inline run, for several seeds over one
/// daemon (sessions are re-opened per run on recycled connections).
#[test]
fn remote_backend_equals_inline_bit_identically() {
    let model = zoo::alexnet_cifar(10);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let daemon = pimsyn::serve_workers_in_background(
        listener,
        pimsyn::WorkerServeConfig {
            slots: 2,
            token: None,
            quiet: true,
            ..Default::default()
        },
    )
    .expect("start worker daemon");
    let addr = daemon.addr().to_string();
    for seed in [7u64, 23] {
        let base = SynthesisOptions::fast(Watts(9.0)).with_seed(seed);
        let inline = Synthesizer::new(base.clone())
            .synthesize(&model)
            .expect("inline synthesis");
        let remote = Synthesizer::new(base.with_backend(BackendKind::Remote {
            endpoints: vec![addr.clone()],
        }))
        .synthesize(&model)
        .expect("remote synthesis");
        assert_eq!(inline.wt_dup, remote.wt_dup, "seed {seed}");
        assert_eq!(inline.architecture, remote.architecture, "seed {seed}");
        assert_eq!(inline.analytic, remote.analytic, "seed {seed}");
        assert_eq!(inline.evaluations, remote.evaluations, "seed {seed}");
        assert_eq!(inline.history, remote.history, "seed {seed}");
        assert_eq!(inline.stop_reason, remote.stop_reason, "seed {seed}");
    }
    pimsyn::stop_worker_server(&addr, None).expect("daemon stops cleanly");
    daemon.join().expect("daemon exits cleanly");
}

/// Chaos determinism: a fleet where one worker answers slowly (injected
/// per-candidate delay), one stalls after its first exchanges, and one
/// drops its connection every second exchange must still produce a
/// bit-identical outcome. The adaptive chunker's throughput weighting and
/// straggler requeue only move *where* pieces of a batch run — results are
/// always reduced in input order, so what they score never changes.
#[test]
fn fault_injected_fleet_equals_inline_bit_identically() {
    use pimsyn::FaultInjection;
    use std::time::Duration;

    let model = zoo::alexnet_cifar(10);
    let daemon = |faults: FaultInjection| {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind port 0");
        pimsyn::serve_workers_in_background(
            listener,
            pimsyn::WorkerServeConfig {
                slots: 2,
                quiet: true,
                faults,
                ..Default::default()
            },
        )
        .expect("start worker daemon")
    };
    let slow = daemon(FaultInjection {
        job_delay: Some(Duration::from_micros(400)),
        ..Default::default()
    });
    let stalling = daemon(FaultInjection {
        stall_after: Some(2),
        stall_delay: Duration::from_millis(40),
        ..Default::default()
    });
    let flaky = daemon(FaultInjection {
        drop_every: Some(2),
        ..Default::default()
    });
    let endpoints = vec![
        slow.addr().to_string(),
        stalling.addr().to_string(),
        flaky.addr().to_string(),
    ];
    let base = SynthesisOptions::fast(Watts(9.0)).with_seed(7);
    let inline = Synthesizer::new(base.clone())
        .synthesize(&model)
        .expect("inline synthesis");
    let remote = Synthesizer::new(base.with_backend(BackendKind::Remote {
        endpoints: endpoints.clone(),
    }))
    .synthesize(&model)
    .expect("remote synthesis");
    assert_eq!(inline.wt_dup, remote.wt_dup);
    assert_eq!(inline.architecture, remote.architecture);
    assert_eq!(inline.analytic, remote.analytic);
    assert_eq!(inline.evaluations, remote.evaluations);
    assert_eq!(inline.history, remote.history);
    assert_eq!(inline.stop_reason, remote.stop_reason);
    for daemon in [slow, stalling, flaky] {
        let addr = daemon.addr().to_string();
        pimsyn::stop_worker_server(&addr, None).expect("daemon stops cleanly");
        daemon.join().expect("daemon exits cleanly");
    }
}

/// A second run warm-started from a persistent cache file is bit-identical
/// to its cold predecessor, and a mismatched fingerprint (different power)
/// falls back cleanly to cold scoring.
#[test]
fn persistent_cache_warm_start_is_transparent() {
    let model = zoo::alexnet_cifar(10);
    let path = std::env::temp_dir().join(format!(
        "pimsyn-determinism-warm-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let base = SynthesisOptions::fast(Watts(9.0))
        .with_seed(5)
        .with_eval_cache_file(&path);
    let cold = Synthesizer::new(base.clone()).synthesize(&model).unwrap();
    assert!(path.exists(), "run must write the cache file");
    let warm = Synthesizer::new(base.clone()).synthesize(&model).unwrap();
    assert_eq!(cold.wt_dup, warm.wt_dup);
    assert_eq!(cold.architecture, warm.architecture);
    assert_eq!(cold.analytic, warm.analytic);
    assert_eq!(cold.evaluations, warm.evaluations);
    assert_eq!(cold.history, warm.history);
    // A different power budget must not reuse the stale entries — and must
    // still synthesize successfully (invalidation is silent).
    let other = Synthesizer::new(
        SynthesisOptions::fast(Watts(8.0))
            .with_seed(5)
            .with_eval_cache_file(&path),
    )
    .synthesize(&model)
    .unwrap();
    assert!(other.analytic.efficiency_tops_per_watt() > 0.0);
    let _ = std::fs::remove_file(&path);
}

/// Seeded randomized mutation walks: starting from a baseline gene, each
/// step applies one EA-style mutation (one `mutate_num`, sometimes plus one
/// `mutate_share`) and scores the child against its parent through the
/// delta engine. Every step must be bit-identical to a delta-free
/// evaluator's full scoring, and the walk must actually exercise the delta
/// path (not just fall back throughout).
#[test]
fn delta_rescoring_is_bit_identical_on_mutation_walks() {
    use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams, MacroMode};
    use pimsyn_dse::{CandidateEvaluator, DesignPoint, ExploreContext, MacAllocGene, Objective};
    use pimsyn_ir::Dataflow;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let cases = [
        (zoo::alexnet_cifar(10), Watts(9.0)),
        (zoo::vgg16_cifar(10), Watts(15.0)),
        // Delta rescoring must stay exact over the new op kinds too:
        // depthwise/grouped convolutions (mobilenet) and attention
        // MatMul/Softmax chains (transformer-tiny).
        (zoo::mobilenet(), Watts(120.0)),
        (zoo::transformer_tiny(), Watts(6.0)),
    ];
    let hw = HardwareParams::date24();
    for (model, power) in &cases {
        let l = model.weight_layer_count();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![2; l];
        let df = Dataflow::compile(model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        let caps: Vec<usize> = df
            .programs()
            .iter()
            .map(|p| (p.wt_dup * p.row_groups).clamp(1, 64))
            .collect();
        for seed in [7u64, 21] {
            let delta = CandidateEvaluator::new(
                model,
                *power,
                &hw,
                MacroMode::Specialized,
                Objective::PowerEfficiency,
                EvalCacheConfig::disabled().with_delta(true),
            );
            let full = CandidateEvaluator::new(
                model,
                *power,
                &hw,
                MacroMode::Specialized,
                Objective::PowerEfficiency,
                EvalCacheConfig::disabled(),
            );
            let ctx = ExploreContext::unobserved();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut macros = vec![1usize; l];
            let mut shares: Vec<Option<usize>> = vec![None; l];
            let mut parent = MacAllocGene::encode(&macros, &shares);
            // Self-parented first score: a fallback that seeds retention.
            let a = delta.score_with_parent(&df, point, &parent, Some(&parent), &ctx);
            let b = full.score(&df, point, &parent, &ctx);
            assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
            for step in 0..40 {
                // One mutate_num, sometimes plus one mutate_share — the
                // exact per-child diff the EA hot loop produces.
                let i = rng.gen_range(0..l);
                macros[i] = rng.gen_range(1..=caps[i]);
                if rng.gen_bool(0.3) {
                    let i = rng.gen_range(1..l);
                    if shares[i].is_some() {
                        shares[i] = None;
                    } else {
                        let taken: Vec<usize> = shares.iter().flatten().copied().collect();
                        let candidates: Vec<usize> = (0..i)
                            .filter(|j| shares[*j].is_none() && !taken.contains(j))
                            .collect();
                        if !candidates.is_empty() {
                            shares[i] = Some(candidates[rng.gen_range(0..candidates.len())]);
                        }
                    }
                }
                let child = MacAllocGene::encode(&macros, &shares);
                let d = delta.score_with_parent(&df, point, &child, Some(&parent), &ctx);
                let f = full.score(&df, point, &child, &ctx);
                assert_eq!(
                    d.fitness.to_bits(),
                    f.fitness.to_bits(),
                    "{model} seed {seed} step {step}"
                );
                assert_eq!(d.feasible, f.feasible, "{model} seed {seed} step {step}");
                parent = child;
            }
            let stats = delta.stats();
            assert!(
                stats.delta_hits > 0,
                "{model} seed {seed}: walk never exercised the delta path \
                 ({} fallbacks)",
                stats.delta_fallbacks
            );
            assert_eq!(
                stats.delta_hits + stats.delta_fallbacks,
                41,
                "{model} seed {seed}: every parented score is a hit or a fallback"
            );
            assert_eq!(full.stats().delta_hits, 0);
            assert_eq!(full.stats().delta_fallbacks, 0);
        }
    }
}

#[test]
fn parallel_equals_serial() {
    let model = zoo::alexnet_cifar(10);
    let mut serial = SynthesisOptions::fast(Watts(9.0)).with_seed(9);
    serial.parallel = false;
    let mut parallel = serial.clone();
    parallel.parallel = true;
    let a = Synthesizer::new(serial).synthesize(&model).unwrap();
    let b = Synthesizer::new(parallel).synthesize(&model).unwrap();
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
}
