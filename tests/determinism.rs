//! Reproducibility: the whole flow is deterministic given a seed, including
//! under parallel exploration and with candidate-evaluation memoization.

use pimsyn::{EvalCacheConfig, SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

#[test]
fn same_seed_same_architecture() {
    let model = zoo::alexnet_cifar(10);
    let run = |seed| {
        Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis")
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.analytic, b.analytic);
}

#[test]
fn different_seeds_may_differ_but_stay_feasible() {
    let model = zoo::alexnet_cifar(10);
    for seed in [1u64, 2, 3] {
        let r = Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis");
        r.architecture.validate(&model).expect("feasible");
        assert!(r.analytic.efficiency_tops_per_watt() > 0.0);
    }
}

/// The evaluator's memo caches are transparent: for several models and
/// seeds, a cached run's complete outcome — architecture, analytic report,
/// evaluation counts and per-point history — is bit-identical to an
/// uncached run's.
#[test]
fn eval_cache_runs_are_bit_identical_to_uncached() {
    let cases = [
        (zoo::alexnet_cifar(10), Watts(9.0)),
        (zoo::vgg16_cifar(10), Watts(15.0)),
    ];
    for (model, power) in &cases {
        for seed in [3u64, 17] {
            let base = SynthesisOptions::fast(*power).with_seed(seed);
            let cached = Synthesizer::new(base.clone())
                .synthesize(model)
                .expect("cached synthesis");
            let uncached = Synthesizer::new(base.with_eval_cache(EvalCacheConfig::disabled()))
                .synthesize(model)
                .expect("uncached synthesis");
            assert_eq!(cached.wt_dup, uncached.wt_dup, "{model} seed {seed}");
            assert_eq!(
                cached.architecture, uncached.architecture,
                "{model} seed {seed}"
            );
            assert_eq!(cached.analytic, uncached.analytic, "{model} seed {seed}");
            assert_eq!(
                cached.evaluations, uncached.evaluations,
                "{model} seed {seed}"
            );
            assert_eq!(cached.history, uncached.history, "{model} seed {seed}");
        }
    }
}

#[test]
fn parallel_equals_serial() {
    let model = zoo::alexnet_cifar(10);
    let mut serial = SynthesisOptions::fast(Watts(9.0)).with_seed(9);
    serial.parallel = false;
    let mut parallel = serial.clone();
    parallel.parallel = true;
    let a = Synthesizer::new(serial).synthesize(&model).unwrap();
    let b = Synthesizer::new(parallel).synthesize(&model).unwrap();
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
}
