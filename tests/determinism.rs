//! Reproducibility: the whole flow is deterministic given a seed, including
//! under parallel exploration.

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

#[test]
fn same_seed_same_architecture() {
    let model = zoo::alexnet_cifar(10);
    let run = |seed| {
        Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis")
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.analytic, b.analytic);
}

#[test]
fn different_seeds_may_differ_but_stay_feasible() {
    let model = zoo::alexnet_cifar(10);
    for seed in [1u64, 2, 3] {
        let r = Synthesizer::new(SynthesisOptions::fast(Watts(9.0)).with_seed(seed))
            .synthesize(&model)
            .expect("synthesis");
        r.architecture.validate(&model).expect("feasible");
        assert!(r.analytic.efficiency_tops_per_watt() > 0.0);
    }
}

#[test]
fn parallel_equals_serial() {
    let model = zoo::alexnet_cifar(10);
    let mut serial = SynthesisOptions::fast(Watts(9.0)).with_seed(9);
    serial.parallel = false;
    let mut parallel = serial.clone();
    parallel.parallel = true;
    let a = Synthesizer::new(serial).synthesize(&model).unwrap();
    let b = Synthesizer::new(parallel).synthesize(&model).unwrap();
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
}
