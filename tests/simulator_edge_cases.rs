//! Edge cases and failure injection for the evaluation stack: degenerate
//! networks, extreme duplication, starved resources and saturated sharing.

use pimsyn_arch::{
    AdcConfig, Architecture, ComponentCounts, CrossbarConfig, DacConfig, HardwareParams,
    LayerHardware, MacroMode, Watts,
};
use pimsyn_ir::Dataflow;
use pimsyn_model::{Model, ModelBuilder, TensorShape};
use pimsyn_sim::{evaluate_analytic, simulate, SimError};

fn arch_for(df: &Dataflow, model: &Model, adcs: usize, macros: usize) -> Architecture {
    let hw = HardwareParams::date24();
    let layers = df
        .programs()
        .iter()
        .map(|p| LayerHardware {
            layer: p.layer,
            name: p.name.clone(),
            wt_dup: p.wt_dup,
            crossbar_set: p.crossbar_set,
            macros,
            shares_macros_with: None,
            adc: AdcConfig::new(8, &hw),
            components: ComponentCounts {
                adc: adcs,
                shift_add: 4,
                pool: 2,
                activation: 2,
                eltwise: 2,
            },
        })
        .collect();
    Architecture {
        model_name: model.name().to_string(),
        crossbar: df.crossbar(),
        dac: df.dac(),
        ratio_rram: 0.3,
        power_budget: Watts(50.0),
        macro_mode: MacroMode::Specialized,
        layers,
        hw,
    }
}

fn single_fc() -> Model {
    let mut b = ModelBuilder::new("fc-only", TensorShape::new(64, 1, 1));
    let id = b.layer("id", pimsyn_model::LayerKind::Relu, vec![]);
    let f = b.flatten("flat", id);
    b.linear("fc", f, 10);
    b.build().expect("valid")
}

#[test]
fn single_fc_layer_simulates() {
    // A network whose only weight layer has exactly one computation block.
    let model = single_fc();
    assert_eq!(model.weight_layer_count(), 1);
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &[1],
    )
    .expect("compiles");
    assert_eq!(df.program(0).blocks, 1);
    let arch = arch_for(&df, &model, 2, 1);
    let cyc = simulate(&model, &df, &arch, 1).expect("simulates");
    let ana = evaluate_analytic(&model, &df, &arch).expect("evaluates");
    assert!(cyc.latency.value() > 0.0);
    assert!(ana.latency.value() > 0.0);
    assert_eq!(cyc.steady_period, cyc.latency);
}

#[test]
fn full_duplication_gives_single_block_per_layer() {
    // dup = HO*WO collapses every layer to one block; the pipeline reduces
    // to a pure layer chain and must still be causally ordered.
    let mut b = ModelBuilder::new("chain", TensorShape::new(3, 8, 8));
    let c1 = b.conv("c1", None, 4, 3, 1, 1);
    let c2 = b.conv("c2", Some(c1), 4, 3, 1, 1);
    b.conv("c3", Some(c2), 4, 3, 1, 1);
    let model = b.build().expect("valid");
    let dup: Vec<usize> = model
        .weight_layers()
        .map(|w| w.output_positions())
        .collect();
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 1).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &dup,
    )
    .expect("compiles");
    for p in df.programs() {
        assert_eq!(p.blocks, 1);
    }
    let arch = arch_for(&df, &model, 4, 1);
    let r = simulate(&model, &df, &arch, 1).expect("simulates");
    for w in r.per_layer.windows(2) {
        assert!(
            w[1].finish >= w[0].finish,
            "chained layers must finish in order"
        );
    }
}

#[test]
fn deep_chain_accumulates_fill_latency() {
    // 12 stacked convs: latency must grow with depth (pipeline fill).
    let mut b = ModelBuilder::new("deep", TensorShape::new(4, 12, 12));
    let mut cur = None;
    for i in 0..12 {
        let c = b.conv(format!("c{i}"), cur, 4, 3, 1, 1);
        cur = Some(b.relu(format!("r{i}"), c));
    }
    let model = b.build().expect("valid");
    let l = model.weight_layer_count();
    let xb = CrossbarConfig::new(128, 2).expect("legal");
    let dac = DacConfig::new(4).expect("legal");
    let df_full = Dataflow::compile(&model, xb, dac, &vec![4; l]).expect("compiles");
    let arch = arch_for(&df_full, &model, 2, 1);
    let r = simulate(&model, &df_full, &arch, 1).expect("simulates");
    // Later layers start strictly later than earlier ones.
    assert!(r.per_layer[11].start > r.per_layer[0].start);
    assert!(r.per_layer[11].start > r.per_layer[5].start);
}

#[test]
fn starved_adc_bank_is_reported_not_hung() {
    let model = single_fc();
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &[1],
    )
    .expect("compiles");
    let mut arch = arch_for(&df, &model, 2, 1);
    arch.layers[0].components.adc = 0;
    assert!(matches!(
        simulate(&model, &df, &arch, 1),
        Err(SimError::MissingComponent {
            component: "adc",
            ..
        })
    ));
}

#[test]
fn saturated_sharing_chain_still_simulates() {
    // Every layer shares layer 0's macros: one ADC bank serves the whole
    // network. Must complete (slowly), not deadlock.
    let mut b = ModelBuilder::new("shared", TensorShape::new(3, 8, 8));
    let c1 = b.conv("c1", None, 4, 3, 1, 1);
    let c2 = b.conv("c2", Some(c1), 4, 3, 1, 1);
    b.conv("c3", Some(c2), 4, 3, 1, 1);
    let model = b.build().expect("valid");
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &[2, 2, 2],
    )
    .expect("compiles");
    let mut arch = arch_for(&df, &model, 2, 1);
    arch.layers[1].shares_macros_with = Some(0);
    arch.layers[2].shares_macros_with = Some(0);
    let solo_arch = arch_for(&df, &model, 2, 1);
    let shared = simulate(&model, &df, &arch, 1).expect("completes");
    let solo = simulate(&model, &df, &solo_arch, 1).expect("completes");
    // Fully-contended bank cannot be faster than private banks (allowing a
    // sliver of slack for the transfer stages sharing removes).
    assert!(shared.latency.value() >= solo.latency.value() * 0.9);
    assert_eq!(arch.macro_count(), 1);
}

#[test]
fn multi_macro_layers_use_parallel_bandwidth() {
    let mut b = ModelBuilder::new("wide", TensorShape::new(64, 8, 8));
    b.conv("c1", None, 128, 3, 1, 1);
    let model = b.build().expect("valid");
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &[4],
    )
    .expect("compiles");
    let narrow = arch_for(&df, &model, 8, 1);
    let wide = arch_for(&df, &model, 8, 4); // rule (c): dup 4 x 5 row groups
    let rn = simulate(&model, &df, &narrow, 1).expect("narrow");
    let rw = simulate(&model, &df, &wide, 1).expect("wide");
    // More macros -> more scratchpad/NoC bandwidth -> no slower.
    assert!(rw.latency.value() <= rn.latency.value() * 1.01);
}

#[test]
fn many_images_converge_to_steady_state() {
    let mut b = ModelBuilder::new("steady", TensorShape::new(3, 8, 8));
    let c1 = b.conv("c1", None, 8, 3, 1, 1);
    b.conv("c2", Some(c1), 8, 3, 1, 1);
    let model = b.build().expect("valid");
    let df = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2).expect("legal"),
        DacConfig::new(4).expect("legal"),
        &[4, 4],
    )
    .expect("compiles");
    let arch = arch_for(&df, &model, 4, 1);
    let r4 = simulate(&model, &df, &arch, 4).expect("4 images");
    let r8 = simulate(&model, &df, &arch, 8).expect("8 images");
    // The marginal per-image period stabilizes.
    let p4 = r4.steady_period.value();
    let p8 = r8.steady_period.value();
    assert!(
        (p4 - p8).abs() / p4 < 0.25,
        "steady period should converge: {p4} vs {p8}"
    );
}
