//! Integration: models ingested from the ONNX-style JSON path must be
//! indistinguishable from zoo-built models throughout the synthesis stack.

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::{onnx, zoo};

#[test]
fn ingested_model_synthesizes_identically() {
    let native = zoo::alexnet_cifar(10);
    let ingested = onnx::parse_model(&onnx::to_json(&native)).expect("round trip");
    assert_eq!(native.layers(), ingested.layers());

    let opts = || SynthesisOptions::fast(Watts(9.0)).with_seed(21);
    let a = Synthesizer::new(opts()).synthesize(&native).unwrap();
    let b = Synthesizer::new(opts()).synthesize(&ingested).unwrap();
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(
        a.analytic.efficiency_tops_per_watt(),
        b.analytic.efficiency_tops_per_watt()
    );
}

#[test]
fn every_zoo_model_round_trips() {
    for name in [
        "alexnet",
        "vgg13",
        "vgg16",
        "msra",
        "resnet18",
        "alexnet-cifar",
        "resnet18-cifar",
    ] {
        let model = zoo::by_name(name).expect("registered");
        let back = onnx::parse_model(&onnx::to_json(&model)).expect("parses");
        assert_eq!(model.layers(), back.layers(), "{name} graph changed");
        assert_eq!(model.stats(), back.stats(), "{name} stats changed");
        assert_eq!(
            model.precision(),
            back.precision(),
            "{name} precision changed"
        );
    }
}

#[test]
fn ingestion_rejects_residual_shape_mismatch() {
    let bad = r#"{
      "input": {"shape": [3, 8, 8]},
      "nodes": [
        {"op": "Conv", "name": "a", "inputs": ["input"],
         "attrs": {"out_channels": 4, "kernel": 3, "padding": 1}},
        {"op": "Conv", "name": "b", "inputs": ["input"],
         "attrs": {"out_channels": 4, "kernel": 3, "stride": 2, "padding": 1}},
        {"op": "Add", "name": "sum", "inputs": ["a", "b"]}
      ]
    }"#;
    assert!(onnx::parse_model(bad).is_err());
}
