//! Integration tests for the job-oriented [`SynthesisEngine`] API: event
//! streaming, cooperative cancellation, time / evaluation budgets, and
//! batch synthesis with per-job failure isolation.

use std::time::{Duration, Instant};

use pimsyn::{
    CancelToken, CollectingSink, Effort, NullSink, StopReason, SynthesisEngine, SynthesisError,
    SynthesisEvent, SynthesisOptions, SynthesisRequest, SynthesisStage,
};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

fn fast_request() -> SynthesisRequest {
    SynthesisRequest::new(
        zoo::alexnet_cifar(10),
        SynthesisOptions::fast(Watts(6.0)).with_seed(3),
    )
}

/// A paper-effort request: enough work (36 outer points, long SA anneals,
/// big EA budgets) that cancellation and budgets have something to stop.
fn heavy_request() -> SynthesisRequest {
    let mut options = SynthesisOptions::new(Watts(15.0)).with_seed(3);
    options.effort = Effort::Paper;
    SynthesisRequest::new(zoo::vgg16_cifar(10), options)
}

#[test]
fn event_stream_is_nonempty_and_stage_ordered() {
    let engine = SynthesisEngine::new();
    let sink = CollectingSink::new();
    let result = engine
        .run(&fast_request(), &sink, &CancelToken::new())
        .unwrap();
    assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
    assert_eq!(result.stop_reason, StopReason::Completed);

    let events = sink.take();
    assert!(!events.is_empty());
    assert!(matches!(
        events.first(),
        Some(SynthesisEvent::JobStarted { job: 0, .. })
    ));
    assert!(matches!(
        events.last(),
        Some(SynthesisEvent::Finished { job: 0, efficiency: Some(e), .. }) if *e > 0.0
    ));

    // Per design point: stages start in paper order, every started stage
    // finishes before the next one starts, and the point summary follows
    // the last stage.
    // The fast preset traverses the reduced design space.
    let point_count = pimsyn::DesignSpace::reduced().outer_len();
    let mut evaluated_points = 0;
    for point in 0..point_count {
        let for_point: Vec<&SynthesisEvent> = events
            .iter()
            .filter(|ev| match ev {
                SynthesisEvent::StageStarted { point_index, .. }
                | SynthesisEvent::StageFinished { point_index, .. }
                | SynthesisEvent::DesignPointEvaluated { point_index, .. } => *point_index == point,
                _ => false,
            })
            .collect();
        let mut expected = Vec::new();
        for stage in SynthesisStage::ALL {
            expected.push(format!("started:{stage}"));
            expected.push(format!("finished:{stage}"));
        }
        expected.push("evaluated".to_string());
        let got: Vec<String> = for_point
            .iter()
            .map(|ev| match ev {
                SynthesisEvent::StageStarted { stage, .. } => format!("started:{stage}"),
                SynthesisEvent::StageFinished { stage, .. } => format!("finished:{stage}"),
                SynthesisEvent::DesignPointEvaluated { .. } => "evaluated".to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expected, "stage order at point {point}");
        evaluated_points += 1;
    }
    assert!(evaluated_points > 0);

    // A feasible run improves on the initial zero best at least once.
    assert!(events
        .iter()
        .any(|ev| matches!(ev, SynthesisEvent::ImprovedBest { .. })));
}

/// Evaluator throughput streams through the engine API: snapshots appear
/// per design point, the final one accounts for every scored candidate, and
/// the metaheuristics' revisits show up as cache hits.
#[test]
fn evaluator_stats_stream_reports_cache_hits() {
    let engine = SynthesisEngine::new();
    let sink = CollectingSink::new();
    let result = engine
        .run(&fast_request(), &sink, &CancelToken::new())
        .unwrap();
    let snapshots: Vec<_> = sink
        .take()
        .into_iter()
        .filter_map(|ev| match ev {
            SynthesisEvent::EvaluatorStats { stats, .. } => Some(stats),
            _ => None,
        })
        .collect();
    assert!(!snapshots.is_empty(), "stats must be emitted per point");
    let last = snapshots.last().unwrap();
    assert_eq!(last.scored, result.evaluations);
    assert_eq!(last.unique_evaluations + last.cache_hits, last.scored);
    assert!(last.cache_hits > 0, "expected memo hits: {last:?}");
    assert!(last.unique_evaluations < last.scored);
    // Serial fast run: cumulative snapshots are monotonic.
    for pair in snapshots.windows(2) {
        assert!(pair[1].scored >= pair[0].scored);
        assert!(pair[1].cache_hits >= pair[0].cache_hits);
    }
}

#[test]
fn cancellation_stops_a_running_job_promptly() {
    let engine = SynthesisEngine::new();
    let job = engine.spawn(heavy_request());

    // Wait for evidence the job is actually exploring, then cancel.
    let first = job
        .events()
        .recv_timeout(Duration::from_secs(30))
        .expect("job must emit its first event");
    assert!(matches!(first, SynthesisEvent::JobStarted { .. }));
    job.cancel();
    let cancelled_at = Instant::now();
    let result = job.join();
    let reaction = cancelled_at.elapsed();
    assert!(
        matches!(result, Err(SynthesisError::Cancelled)),
        "{result:?}"
    );
    // "Promptly": worst case is one EA child evaluation plus a SA check
    // interval, far below a full paper run (minutes).
    assert!(
        reaction < Duration::from_secs(20),
        "took {reaction:?} to stop"
    );
}

#[test]
fn evaluation_budget_is_honored() {
    let engine = SynthesisEngine::new();
    let mut request = heavy_request();
    request.options.max_evaluations = Some(200);
    let sink = CollectingSink::new();
    let outcome = engine.run(&request, &sink, &CancelToken::new());
    match outcome {
        Ok(result) => {
            assert_eq!(result.stop_reason, StopReason::EvaluationBudgetReached);
            // The budget is enforced cooperatively (checked between EA
            // children), so allow bounded overshoot but nothing runaway.
            assert!(
                result.evaluations < 2_000,
                "evaluations {} far beyond budget",
                result.evaluations
            );
        }
        Err(e) => {
            // A 200-evaluation budget may legitimately stop the search
            // before the first feasible candidate.
            assert!(matches!(e, SynthesisError::Dse(_)), "{e}");
        }
    }
    // Budget exhaustion must still deliver a finished event stream.
    let events = sink.take();
    assert!(matches!(
        events.last(),
        Some(SynthesisEvent::Finished { .. })
    ));
}

#[test]
fn time_budget_is_honored() {
    let engine = SynthesisEngine::new();
    let mut request = heavy_request();
    request.options.time_budget = Some(Duration::from_millis(1500));
    let started = Instant::now();
    let outcome = engine.run(&request, &NullSink, &CancelToken::new());
    let elapsed = started.elapsed();
    // A full paper-effort vgg16-cifar run takes minutes; the deadline must
    // cut that to roughly the budget (plus one cooperative-check interval).
    assert!(
        elapsed < Duration::from_secs(30),
        "deadline ignored: ran {elapsed:?}"
    );
    if let Ok(result) = outcome {
        assert_eq!(result.stop_reason, StopReason::DeadlineReached);
    }
}

#[test]
fn batch_synthesis_isolates_per_job_failures() {
    let engine = SynthesisEngine::new().with_batch_workers(2);
    let sink = CollectingSink::new();
    let requests = [
        fast_request().with_label("feasible-alexnet"),
        // 0.01 W cannot host one weight copy: this job must fail alone.
        SynthesisRequest::new(
            zoo::alexnet_cifar(10),
            SynthesisOptions::fast(Watts(0.01)).with_seed(3),
        )
        .with_label("infeasible"),
        SynthesisRequest::new(
            zoo::vgg16_cifar(10),
            SynthesisOptions::fast(Watts(15.0)).with_seed(3),
        )
        .with_label("feasible-vgg"),
    ];
    let results = engine.synthesize_batch_observed(&requests, &sink, &CancelToken::new());
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "{:?}", results[0].as_ref().err());
    assert!(matches!(results[1], Err(SynthesisError::Dse(_))));
    assert!(results[2].is_ok(), "{:?}", results[2].as_ref().err());
    // Distinct models actually ran: the two successes are different nets.
    let a = results[0].as_ref().unwrap();
    let b = results[2].as_ref().unwrap();
    assert_eq!(a.model.name(), "alexnet-cifar");
    assert_eq!(b.model.name(), "vgg16-cifar");

    // Every job reported start and finish, tagged with its index.
    let events = sink.take();
    for job in 0..3 {
        assert!(
            events
                .iter()
                .any(|ev| matches!(ev, SynthesisEvent::JobStarted { job: j, .. } if *j == job)),
            "missing JobStarted for job {job}"
        );
        let finished = events.iter().find_map(|ev| match ev {
            SynthesisEvent::Finished {
                job: j,
                efficiency,
                error,
                ..
            } if *j == job => Some((efficiency.is_some(), error.clone())),
            _ => None,
        });
        let (ok, error) = finished.unwrap_or_else(|| panic!("missing Finished for job {job}"));
        assert_eq!(ok, job != 1, "job {job} outcome mismatch ({error:?})");
    }
}

#[test]
fn batch_results_match_single_runs_deterministically() {
    let engine = SynthesisEngine::new();
    let single = engine
        .run(&fast_request(), &NullSink, &CancelToken::new())
        .unwrap();
    let batch = engine.synthesize_batch(&[fast_request(), fast_request()]);
    for result in &batch {
        let result = result.as_ref().unwrap();
        assert_eq!(result.wt_dup, single.wt_dup);
        assert_eq!(
            result.analytic.efficiency_tops_per_watt(),
            single.analytic.efficiency_tops_per_watt()
        );
    }
}

#[test]
fn spawned_job_reports_finished_state() {
    let engine = SynthesisEngine::new();
    let job = engine.spawn(fast_request());
    // Drain the stream; it ends exactly when the job is done.
    let events: Vec<SynthesisEvent> = job.events().iter().collect();
    assert!(matches!(
        events.last(),
        Some(SynthesisEvent::Finished { .. })
    ));
    // The channel closing and the thread terminating race by a hair; give
    // the thread a moment to finish exiting.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !job.is_finished() && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert!(job.is_finished());
    let result = job.join().unwrap();
    assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
}
