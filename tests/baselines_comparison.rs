//! Integration: synthesized accelerators versus the manual baselines — the
//! qualitative claims of the paper's evaluation section must hold on our
//! substrate.

use pimsyn::{MacroMode, SynthesisOptions, Synthesizer, WtDupStrategy};
use pimsyn_arch::{HardwareParams, Watts};
use pimsyn_baselines::{inventory, isaac};
use pimsyn_model::zoo;

const POWER: Watts = Watts(12.0);

fn synthesize(options: SynthesisOptions) -> pimsyn::SynthesisResult {
    Synthesizer::new(options.with_seed(7))
        .synthesize(&zoo::alexnet_cifar(10))
        .expect("synthesis")
}

#[test]
fn pimsyn_beats_isaac_effective_efficiency() {
    // The Fig. 6 claim, at integration-test scale.
    let hw = HardwareParams::date24();
    let model = zoo::alexnet_cifar(10);
    let result = synthesize(SynthesisOptions::fast(POWER));
    let isaac_power = POWER.max(isaac::isaac_min_power(&model, &hw));
    let isaac_rep = isaac::evaluate_isaac_analytic(&model, isaac_power, &hw).unwrap();
    assert!(
        result.analytic.efficiency_tops_per_watt() > isaac_rep.efficiency_tops_per_watt(),
        "PIMSYN {:.4} must beat ISAAC {:.4} TOPS/W",
        result.analytic.efficiency_tops_per_watt(),
        isaac_rep.efficiency_tops_per_watt()
    );
}

#[test]
fn sa_duplication_beats_both_baselines() {
    // Fig. 7's ordering: SA >= WOHO heuristic >> no duplication.
    let sa = synthesize(SynthesisOptions::fast(POWER));
    let woho =
        synthesize(SynthesisOptions::fast(POWER).with_strategy(WtDupStrategy::WohoProportional));
    let nodup =
        synthesize(SynthesisOptions::fast(POWER).with_strategy(WtDupStrategy::NoDuplication));
    assert!(sa.analytic.throughput_ops >= woho.analytic.throughput_ops * 0.95);
    assert!(
        woho.analytic.throughput_ops > nodup.analytic.throughput_ops * 1.5,
        "duplication must be worth >1.5x: woho {} vs nodup {}",
        woho.analytic.throughput_ops,
        nodup.analytic.throughput_ops
    );
}

#[test]
fn specialized_macros_beat_identical() {
    // Fig. 8's direction.
    let spec = synthesize(SynthesisOptions::fast(POWER));
    let ident = synthesize(SynthesisOptions::fast(POWER).with_macro_mode(MacroMode::Identical));
    assert!(
        spec.analytic.efficiency_tops_per_watt() >= ident.analytic.efficiency_tops_per_watt(),
        "specialized {:.4} must not lose to identical {:.4}",
        spec.analytic.efficiency_tops_per_watt(),
        ident.analytic.efficiency_tops_per_watt()
    );
}

#[test]
fn sharing_does_not_hurt() {
    // Fig. 9's direction (sharing is an *option* the EA may decline).
    let with = synthesize(SynthesisOptions::fast(POWER));
    let without = synthesize(SynthesisOptions::fast(POWER).without_macro_sharing());
    assert!(
        with.analytic.efficiency_tops_per_watt()
            >= without.analytic.efficiency_tops_per_watt() * 0.999,
        "sharing-enabled search must dominate: {:.4} vs {:.4}",
        with.analytic.efficiency_tops_per_watt(),
        without.analytic.efficiency_tops_per_watt()
    );
}

#[test]
fn baseline_inventories_are_ordered_like_table4() {
    let hw = HardwareParams::date24();
    let peaks: Vec<(String, f64)> = inventory::table4_inventories()
        .iter()
        .map(|inv| (inv.name.to_string(), inv.peak_tops_per_watt(16, 16, &hw)))
        .collect();
    // Every baseline must stay within 2.5x of its published figure.
    for (inv, (_, modeled)) in inventory::table4_inventories().iter().zip(&peaks) {
        let ratio = modeled / inv.published_tops_per_watt;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{}: ratio {ratio:.2}",
            inv.name
        );
    }
}

#[test]
fn synthesized_peak_beats_every_baseline_model() {
    // Table IV's headline, on the CIFAR substrate.
    let hw = HardwareParams::date24();
    let result = synthesize(SynthesisOptions::fast(POWER));
    let pimsyn_peak = result.peak_efficiency();
    for inv in inventory::table4_inventories() {
        let baseline = inv.peak_tops_per_watt(16, 16, &hw);
        assert!(
            pimsyn_peak > baseline,
            "PIMSYN peak {pimsyn_peak:.3} must beat {} ({baseline:.3})",
            inv.name
        );
    }
}
