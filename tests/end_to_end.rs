//! End-to-end integration: the full synthesis pipeline across every crate,
//! checked against the paper's structural constraints.

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_dse::crossbars_used;
use pimsyn_model::zoo;
use pimsyn_sim::simulate;

fn synthesize_fast(power: f64) -> (pimsyn_model::Model, pimsyn::SynthesisResult) {
    let model = zoo::alexnet_cifar(10);
    let result = Synthesizer::new(SynthesisOptions::fast(Watts(power)).with_seed(42))
        .synthesize(&model)
        .expect("synthesis succeeds at this budget");
    (model, result)
}

#[test]
fn synthesis_satisfies_eq2_crossbar_constraint() {
    let (model, result) = synthesize_fast(9.0);
    let arch = &result.architecture;
    // sum WtDup_i x set_i <= #crossbar (Eq. (2) subject-to clause).
    let used = crossbars_used(&model, arch.crossbar, &result.wt_dup);
    let budget = arch
        .crossbar
        .budget(arch.power_budget, arch.ratio_rram, &arch.hw);
    assert!(
        used <= budget,
        "{used} crossbars exceed Eq. (3) budget {budget}"
    );
    assert_eq!(used, arch.crossbar_count());
}

#[test]
fn synthesis_respects_power_constraint() {
    let (model, result) = synthesize_fast(9.0);
    let realized = result.architecture.power_breakdown().total();
    assert!(
        realized.value() <= result.architecture.power_budget.value() * 1.05,
        "realized {realized} vs constraint {}",
        result.architecture.power_budget
    );
    result
        .architecture
        .validate(&model)
        .expect("architecture validates");
}

#[test]
fn duplication_factors_within_caps() {
    let (model, result) = synthesize_fast(9.0);
    for (wl, &dup) in model.weight_layers().zip(&result.wt_dup) {
        assert!(dup >= 1);
        assert!(
            dup <= wl.output_positions(),
            "{}: dup {dup} exceeds {} output positions",
            wl.name,
            wl.output_positions()
        );
    }
}

#[test]
fn cycle_engine_confirms_analytic_ranking() {
    // Two budgets: the bigger one must not be slower under either model.
    let (model_a, small) = synthesize_fast(6.0);
    let (_, large) = synthesize_fast(14.0);
    let cyc_small = simulate(&model_a, &small.dataflow, &small.architecture, 2).unwrap();
    let cyc_large = simulate(&model_a, &large.dataflow, &large.architecture, 2).unwrap();
    assert!(
        cyc_large.throughput_ops >= cyc_small.throughput_ops * 0.7,
        "cycle model: large budget {} far below small {}",
        cyc_large.throughput_ops,
        cyc_small.throughput_ops
    );
    assert!(
        large.analytic.throughput_ops >= small.analytic.throughput_ops * 0.7,
        "analytic model disagrees with budget scaling"
    );
}

#[test]
fn analytic_and_cycle_agree_within_factor_three() {
    let (model, result) = synthesize_fast(9.0);
    let cyc = simulate(&model, &result.dataflow, &result.architecture, 1).unwrap();
    let ratio = cyc.latency.value() / result.analytic.latency.value();
    assert!(
        (0.33..3.0).contains(&ratio),
        "cycle {} vs analytic {} (ratio {ratio:.2})",
        cyc.latency.value(),
        result.analytic.latency.value()
    );
}

#[test]
fn report_names_every_weight_layer() {
    let (model, result) = synthesize_fast(9.0);
    let text = result.report_text();
    for wl in model.weight_layers() {
        assert!(text.contains(&wl.name), "report missing layer {}", wl.name);
    }
}

#[test]
fn imagenet_scale_synthesis_works() {
    use pimsyn::DesignSpace;
    let model = zoo::alexnet();
    let options = SynthesisOptions::fast(Watts(65.0))
        .with_design_space(DesignSpace::custom(vec![0.3], vec![512], vec![4], vec![1]))
        .with_seed(5);
    let result = Synthesizer::new(options)
        .synthesize(&model)
        .expect("ImageNet synthesis");
    assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
    result.architecture.validate(&model).unwrap();
}
